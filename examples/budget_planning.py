"""Budget planning: utility curves, Pareto frontier, weight sensitivity.

A security architect's workflow: before committing to a monitoring
budget, chart what each spending level buys (and how fragile the
recommendation is to the utility weighting).

Run:  python examples/budget_planning.py
"""

from repro import Budget, UtilityWeights
from repro.analysis import render_table, weight_sensitivity
from repro.casestudy import enterprise_web_service
from repro.optimize import budget_sweep, heuristic_sweep, pareto_frontier, solve_greedy

model = enterprise_web_service()
weights = UtilityWeights()
fractions = [0.05, 0.10, 0.15, 0.20, 0.30, 0.50]

# -- 1. what does each budget level buy? --------------------------------
optimal = budget_sweep(model, fractions, weights)
greedy = heuristic_sweep(model, fractions, solve_greedy, weights)
rows = [
    [o.fraction, len(o.result.deployment), o.utility, g.utility, o.utility - g.utility]
    for o, g in zip(optimal, greedy)
]
print(render_table(
    ["budget", "#monitors", "optimal utility", "greedy utility", "gap"],
    rows,
    precision=4,
    title="Utility bought per budget level",
))

# A simple knee finder: the last point where the marginal utility per
# budget step is still above half the first step's.
gains = [b.utility - a.utility for a, b in zip(optimal, optimal[1:])]
knee = next(
    (optimal[i].fraction for i, g in enumerate(gains) if g < gains[0] * 0.25),
    optimal[-1].fraction,
)
print(f"\nDiminishing returns set in around budget fraction {knee}.")

# -- 2. Pareto frontier over everything we evaluated ----------------------
frontier = pareto_frontier(
    [p.result.deployment for p in optimal] + [p.result.deployment for p in greedy],
    weights,
)
print(render_table(
    ["scalar cost", "utility", "#monitors"],
    [[cost, util, len(d)] for cost, util, d in frontier],
    title="\nPareto frontier (cost vs. utility)",
))

# -- 3. how sensitive is the recommendation to the weights? ----------------
budget = Budget.fraction_of_total(model, 0.15)
weightings = [UtilityWeights.tradeoff(lam) for lam in (0.0, 0.25, 0.5, 0.75, 1.0)]
points = weight_sensitivity(model, budget, weightings, baseline=weights)
print(render_table(
    ["lambda", "coverage", "redundancy", "similarity to default optimum"],
    [
        [p.weights.redundancy, p.coverage, p.redundancy, p.similarity_to_baseline]
        for p in points
    ],
    title="\nWeight sensitivity at budget 0.15 (lambda = redundancy weight)",
))
stable = min(p.similarity_to_baseline for p in points)
print(f"\nWorst-case monitor-set similarity across weightings: {stable:.2f} "
      f"({'stable' if stable > 0.5 else 'weight-sensitive'} recommendation)")
