"""Scalability demo: hundreds of monitors and attacks within seconds.

Generates synthetic models of growing size and times the optimal-
deployment ILP on each, reproducing the paper's scalability claim
("optimal monitor deployments for systems with hundreds of monitors and
attacks ... within minutes") on a laptop.

Run:  python examples/scalability.py
"""

import time

from repro import Budget, UtilityWeights
from repro.analysis import render_table
from repro.casestudy import synthetic_model
from repro.optimize import MaxUtilityProblem, solve_greedy

weights = UtilityWeights()
rows = []

for monitors, attacks in [(50, 50), (100, 100), (200, 200), (400, 300)]:
    model = synthetic_model(
        assets=max(20, monitors // 5), monitors=monitors, attacks=attacks, seed=1
    )
    budget = Budget.fraction_of_total(model, 0.3)

    started = time.perf_counter()
    exact = MaxUtilityProblem(model, budget, weights).solve()
    exact_seconds = time.perf_counter() - started

    started = time.perf_counter()
    greedy = solve_greedy(model, budget, weights)
    greedy_seconds = time.perf_counter() - started

    rows.append(
        [
            monitors,
            attacks,
            exact.stats["variables"],
            exact.utility,
            exact_seconds,
            greedy.utility,
            greedy_seconds,
        ]
    )
    print(f"solved {monitors} monitors / {attacks} attacks "
          f"in {exact_seconds:.2f}s (ILP) / {greedy_seconds:.2f}s (greedy)")

print()
print(render_table(
    ["#monitors", "#attacks", "ILP vars", "ILP utility", "ILP s", "greedy utility", "greedy s"],
    rows,
    title="Scalability of optimal monitor deployment",
))

worst = max(row[4] for row in rows)
print(f"\nLargest instance solved to proven optimality in {worst:.1f}s — "
      f"comfortably inside the paper's 'within minutes' envelope.")
