"""The methodology on a SCADA substation (cross-domain case study).

Power-grid control systems invert the Web case study's economics: field
devices (RTUs, PLCs, relays) cannot host rich telemetry, so the
optimizer must lean on protocol-level network sensors and the few
control/relay audit logs.  This example optimizes the substation model,
shows what a tight budget buys first, and stress-tests the deployment
against monitor failures — the scenario the redundancy term exists for.

Run:  python examples/scada_substation.py
"""

from repro import Budget, UtilityWeights
from repro.analysis import (
    contribution_report,
    expected_utility_under_failures,
    render_table,
    robustness_curve,
)
from repro.casestudy import scada_substation
from repro.optimize import MaxUtilityProblem
from repro.simulation import run_campaign

model = scada_substation()
print(model)

weights = UtilityWeights()
budget = Budget.fraction_of_total(model, 0.3)
result = MaxUtilityProblem(model, budget, weights).solve()
print(f"\nOptimal at 30% budget — {result.summary()}")
for asset_id, monitors in sorted(result.deployment.by_asset().items()):
    print(f"  {asset_id:10s}: {', '.join(m.split('@')[0] for m in monitors)}")

# Which monitors carry the deployment? (Shapley decomposition)
print()
print(contribution_report(model, result.deployment, weights, shapley_samples=150))

# How does it hold up when monitors fail?
curve = robustness_curve(model, result.deployment, 3, weights)
expected = [
    expected_utility_under_failures(model, result.deployment, rate, weights, seed=1)
    for rate in (0.0, 0.1, 0.3)
]
print()
print(render_table(
    ["k monitors disabled (worst case)", "utility"],
    [[k, u] for k, u in curve],
    title="Static robustness (targeted failures)",
))
print(f"\nExpected utility at random failure rates 0/0.1/0.3: "
      f"{expected[0]:.3f} / {expected[1]:.3f} / {expected[2]:.3f}")

# Operational check: campaign with 20% of monitors down per run.
campaign = run_campaign(
    model, result.deployment, repetitions=10, seed=3, monitor_failure_rate=0.2
)
print(f"\nSimulated campaign with 20% per-run monitor outages: "
      f"detection rate {campaign.detection_rate:.2f}, "
      f"step completeness {campaign.mean_step_completeness:.2f}")
