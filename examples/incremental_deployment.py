"""Incremental re-optimization when the threat model grows.

Monitoring deployments are not green-field: monitors already running
stay (sunk admin cost, change control), and the question is what to
*add* when new attacks enter the threat model.  This example:

1. optimizes for the original attack catalog at a small budget;
2. extends the model with a new attack class (API abuse against the
   app tier) whose steps today's deployment barely sees;
3. re-optimizes with the existing monitors pinned and a budget
   increment, and compares against a from-scratch redesign.

Run:  python examples/incremental_deployment.py
"""

from repro import Budget, UtilityWeights
from repro.casestudy import enterprise_web_service
from repro.core import model_from_dict, model_to_dict
from repro.metrics import attack_coverage
from repro.optimize import MaxUtilityProblem

weights = UtilityWeights()

# -- 1. today's deployment for today's threats ----------------------------
model = enterprise_web_service()
budget = Budget.fraction_of_total(model, 0.15)
today = MaxUtilityProblem(model, budget, weights).solve()
print(f"Today: {today.summary()}")

# -- 2. the threat model grows ---------------------------------------------
# Extend via the serialized form: add events at the app tier evidenced by
# data types existing monitors produce, plus one new attack using them.
document = model_to_dict(model)
document["events"] += [
    {"id": "api-enum@app-1", "name": "API endpoint enumeration", "asset": "app-1"},
    {"id": "api-abuse@app-1", "name": "Bulk API data harvesting", "asset": "app-1"},
]
document["evidence"] += [
    {"data_type": "app_log", "event": "api-enum@app-1", "weight": 0.9},
    {"data_type": "net_flow", "event": "api-enum@app-1", "weight": 0.4},
    {"data_type": "app_log", "event": "api-abuse@app-1", "weight": 0.95},
    {"data_type": "db_audit", "event": "api-abuse@app-1", "weight": 0.5},
]
document["attacks"].append(
    {
        "id": "api-abuse",
        "name": "API abuse / data harvesting (CAPEC-210)",
        "importance": 0.9,
        "steps": [
            {"event": "api-enum@app-1"},
            {"event": "api-abuse@app-1"},
        ],
    }
)
grown = model_from_dict(document)
existing = today.monitor_ids & set(grown.monitors)

print(f"\nNew attack 'api-abuse' coverage under today's deployment: "
      f"{attack_coverage(grown, existing, 'api-abuse'):.2f}")

# -- 3. incremental vs. green-field -----------------------------------------
bigger_budget = Budget.fraction_of_total(grown, 0.20)

incremental = MaxUtilityProblem(
    grown, bigger_budget, weights, forced_monitors=existing
).solve()
added = sorted(incremental.monitor_ids - existing)
print(f"\nIncremental re-optimization (existing {len(existing)} monitors pinned):")
print(f"  adds {len(added)} monitors: {', '.join(added) or 'none'}")
print(f"  utility {incremental.utility:.3f}, "
      f"new-attack coverage {attack_coverage(grown, incremental.monitor_ids, 'api-abuse'):.2f}")

green_field = MaxUtilityProblem(grown, bigger_budget, weights).solve()
removed = sorted(existing - green_field.monitor_ids)
print(f"\nGreen-field redesign at the same budget:")
print(f"  utility {green_field.utility:.3f} "
      f"(incremental gives up {green_field.utility - incremental.utility:.4f} "
      f"to keep {len(removed)} already-running monitors: {', '.join(removed) or 'none'})")
