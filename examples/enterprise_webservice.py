"""The paper's use case end to end: the enterprise Web service.

Loads the built-in case study (DMZ topology, 12 monitor types placed at
every compatible asset, 22 CAPEC-style attacks), audits the model, then
answers the two questions the methodology is for:

1. *Given this budget, what should we deploy?*  (max-utility ILP)
2. *Given these security requirements, what must we spend?* (min-cost ILP)

Run:  python examples/enterprise_webservice.py
"""

from repro import Budget, UtilityWeights, audit_model
from repro.analysis import evaluate_deployment
from repro.casestudy import enterprise_web_service
from repro.metrics import budget_utilization
from repro.optimize import MaxUtilityProblem, MinCostProblem

model = enterprise_web_service()
print(model)
print(f"Total cost of deploying everything: {model.total_cost().as_dict()}")

# -- audit: what can this model never achieve? -------------------------
warnings = [f for f in audit_model(model) if f.severity.value == "warning"]
print(f"\nAudit: {len(warnings)} warnings (idle-but-deployable monitors are expected):")
for finding in warnings[:5]:
    print(f"  {finding}")
if len(warnings) > 5:
    print(f"  ... and {len(warnings) - 5} more")

# -- question 1: best deployment for 25% of the full cost ---------------
weights = UtilityWeights()  # 0.6 coverage + 0.25 redundancy + 0.15 richness
budget = Budget.fraction_of_total(model, 0.25)
best = MaxUtilityProblem(model, budget, weights).solve()
print(f"\n[1] Optimal deployment at 25% budget — {best.summary()}")
for asset_id, monitors in sorted(best.deployment.by_asset().items()):
    print(f"  {asset_id:8s}: {', '.join(m.split('@')[0] for m in monitors)}")
print(f"  budget utilization: "
      f"{ {d: round(u, 2) for d, u in budget_utilization(model, best.monitor_ids, budget).items()} }")

# -- question 2: cheapest deployment meeting hard requirements -----------
requirements = MinCostProblem(
    model,
    min_utility=0.75,
    fully_cover=["db-exfiltration", "webshell@web-1", "webshell@web-2"],
    weights=weights,
)
cheapest = requirements.solve()
print(f"\n[2] Cheapest deployment with utility >= 0.75 and the web-shell and "
      f"DB-exfiltration kill chains fully covered:")
print(f"  {len(cheapest.deployment)} monitors, scalar cost "
      f"{cheapest.deployment.cost().scalarize():.0f}, utility {cheapest.utility:.3f}")

# -- validate operationally ----------------------------------------------
report = evaluate_deployment(model, best.deployment, weights, simulate=True, seed=7)
campaign = report.campaign
print(f"\n[3] Simulated campaign against deployment [1]: "
      f"detection rate {campaign.detection_rate:.2f}, "
      f"mean latency {campaign.mean_detection_latency:.0f}s, "
      f"forensic step completeness {campaign.mean_step_completeness:.2f}")

undetected = sorted(
    attack_id for attack_id, rate in campaign.per_attack_detection.items() if rate < 0.5
)
print(f"  attacks detected in <50% of runs: {undetected or 'none'}")
