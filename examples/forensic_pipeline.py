"""Forensic pipeline: export simulated evidence, re-score it offline.

Monitoring exists for two consumers: the real-time detector and the
after-the-fact analyst.  This example exercises the analyst's path:

1. run an attack campaign and keep the raw observation records;
2. export them as a JSONL trace (the interchange format a SIEM or
   notebook would ingest);
3. reload the trace and reconstruct each incident from evidence alone —
   no access to the simulator's ground truth beyond run/attack labels;
4. show how reconstruction quality differs between a cheap and a rich
   deployment on the *same* incidents.

Run:  python examples/forensic_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import Budget
from repro.analysis import render_table
from repro.casestudy import enterprise_web_service
from repro.optimize import MaxUtilityProblem
from repro.simulation import load_trace, reconstruct, run_campaign, save_trace

model = enterprise_web_service()

cheap = MaxUtilityProblem(model, Budget.fraction_of_total(model, 0.08)).solve()
rich = MaxUtilityProblem(model, Budget.fraction_of_total(model, 0.40)).solve()
print(f"cheap deployment: {cheap.summary()}")
print(f"rich deployment : {rich.summary()}")

workdir = Path(tempfile.mkdtemp(prefix="repro-forensics-"))
rows = []
for label, result in (("cheap", cheap), ("rich", rich)):
    campaign = run_campaign(
        model, result.deployment, repetitions=5, seed=99, keep_observations=True
    )
    trace_path = workdir / f"{label}.jsonl"
    written = save_trace(campaign, trace_path)

    # The "analyst": reload the trace and rebuild every incident.
    evidence = load_trace(trace_path)
    complete = 0
    step_total = 0.0
    field_total = 0.0
    for run in campaign.runs:
        report = reconstruct(model, run.run_id, run.attack_id, evidence)
        complete += report.is_complete
        step_total += report.step_completeness
        field_total += report.field_completeness

    rows.append(
        [
            label,
            len(result.deployment),
            written,
            f"{complete}/{len(campaign.runs)}",
            step_total / len(campaign.runs),
            field_total / len(campaign.runs),
        ]
    )
    print(f"\n{label}: wrote {written} evidence records to {trace_path}")

print()
print(render_table(
    ["deployment", "#monitors", "records", "fully reconstructed", "step compl.", "field compl."],
    rows,
    title="Offline incident reconstruction from exported traces",
))
print("\nThe rich deployment does not just detect more — its traces let the "
      "analyst rebuild nearly every timeline with field-level detail.")
