"""Operating a deployment over time: robustness, gaps, and rebalancing.

Optimal placement is not a one-shot decision.  This example walks the
lifecycle the library supports:

1. deploy the nominal optimum at a fixed budget;
2. check it against *threat-model shift* (robust max-min optimization);
3. triage its remaining *coverage gaps* and the cheapest fixes;
4. when the budget grows, *rebalance* with switching penalties instead
   of re-optimizing from scratch, and compare the churn.

Run:  python examples/threat_lifecycle.py
"""

from repro import Budget, UtilityWeights
from repro.analysis import gap_report
from repro.casestudy import enterprise_web_service
from repro.optimize import (
    ImportanceScenario,
    MaxUtilityProblem,
    RebalanceProblem,
    RobustMaxUtilityProblem,
    scenario_utility,
)

model = enterprise_web_service()
weights = UtilityWeights()
budget = Budget.fraction_of_total(model, 0.15)

# -- 1. nominal optimum ----------------------------------------------------
nominal = MaxUtilityProblem(model, budget, weights).solve()
print(f"[1] Nominal optimum: {nominal.summary()}")

# -- 2. what if the threat landscape shifts? --------------------------------
web_attacks = [a for a in model.attacks if "@web-" in a]
infra_attacks = [a for a in model.attacks if "@web-" not in a]
scenarios = [
    ImportanceScenario("web-deprioritized", {a: 0.1 for a in web_attacks}),
    ImportanceScenario("infra-deprioritized", {a: 0.1 for a in infra_attacks}),
]
robust = RobustMaxUtilityProblem(model, budget, scenarios).solve()
print("\n[2] Robustness to threat-model shift:")
for scenario in [ImportanceScenario("nominal")] + scenarios:
    nominal_value = scenario_utility(model, nominal.monitor_ids, scenario, weights)
    robust_value = scenario_utility(model, robust.monitor_ids, scenario, weights)
    print(f"  {scenario.name:22s}: nominal-opt {nominal_value:.3f}   robust {robust_value:.3f}")
print(f"  -> robust placement lifts the worst case by "
      f"{min(scenario_utility(model, robust.monitor_ids, s, weights) for s in scenarios) - min(scenario_utility(model, nominal.monitor_ids, s, weights) for s in scenarios):+.3f} "
      f"utility for {nominal.utility - robust.deployment.utility(weights):.3f} nominal give-up")

# -- 3. where is the nominal deployment still blind? -------------------------
print("\n[3] Coverage gaps of the nominal deployment (threshold 0.6):\n")
print(gap_report(model, nominal.deployment, threshold=0.6, max_fixes=1))

# -- 4. budget grows: rebalance vs. redesign ---------------------------------
bigger = Budget.fraction_of_total(model, 0.30)
redesign = MaxUtilityProblem(model, bigger, weights).solve()
rebalance = RebalanceProblem(
    model, bigger, nominal.monitor_ids, weights,
    removal_penalty=0.01, addition_penalty=0.002,
).solve()

redesign_removed = len(nominal.monitor_ids - redesign.monitor_ids)
print(f"\n[4] Budget grows to 30%:")
print(f"  from-scratch redesign: utility {redesign.utility:.3f}, "
      f"removes {redesign_removed} running monitors, "
      f"adds {len(redesign.monitor_ids - nominal.monitor_ids)}")
print(f"  penalized rebalance  : utility {rebalance.utility:.3f}, "
      f"removes {int(rebalance.stats['removed'])} running monitors, "
      f"adds {int(rebalance.stats['added'])}")
print(f"  -> rebalancing keeps churn down at a utility cost of "
      f"{redesign.utility - rebalance.utility:.4f}")
