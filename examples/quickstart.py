"""Quickstart: model a tiny system, optimize monitor placement, report.

This walks the paper's full pipeline in ~60 lines on a three-host
system: define assets and topology, declare what monitors can be
deployed and what data they produce, link data to intrusion events,
describe attacks, then ask for the best deployment a budget can buy.

Run:  python examples/quickstart.py
"""

from repro import AssetKind, Budget, ModelBuilder, MonitorScope
from repro.analysis import evaluate_deployment
from repro.optimize import MaxUtilityProblem

# 1. Assets and topology: a switch connecting a web host and a database.
builder = ModelBuilder("quickstart")
builder.asset("web", kind=AssetKind.SERVER, zone="dmz")
builder.asset("db", kind=AssetKind.DATABASE, zone="internal")
builder.asset("switch", kind=AssetKind.NETWORK_DEVICE)
builder.link("switch", "web")
builder.link("switch", "db")

# 2. Data types and monitor types (with multi-dimensional costs).
builder.data_type("access_log", fields=["src_ip", "url", "status"])
builder.data_type("flow", fields=["src_ip", "dst_ip", "bytes"])
builder.data_type("db_audit", fields=["query", "db_user"])
builder.monitor_type(
    "weblog", data_types=["access_log"], cost={"cpu": 2, "storage": 3}
)
builder.monitor_type(
    "netflow",
    data_types=["flow"],
    cost={"cpu": 5, "network": 4},
    scope=MonitorScope.NETWORK,  # sees the switch and both hosts
    deployable_kinds=[AssetKind.NETWORK_DEVICE],
)
builder.monitor_type(
    "dbaudit", data_types=["db_audit"], cost={"cpu": 6, "storage": 5},
    deployable_kinds=[AssetKind.DATABASE],
)

# 3. Deployable monitor instances (the optimizer picks a subset).
builder.monitor("weblog", "web")
builder.monitor("netflow", "switch")
builder.monitor("dbaudit", "db")

# 4. Intrusion events and the evidence relation.
builder.event("sqli", "SQL injection request", asset="web")
builder.event("dump", "Bulk table read", asset="db")
builder.evidence("access_log", "sqli", weight=0.9)
builder.evidence("flow", "sqli", weight=0.4)
builder.evidence("db_audit", "dump", weight=1.0)
builder.evidence("flow", "dump", weight=0.3)

# 5. A two-step attack chaining the events.
builder.attack("sql-injection", steps=["sqli", "dump"], importance=1.0)

model = builder.build()
print(model)

# 6. Optimize: the best deployment a cpu<=8 budget can buy.
result = MaxUtilityProblem(model, Budget.of(cpu=8)).solve()
print(f"\nOptimal under cpu<=8: {sorted(result.monitor_ids)}")
print(result.summary())

# 7. Full evaluation report, with a simulated attack campaign.
report = evaluate_deployment(model, result.deployment, simulate=True, seed=1)
print()
print(report.to_text())
