"""End-to-end integration tests across module boundaries.

Each test walks a complete user workflow — model → metrics → optimize →
validate — the way the examples do, asserting the cross-module
invariants that unit tests cannot see.
"""

import pytest

from repro.analysis import evaluate_deployment
from repro.casestudy import enterprise_web_service, scada_substation, synthetic_model
from repro.core import load_model, model_from_dict, model_to_dict, save_model
from repro.metrics import Budget, UtilityWeights, utility
from repro.optimize import (
    Deployment,
    MaxUtilityProblem,
    MinCostProblem,
    budget_sweep,
    solve_greedy,
)
from repro.simulation import run_campaign


class TestFullPipeline:
    @pytest.mark.parametrize("factory", [enterprise_web_service, scada_substation])
    def test_model_optimize_simulate(self, factory):
        model = factory()
        budget = Budget.fraction_of_total(model, 0.3)
        result = MaxUtilityProblem(model, budget).solve()
        assert result.optimal
        assert budget.allows(result.deployment.cost())

        report = evaluate_deployment(
            model, result.deployment, simulate=True, repetitions=3, seed=1
        )
        assert report.utility == pytest.approx(result.utility)
        assert report.campaign is not None
        # A deployment with substantial utility must detect something.
        if result.utility > 0.5:
            assert report.campaign.detection_rate > 0.3

    def test_serialized_model_optimizes_identically(self, tmp_path, web_model):
        path = tmp_path / "model.json"
        save_model(web_model, path)
        clone = load_model(path)
        budget_a = Budget.fraction_of_total(web_model, 0.2)
        budget_b = Budget.fraction_of_total(clone, 0.2)
        a = MaxUtilityProblem(web_model, budget_a).solve()
        b = MaxUtilityProblem(clone, budget_b).solve()
        assert a.utility == pytest.approx(b.utility)

    def test_max_utility_then_min_cost_consistency(self, web_model):
        """Solving min-cost at the utility the max-utility optimum reached
        must not need more than that optimum spent."""
        budget = Budget.fraction_of_total(web_model, 0.15)
        max_result = MaxUtilityProblem(web_model, budget).solve()
        spent = max_result.deployment.cost().scalarize()
        min_result = MinCostProblem(
            web_model, min_utility=max_result.utility - 1e-6
        ).solve()
        assert min_result.objective <= spent + 1e-6

    def test_sweep_brackets_single_solves(self, web_model):
        points = budget_sweep(web_model, [0.1, 0.3])
        single = MaxUtilityProblem(
            web_model, Budget.fraction_of_total(web_model, 0.2)
        ).solve()
        assert points[0].utility <= single.utility <= points[1].utility


class TestCrossModelIsolation:
    def test_deployments_do_not_leak_between_models(self):
        a = synthetic_model(monitors=10, attacks=5, seed=1)
        b = synthetic_model(monitors=10, attacks=5, seed=2)
        deployment = Deployment.full(a)
        with pytest.raises(Exception):
            run_campaign(b, deployment, repetitions=1)

    def test_model_round_trip_preserves_optimum(self):
        model = synthetic_model(monitors=15, attacks=10, seed=3)
        clone = model_from_dict(model_to_dict(model))
        weights = UtilityWeights()
        budget_model = Budget.fraction_of_total(model, 0.4)
        budget_clone = Budget.fraction_of_total(clone, 0.4)
        assert MaxUtilityProblem(model, budget_model, weights).solve().utility == pytest.approx(
            MaxUtilityProblem(clone, budget_clone, weights).solve().utility
        )


class TestGreedyVersusExactAcrossScales:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gap_never_negative_and_often_positive(self, seed):
        model = synthetic_model(monitors=25, attacks=15, seed=seed)
        budget = Budget.fraction_of_total(model, 0.25)
        weights = UtilityWeights()
        exact = MaxUtilityProblem(model, budget, weights).solve()
        greedy = solve_greedy(model, budget, weights)
        assert greedy.utility <= exact.utility + 1e-9
        # both agree with the reference metric
        assert exact.utility == pytest.approx(utility(model, exact.monitor_ids, weights))
        assert greedy.utility == pytest.approx(utility(model, greedy.monitor_ids, weights))
