"""Tests for the ``--trace`` capture flag and the ``stats`` command."""

import json

import pytest

from repro.cli import main
from repro.core import save_model
from repro.obs import load_trace


@pytest.fixture()
def toy_model_file(toy_model, tmp_path):
    path = tmp_path / "toy.json"
    save_model(toy_model, path)
    return path


@pytest.fixture()
def sweep_trace(toy_model_file, tmp_path, capsys):
    """A trace file captured from a parallel budget sweep."""
    path = tmp_path / "trace.json"
    code = main(
        [
            "sweep",
            "--model", str(toy_model_file),
            "--fractions", "0.3,0.6,1.0",
            "--workers", "2",
            "--trace", str(path),
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "Utility vs. budget" in captured.out
    assert f"trace written to {path}" in captured.err
    return path


class TestTraceCapture:
    def test_sweep_trace_is_a_loadable_chrome_trace(self, sweep_trace):
        payload = load_trace(sweep_trace)
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        names = {event["name"] for event in events}
        # The acceptance criterion: solver, engine, cache, and
        # per-worker spans all present in one file.
        assert {"optimize.budget_sweep", "parallel.map", "solver.scipy_milp",
                "engine.build", "engine.evaluate", "cache.lookup"} <= names
        tids = {event["tid"] for event in events}
        assert {"task-0", "task-1", "task-2"} <= tids
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0

    def test_sweep_trace_carries_the_metrics_registry(self, sweep_trace):
        metrics = load_trace(sweep_trace)["metrics"]
        assert metrics["counters"]["solver.solves"] >= 3.0
        assert metrics["counters"]["parallel.tasks"] == 3.0
        assert metrics["histograms"]["solver.solve_seconds"]["count"] >= 3

    def test_untraced_run_writes_nothing(self, toy_model_file, tmp_path, capsys):
        assert main(
            ["sweep", "--model", str(toy_model_file), "--fractions", "1.0"]
        ) == 0
        assert "trace written" not in capsys.readouterr().err
        assert [p.name for p in tmp_path.glob("*.json")] == ["toy.json"]

    def test_optimize_supports_trace_too(self, toy_model_file, tmp_path, capsys):
        path = tmp_path / "opt.json"
        assert main(
            [
                "optimize",
                "--model", str(toy_model_file),
                "--budget-fraction", "0.5",
                "--trace", str(path),
            ]
        ) == 0
        names = {event["name"] for event in load_trace(path)["traceEvents"]}
        assert "optimize.max_utility" in names
        assert "optimize.formulate" in names


class TestStats:
    def test_renders_counters_hit_rate_and_histograms(self, sweep_trace, capsys):
        assert main(["stats", str(sweep_trace)]) == 0
        out = capsys.readouterr().out
        assert "trace events" in out
        assert "Counters" in out
        assert "cache hit rate:" in out
        assert "solver.solve_seconds" in out
        assert "engine.build_seconds" in out

    def test_stats_does_not_modify_the_trace_file(self, sweep_trace, capsys):
        """Regression: the stats positional must not trigger --trace capture."""
        before = sweep_trace.read_text()
        assert main(["stats", str(sweep_trace)]) == 0
        captured = capsys.readouterr()
        assert sweep_trace.read_text() == before
        assert "trace written" not in captured.err

    def test_accepts_a_bare_registry_snapshot(self, tmp_path, capsys):
        snapshot = {
            "counters": {"cache.hits": 3.0, "cache.misses": 1.0},
            "gauges": {},
            "histograms": {},
        }
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(snapshot))
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cache hit rate: 75.0% (3 hits / 4 lookups, 0 evictions)" in out

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err
