"""Tests for MaxUtilityProblem and MinCostProblem."""

import itertools

import pytest

from repro.errors import InfeasibleError, OptimizationError
from repro.metrics.cost import Budget
from repro.metrics.coverage import attack_coverage
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.problem import MaxUtilityProblem, MinCostProblem

BACKENDS = ["scipy", "branch-and-bound"]


def brute_force_max_utility(model, budget, weights):
    """Reference optimum by exhausting all subsets."""
    best = (0.0, frozenset())
    ids = sorted(model.monitors)
    for r in range(len(ids) + 1):
        for combo in itertools.combinations(ids, r):
            selected = frozenset(combo)
            if not budget.allows(model.deployment_cost(selected)):
                continue
            value = utility(model, selected, weights)
            if value > best[0] + 1e-12:
                best = (value, selected)
    return best


@pytest.mark.parametrize("backend", BACKENDS)
class TestMaxUtility:
    @pytest.mark.parametrize("cpu_budget", [0, 2, 4, 6, 9, 100])
    def test_matches_brute_force(self, toy_model, backend, cpu_budget):
        budget = Budget.of(cpu=cpu_budget)
        weights = UtilityWeights()
        result = MaxUtilityProblem(toy_model, budget, weights).solve(backend)
        best_value, _ = brute_force_max_utility(toy_model, budget, weights)
        assert result.utility == pytest.approx(best_value, abs=1e-6)
        assert result.optimal

    def test_objective_equals_reference_utility(self, toy_model, backend):
        result = MaxUtilityProblem(toy_model, Budget.of(cpu=6)).solve(backend)
        assert result.objective == pytest.approx(result.utility, abs=1e-6)

    def test_budget_respected(self, toy_model, backend):
        budget = Budget.of(cpu=6, network=2)
        result = MaxUtilityProblem(toy_model, budget).solve(backend)
        assert budget.allows(result.deployment.cost())

    def test_forced_monitors_present(self, toy_model, backend):
        result = MaxUtilityProblem(
            toy_model, Budget.of(cpu=100), forced_monitors=["mdb@h2"]
        ).solve(backend)
        assert "mdb@h2" in result.monitor_ids

    def test_forced_monitors_exceeding_budget_infeasible(self, toy_model, backend):
        with pytest.raises(InfeasibleError):
            MaxUtilityProblem(
                toy_model, Budget.of(cpu=1), forced_monitors=["mnet@n1"]
            ).solve(backend)


class TestMaxUtilityMisc:
    def test_zero_budget_selects_nothing_costly(self, toy_model):
        result = MaxUtilityProblem(toy_model, Budget.of(cpu=0.5)).solve()
        assert result.monitor_ids == frozenset()
        assert result.utility == 0.0

    def test_stats_reported(self, toy_model):
        result = MaxUtilityProblem(toy_model, Budget.of(cpu=6)).solve()
        assert result.stats["variables"] > 0
        assert result.stats["constraints"] > 0

    def test_multidimensional_budget_binds_tightest_dimension(self, toy_model):
        # Generous cpu but zero network forbids mnet@n1 specifically.
        result = MaxUtilityProblem(toy_model, Budget.of(cpu=100, network=1)).solve()
        assert "mnet@n1" not in result.monitor_ids

    def test_build_without_solve(self, toy_model):
        milp, builder = MaxUtilityProblem(toy_model, Budget.of(cpu=6)).build()
        assert milp.num_variables >= len(toy_model.monitors)
        assert set(builder.selection) == set(toy_model.monitors)


class TestMinCost:
    def test_requires_some_requirement(self, toy_model):
        with pytest.raises(OptimizationError, match="at least one requirement"):
            MinCostProblem(toy_model)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_min_utility_floor_met_cheaply(self, toy_model, backend):
        weights = UtilityWeights.coverage_only()
        result = MinCostProblem(toy_model, min_utility=0.5, weights=weights).solve(backend)
        assert utility(toy_model, result.monitor_ids, weights) >= 0.5 - 1e-6
        # No strictly cheaper subset satisfies the floor (brute force).
        ids = sorted(toy_model.monitors)
        for r in range(len(ids) + 1):
            for combo in itertools.combinations(ids, r):
                selected = frozenset(combo)
                if utility(toy_model, selected, weights) >= 0.5 - 1e-9:
                    cost = toy_model.deployment_cost(selected).scalarize()
                    assert cost >= result.objective - 1e-6

    def test_attack_coverage_floors(self, toy_model):
        result = MinCostProblem(toy_model, min_attack_coverage={"A": 0.9}).solve()
        assert attack_coverage(toy_model, result.monitor_ids, "A") >= 0.9 - 1e-6

    def test_fully_cover(self, toy_model):
        result = MinCostProblem(toy_model, fully_cover=["A", "B"]).solve()
        from repro.metrics.coverage import fully_covered_attacks

        assert fully_covered_attacks(toy_model, result.monitor_ids) >= {"A", "B"}

    def test_unattainable_floor_infeasible(self, toy_model):
        # Attack A's best possible coverage is 0.9 (e1=1.0, e2=0.8).
        with pytest.raises(InfeasibleError):
            MinCostProblem(toy_model, min_attack_coverage={"A": 0.95}).solve()

    def test_unknown_attack_rejected(self, toy_model):
        with pytest.raises(OptimizationError, match="unknown attack"):
            MinCostProblem(toy_model, min_attack_coverage={"ghost": 0.5})
        with pytest.raises(OptimizationError, match="unknown attack"):
            MinCostProblem(toy_model, fully_cover=["ghost"])

    def test_floor_out_of_range_rejected(self, toy_model):
        with pytest.raises(OptimizationError):
            MinCostProblem(toy_model, min_utility=1.5)
        with pytest.raises(OptimizationError):
            MinCostProblem(toy_model, min_attack_coverage={"A": -0.1})

    def test_cost_dimension_weights_change_optimum(self, toy_model):
        # Weighting network cost heavily should steer away from mnet@n1
        # when an alternative covering deployment exists.
        cheap_network = MinCostProblem(
            toy_model,
            fully_cover=["A"],
            cost_dimension_weights={"cpu": 1.0, "network": 100.0, "storage": 1.0},
        ).solve()
        assert "mnet@n1" not in cheap_network.monitor_ids

    def test_zero_floor_costs_nothing(self, toy_model):
        result = MinCostProblem(toy_model, min_utility=0.0).solve()
        assert result.monitor_ids == frozenset()
        assert result.objective == pytest.approx(0.0)


class TestCardinalityCap:
    def test_cap_respected(self, toy_model):
        result = MaxUtilityProblem(
            toy_model, Budget.of(cpu=100), max_monitors=2
        ).solve()
        assert len(result.deployment) <= 2
        assert result.optimal

    def test_cap_zero_selects_nothing(self, toy_model):
        result = MaxUtilityProblem(
            toy_model, Budget.of(cpu=100), max_monitors=0
        ).solve()
        assert result.monitor_ids == frozenset()

    def test_cap_binds_versus_uncapped(self, toy_model):
        uncapped = MaxUtilityProblem(toy_model, Budget.of(cpu=100)).solve()
        capped = MaxUtilityProblem(toy_model, Budget.of(cpu=100), max_monitors=1).solve()
        assert capped.utility <= uncapped.utility
        assert len(capped.deployment) == 1

    def test_capped_optimum_is_best_subset(self, toy_model):
        """max_monitors=1 must return the best single monitor."""
        weights = UtilityWeights()
        best_single = max(
            utility(toy_model, {m}, weights) for m in toy_model.monitors
        )
        capped = MaxUtilityProblem(
            toy_model, Budget.of(cpu=100), weights, max_monitors=1
        ).solve()
        assert capped.utility == pytest.approx(best_single)

    def test_negative_cap_rejected(self, toy_model):
        with pytest.raises(OptimizationError):
            MaxUtilityProblem(toy_model, Budget.of(cpu=100), max_monitors=-1)


class TestRedundantCover:
    def test_two_source_floor(self, toy_model):
        from repro.metrics.redundancy import event_evidence_count

        # Attack A's required events e1 and e2 each have two providers.
        result = MinCostProblem(toy_model, redundant_cover={"A": 2}).solve()
        attack = toy_model.attack("A")
        for event_id in attack.required_event_ids:
            assert event_evidence_count(toy_model, result.monitor_ids, event_id) >= 2

    def test_unattainable_floor_infeasible(self, toy_model):
        # e1 and e2 only have two providers each; three are impossible.
        with pytest.raises(InfeasibleError):
            MinCostProblem(toy_model, redundant_cover={"A": 3}).solve()

    def test_costs_more_than_single_cover(self, toy_model):
        single = MinCostProblem(toy_model, fully_cover=["A"]).solve()
        double = MinCostProblem(toy_model, redundant_cover={"A": 2}).solve()
        assert double.objective >= single.objective

    def test_validation(self, toy_model):
        with pytest.raises(OptimizationError, match="unknown attack"):
            MinCostProblem(toy_model, redundant_cover={"ghost": 2})
        with pytest.raises(OptimizationError, match=">= 1"):
            MinCostProblem(toy_model, redundant_cover={"A": 0})

    def test_counts_as_a_requirement(self, toy_model):
        # redundant_cover alone is a valid requirement set.
        result = MinCostProblem(toy_model, redundant_cover={"B": 1}).solve()
        assert result.optimal
