"""Tests for deployment rebalancing with switching costs."""

import pytest

from repro.errors import OptimizationError
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.problem import MaxUtilityProblem
from repro.optimize.rebalance import RebalanceProblem

WEIGHTS = UtilityWeights()


class TestRebalance:
    def test_zero_penalties_reduce_to_max_utility(self, toy_model):
        budget = Budget.of(cpu=6)
        plain = MaxUtilityProblem(toy_model, budget, WEIGHTS).solve()
        rebalanced = RebalanceProblem(
            toy_model, budget, ["mlog@h2"], WEIGHTS,
            removal_penalty=0.0, addition_penalty=0.0,
        ).solve()
        assert rebalanced.utility == pytest.approx(plain.utility, abs=1e-6)

    def test_huge_penalties_freeze_current_deployment(self, toy_model):
        current = {"mlog@h1", "mdb@h2"}
        result = RebalanceProblem(
            toy_model, Budget.of(cpu=100), current, WEIGHTS,
            removal_penalty=10.0, addition_penalty=10.0,
        ).solve()
        assert result.monitor_ids == frozenset(current)
        assert result.stats["removed"] == 0
        assert result.stats["added"] == 0

    def test_moderate_penalty_limits_churn(self, toy_model):
        """With mild penalties the rebalance keeps useful current
        monitors that a from-scratch optimum might swap for ties."""
        current = {"mlog@h1"}
        result = RebalanceProblem(
            toy_model, Budget.of(cpu=100), current, WEIGHTS,
            removal_penalty=0.05, addition_penalty=0.0,
        ).solve()
        assert "mlog@h1" in result.monitor_ids  # removal never pays here

    def test_change_accounting(self, toy_model):
        current = {"mlog@h2"}
        result = RebalanceProblem(
            toy_model, Budget.of(cpu=100), current, WEIGHTS,
            removal_penalty=0.0, addition_penalty=0.001,
        ).solve()
        removed = current - result.monitor_ids
        added = result.monitor_ids - current
        assert result.stats["removed"] == len(removed)
        assert result.stats["added"] == len(added)
        assert result.stats["change_penalty_paid"] == pytest.approx(
            0.001 * len(added)
        )

    def test_unknown_current_monitors_ignored(self, toy_model):
        result = RebalanceProblem(
            toy_model, Budget.of(cpu=6), ["retired-monitor"], WEIGHTS
        ).solve()
        assert result.optimal  # no error, no penalty for the ghost

    def test_budget_still_respected(self, toy_model):
        budget = Budget.of(cpu=6)
        result = RebalanceProblem(
            toy_model, budget, set(toy_model.monitors), WEIGHTS,
            removal_penalty=5.0,  # wants to keep everything...
        ).solve()
        assert budget.allows(result.deployment.cost())  # ...but can't

    def test_negative_penalty_rejected(self, toy_model):
        with pytest.raises(OptimizationError):
            RebalanceProblem(
                toy_model, Budget.of(cpu=6), [], removal_penalty=-1.0
            )

    def test_objective_includes_penalties(self, toy_model):
        """The solver objective equals utility minus penalties paid."""
        current = {"mlog@h2"}
        result = RebalanceProblem(
            toy_model, Budget.of(cpu=100), current, WEIGHTS,
            removal_penalty=0.02, addition_penalty=0.01,
        ).solve()
        removed = len(current - result.monitor_ids)
        added = len(result.monitor_ids - current)
        expected = result.utility - 0.02 * removed - 0.01 * added
        assert result.objective == pytest.approx(expected, abs=1e-6)
