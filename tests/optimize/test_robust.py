"""Tests for scenario-robust optimization."""

import itertools

import pytest

from repro.errors import OptimizationError
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.problem import MaxUtilityProblem
from repro.optimize.robust import (
    ImportanceScenario,
    RobustMaxUtilityProblem,
    scenario_utility,
)

WEIGHTS = UtilityWeights()


class TestImportanceScenario:
    def test_overrides_apply(self, toy_model):
        scenario = ImportanceScenario("shift", {"A": 0.2})
        assert scenario.importance_of(toy_model, "A") == 0.2
        assert scenario.importance_of(toy_model, "B") == 0.5  # model value

    def test_invalid_importance(self):
        with pytest.raises(OptimizationError):
            ImportanceScenario("bad", {"A": 1.5})

    def test_unknown_attack_caught_at_problem_construction(self, toy_model):
        scenario = ImportanceScenario("ghost", {"nope": 0.5})
        with pytest.raises(OptimizationError, match="unknown attacks"):
            RobustMaxUtilityProblem(toy_model, Budget.of(cpu=6), [scenario])


class TestScenarioUtility:
    def test_nominal_scenario_equals_metric(self, toy_model):
        scenario = ImportanceScenario("nominal")
        for deployed in ({"mnet@n1"}, set(toy_model.monitors), set()):
            assert scenario_utility(toy_model, deployed, scenario, WEIGHTS) == pytest.approx(
                utility(toy_model, deployed, WEIGHTS)
            )

    def test_zero_importance_removes_attack(self, toy_model):
        # With B removed, utility equals the A-only model's utility.
        scenario = ImportanceScenario("no-B", {"B": 0.0})
        deployed = {"mnet@n1"}
        # A-only overall coverage = attack A coverage (importance cancels).
        from repro.metrics.coverage import attack_coverage
        from repro.metrics.redundancy import attack_redundancy
        from repro.metrics.richness import attack_richness

        expected = (
            WEIGHTS.coverage * attack_coverage(toy_model, deployed, "A")
            + WEIGHTS.redundancy * attack_redundancy(toy_model, deployed, "A", 2)
            + WEIGHTS.richness * attack_richness(toy_model, deployed, "A")
        )
        assert scenario_utility(toy_model, deployed, scenario, WEIGHTS) == pytest.approx(expected)


class TestRobustProblem:
    def test_single_nominal_scenario_reduces_to_plain(self, toy_model):
        budget = Budget.of(cpu=6)
        robust = RobustMaxUtilityProblem(toy_model, budget, [], include_nominal=True).solve()
        plain = MaxUtilityProblem(toy_model, budget, WEIGHTS).solve()
        assert robust.utility == pytest.approx(plain.utility, abs=1e-6)

    def test_worst_case_is_min_over_scenarios(self, toy_model):
        scenarios = [
            ImportanceScenario("a-heavy", {"B": 0.1}),
            ImportanceScenario("b-heavy", {"A": 0.1}),
        ]
        result = RobustMaxUtilityProblem(toy_model, Budget.of(cpu=6), scenarios).solve()
        per_scenario = [v for k, v in result.stats.items() if k.startswith("utility[")]
        assert result.utility == pytest.approx(min(per_scenario), abs=1e-9)

    def test_robust_matches_brute_force(self, toy_model):
        scenarios = [
            ImportanceScenario("nominal"),
            ImportanceScenario("a-heavy", {"B": 0.1}),
            ImportanceScenario("b-heavy", {"A": 0.1}),
        ]
        budget = Budget.of(cpu=6)
        result = RobustMaxUtilityProblem(
            toy_model, budget, scenarios[1:], include_nominal=True
        ).solve()

        best = -1.0
        ids = sorted(toy_model.monitors)
        for r in range(len(ids) + 1):
            for combo in itertools.combinations(ids, r):
                selected = frozenset(combo)
                if not budget.allows(toy_model.deployment_cost(selected)):
                    continue
                worst = min(
                    scenario_utility(toy_model, selected, s, WEIGHTS) for s in scenarios
                )
                best = max(best, worst)
        assert result.utility == pytest.approx(best, abs=1e-6)

    def test_robust_never_exceeds_nominal_optimum(self, toy_model):
        budget = Budget.of(cpu=9)
        scenarios = [ImportanceScenario("a-heavy", {"B": 0.05})]
        robust = RobustMaxUtilityProblem(toy_model, budget, scenarios).solve()
        nominal = MaxUtilityProblem(toy_model, budget, WEIGHTS).solve()
        assert robust.utility <= nominal.utility + 1e-9

    def test_budget_respected(self, toy_model):
        budget = Budget.of(cpu=6)
        result = RobustMaxUtilityProblem(
            toy_model, budget, [ImportanceScenario("x", {"A": 0.3})]
        ).solve()
        assert budget.allows(result.deployment.cost())

    def test_duplicate_scenario_names_rejected(self, toy_model):
        scenarios = [ImportanceScenario("s"), ImportanceScenario("s")]
        with pytest.raises(OptimizationError, match="duplicate"):
            RobustMaxUtilityProblem(toy_model, Budget.of(cpu=6), scenarios,
                                    include_nominal=False)

    def test_no_scenarios_rejected(self, toy_model):
        with pytest.raises(OptimizationError, match="at least one"):
            RobustMaxUtilityProblem(toy_model, Budget.of(cpu=6), [], include_nominal=False)

    def test_infeasible_budget(self, toy_model):
        # Pin nothing; an impossible forced budget cannot happen here since
        # empty deployment is feasible — construct infeasibility via an
        # explicit zero-dimension budget plus forced cost is not supported,
        # so check the empty-budget path instead.
        result = RobustMaxUtilityProblem(
            toy_model, Budget.of(cpu=0.0), [ImportanceScenario("x")],
            include_nominal=False,
        ).solve()
        assert result.monitor_ids == frozenset()
