"""Tests for budget sweeps and Pareto frontier extraction."""

import pytest


from repro.metrics.utility import UtilityWeights
from repro.optimize.deployment import Deployment
from repro.optimize.greedy import solve_greedy
from repro.optimize.pareto import (
    budget_sweep,
    heuristic_sweep,
    pareto_frontier,
    solve_time_profile,
)

FRACTIONS = [0.0, 0.25, 0.5, 1.0]


class TestBudgetSweep:
    def test_utility_nondecreasing_in_budget(self, toy_model):
        points = budget_sweep(toy_model, FRACTIONS)
        utilities = [p.utility for p in points]
        assert utilities == sorted(utilities)

    def test_zero_fraction_zero_utility(self, toy_model):
        points = budget_sweep(toy_model, [0.0])
        assert points[0].utility == 0.0

    def test_full_fraction_reaches_full_utility(self, toy_model):
        from repro.metrics.utility import utility

        points = budget_sweep(toy_model, [1.0])
        assert points[0].utility == pytest.approx(
            utility(toy_model, toy_model.monitors)
        )

    def test_points_carry_budget_and_result(self, toy_model):
        point = budget_sweep(toy_model, [0.5])[0]
        assert point.fraction == 0.5
        assert point.budget.allows(point.result.deployment.cost())
        assert point.scalar_cost <= toy_model.total_cost().scalarize() * 0.5 + 1e-9


class TestHeuristicSweep:
    def test_same_budgets_as_exact_sweep(self, toy_model):
        exact = budget_sweep(toy_model, FRACTIONS)
        greedy = heuristic_sweep(toy_model, FRACTIONS, solve_greedy)
        for e, g in zip(exact, greedy):
            assert e.fraction == g.fraction
            assert g.utility <= e.utility + 1e-9

    def test_custom_weights_forwarded(self, toy_model):
        weights = UtilityWeights.coverage_only()
        points = heuristic_sweep(toy_model, [1.0], solve_greedy, weights)
        from repro.metrics.coverage import overall_coverage

        assert points[0].utility == pytest.approx(
            overall_coverage(toy_model, points[0].result.monitor_ids)
        )


class TestParetoFrontier:
    def test_dominated_deployments_removed(self, toy_model):
        cheap_good = Deployment.of(toy_model, ["mnet@n1"])  # cost 6
        expensive_same = Deployment.of(toy_model, ["mnet@n1", "mlog@h2"])  # higher utility
        everything = Deployment.full(toy_model)
        frontier = pareto_frontier([cheap_good, expensive_same, everything])
        costs = [c for c, _, _ in frontier]
        utilities = [u for _, u, _ in frontier]
        assert costs == sorted(costs)
        assert utilities == sorted(utilities)
        # strictly increasing utility along the frontier
        assert all(b > a for a, b in zip(utilities, utilities[1:]))

    def test_duplicate_cost_keeps_best(self, toy_model):
        a = Deployment.of(toy_model, ["mlog@h1"])  # cpu 2, storage 1
        b = Deployment.of(toy_model, ["mlog@h2"])  # same cost, different utility
        frontier = pareto_frontier([a, b])
        assert len(frontier) == 1

    def test_empty_input(self):
        assert pareto_frontier([]) == []


class TestSolveTimeProfile:
    def test_aggregates(self, toy_model):
        points = budget_sweep(toy_model, [0.5, 1.0])
        profile = solve_time_profile(points)
        assert profile["total"] >= profile["max"] >= profile["mean"] > 0

    def test_empty(self):
        assert solve_time_profile([]) == {"total": 0.0, "mean": 0.0, "max": 0.0}
