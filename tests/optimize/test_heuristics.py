"""Tests for the greedy, random, and annealing baselines."""

import pytest

from repro.errors import OptimizationError
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.annealing import solve_annealing
from repro.optimize.greedy import solve_greedy
from repro.optimize.problem import MaxUtilityProblem
from repro.optimize.random_search import solve_random

WEIGHTS = UtilityWeights()


class TestGreedy:
    def test_respects_budget(self, toy_model):
        budget = Budget.of(cpu=6)
        result = solve_greedy(toy_model, budget, WEIGHTS)
        assert budget.allows(result.deployment.cost())

    def test_never_beats_optimal(self, toy_model):
        for cpu in (0, 2, 4, 6, 9, 100):
            budget = Budget.of(cpu=cpu)
            greedy = solve_greedy(toy_model, budget, WEIGHTS)
            optimal = MaxUtilityProblem(toy_model, budget, WEIGHTS).solve()
            assert greedy.utility <= optimal.utility + 1e-9

    def test_finds_optimum_on_toy(self, toy_model):
        # On this small instance greedy should actually match the optimum
        # with a generous budget (no budget conflicts to be myopic about).
        budget = Budget.of(cpu=100)
        greedy = solve_greedy(toy_model, budget, WEIGHTS)
        optimal = MaxUtilityProblem(toy_model, budget, WEIGHTS).solve()
        assert greedy.utility == pytest.approx(optimal.utility)

    def test_utility_matches_deployment(self, toy_model):
        result = solve_greedy(toy_model, Budget.of(cpu=6), WEIGHTS)
        assert result.utility == pytest.approx(
            utility(toy_model, result.monitor_ids, WEIGHTS)
        )

    def test_forced_monitors_kept(self, toy_model):
        result = solve_greedy(
            toy_model, Budget.of(cpu=100), WEIGHTS, forced_monitors=["mdb@h2"]
        )
        assert "mdb@h2" in result.monitor_ids

    def test_deterministic(self, web_model):
        budget = Budget.fraction_of_total(web_model, 0.2)
        a = solve_greedy(web_model, budget, WEIGHTS)
        b = solve_greedy(web_model, budget, WEIGHTS)
        assert a.monitor_ids == b.monitor_ids

    def test_zero_budget_selects_nothing(self, toy_model):
        result = solve_greedy(toy_model, Budget.of(cpu=0.1), WEIGHTS)
        assert result.monitor_ids == frozenset()

    def test_method_label(self, toy_model):
        assert solve_greedy(toy_model, Budget.of(cpu=6)).method == "greedy"


class TestRandom:
    def test_respects_budget(self, toy_model):
        budget = Budget.of(cpu=6)
        result = solve_random(toy_model, budget, WEIGHTS, samples=20, seed=7)
        assert budget.allows(result.deployment.cost())

    def test_deterministic_per_seed(self, toy_model):
        budget = Budget.of(cpu=6)
        a = solve_random(toy_model, budget, WEIGHTS, samples=20, seed=7)
        b = solve_random(toy_model, budget, WEIGHTS, samples=20, seed=7)
        assert a.monitor_ids == b.monitor_ids

    def test_never_beats_optimal(self, toy_model):
        budget = Budget.of(cpu=6)
        result = solve_random(toy_model, budget, WEIGHTS, samples=50, seed=0)
        optimal = MaxUtilityProblem(toy_model, budget, WEIGHTS).solve()
        assert result.utility <= optimal.utility + 1e-9

    def test_more_samples_never_worse(self, web_model):
        budget = Budget.fraction_of_total(web_model, 0.2)
        few = solve_random(web_model, budget, WEIGHTS, samples=2, seed=3)
        many = solve_random(web_model, budget, WEIGHTS, samples=30, seed=3)
        assert many.utility >= few.utility - 1e-12

    def test_invalid_samples(self, toy_model):
        with pytest.raises(OptimizationError):
            solve_random(toy_model, Budget.of(cpu=6), samples=0)


class TestAnnealing:
    def test_respects_budget(self, toy_model):
        budget = Budget.of(cpu=6)
        result = solve_annealing(toy_model, budget, WEIGHTS, iterations=300, seed=5)
        assert budget.allows(result.deployment.cost())

    def test_deterministic_per_seed(self, toy_model):
        budget = Budget.of(cpu=6)
        a = solve_annealing(toy_model, budget, WEIGHTS, iterations=300, seed=5)
        b = solve_annealing(toy_model, budget, WEIGHTS, iterations=300, seed=5)
        assert a.monitor_ids == b.monitor_ids

    def test_never_beats_optimal(self, toy_model):
        budget = Budget.of(cpu=6)
        result = solve_annealing(toy_model, budget, WEIGHTS, iterations=500, seed=0)
        optimal = MaxUtilityProblem(toy_model, budget, WEIGHTS).solve()
        assert result.utility <= optimal.utility + 1e-9

    def test_finds_good_solution_on_toy(self, toy_model):
        budget = Budget.of(cpu=100)
        result = solve_annealing(toy_model, budget, WEIGHTS, iterations=1000, seed=0)
        optimal = MaxUtilityProblem(toy_model, budget, WEIGHTS).solve()
        assert result.utility >= 0.9 * optimal.utility

    def test_invalid_parameters(self, toy_model):
        with pytest.raises(OptimizationError):
            solve_annealing(toy_model, Budget.of(cpu=6), iterations=0)
        with pytest.raises(OptimizationError):
            solve_annealing(toy_model, Budget.of(cpu=6), cooling=1.5)

    def test_stats_report_acceptance(self, toy_model):
        result = solve_annealing(toy_model, Budget.of(cpu=100), iterations=100, seed=1)
        assert 0 <= result.stats["accepted"] <= 100


class TestLazyGreedyEquivalence:
    """The lazy-evaluation heap must be an optimization, not a semantics
    change: it has to pick the same deployments as the naive greedy that
    re-evaluates every candidate each round."""

    @staticmethod
    def naive_greedy(model, budget, weights):
        selected: set[str] = set()
        spend = model.deployment_cost(())
        current = utility(model, selected, weights)
        while True:
            best_monitor, best_ratio, best_gain = None, 0.0, 0.0
            for monitor_id in model.monitors:
                if monitor_id in selected:
                    continue
                cost = model.monitor_cost(monitor_id)
                if not budget.allows(spend + cost):
                    continue
                gain = utility(model, selected | {monitor_id}, weights) - current
                if gain <= 0:
                    continue
                scalar = cost.scalarize()
                ratio = gain / scalar if scalar > 0 else float("inf")
                if ratio > best_ratio or (
                    ratio == best_ratio
                    and best_monitor is not None
                    and monitor_id < best_monitor
                ):
                    best_monitor, best_ratio, best_gain = monitor_id, ratio, gain
            if best_monitor is None:
                return frozenset(selected)
            selected.add(best_monitor)
            spend = spend + model.monitor_cost(best_monitor)
            current += best_gain

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_same_utility_as_naive(self, seed):
        from repro.casestudy import synthetic_model

        model = synthetic_model(monitors=15, attacks=10, seed=seed)
        budget = Budget.fraction_of_total(model, 0.3)
        weights = UtilityWeights()
        lazy = solve_greedy(model, budget, weights)
        naive_ids = self.naive_greedy(model, budget, weights)
        # Tie-breaking order may differ, but achieved utility must match.
        assert lazy.utility == pytest.approx(
            utility(model, naive_ids, weights), abs=1e-9
        )

    def test_same_utility_on_toy(self, toy_model):
        for cpu in (2, 4, 6, 9, 100):
            budget = Budget.of(cpu=cpu)
            lazy = solve_greedy(toy_model, budget, WEIGHTS)
            naive_ids = self.naive_greedy(toy_model, budget, WEIGHTS)
            assert lazy.utility == pytest.approx(
                utility(toy_model, naive_ids, WEIGHTS), abs=1e-9
            )
