"""Tests for the greedy min-cost (set-cover style) baseline and the
new richness floors on MinCostProblem."""

import pytest

from repro.errors import InfeasibleError, OptimizationError
from repro.metrics.richness import attack_richness
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.greedy_cover import solve_greedy_cover
from repro.optimize.problem import MinCostProblem

WEIGHTS = UtilityWeights()


class TestGreedyCover:
    @pytest.mark.parametrize("floor", [0.1, 0.3, 0.5, 0.7])
    def test_floor_met(self, toy_model, floor):
        result = solve_greedy_cover(toy_model, floor, WEIGHTS)
        assert result.utility >= floor - 1e-9

    @pytest.mark.parametrize("floor", [0.3, 0.5, 0.7])
    def test_never_cheaper_than_exact(self, toy_model, floor):
        greedy = solve_greedy_cover(toy_model, floor, WEIGHTS)
        exact = MinCostProblem(toy_model, min_utility=floor, weights=WEIGHTS).solve()
        assert greedy.objective >= exact.objective - 1e-9

    def test_zero_floor_selects_nothing(self, toy_model):
        result = solve_greedy_cover(toy_model, 0.0, WEIGHTS)
        assert result.monitor_ids == frozenset()
        assert result.objective == 0.0

    def test_unreachable_floor_raises(self, toy_model):
        with pytest.raises(InfeasibleError, match="exceeds"):
            solve_greedy_cover(toy_model, 0.99, WEIGHTS)

    def test_invalid_floor(self, toy_model):
        with pytest.raises(OptimizationError):
            solve_greedy_cover(toy_model, 1.5, WEIGHTS)

    def test_reverse_delete_prunes_redundant_monitors(self, toy_model):
        """Every kept monitor must be necessary for the floor."""
        result = solve_greedy_cover(toy_model, 0.5, WEIGHTS)
        for monitor_id in result.monitor_ids:
            without = result.monitor_ids - {monitor_id}
            assert utility(toy_model, without, WEIGHTS) < 0.5 - 1e-12, monitor_id

    def test_on_case_study(self, web_model):
        greedy = solve_greedy_cover(web_model, 0.6, WEIGHTS)
        exact = MinCostProblem(web_model, min_utility=0.6, weights=WEIGHTS).solve()
        assert greedy.utility >= 0.6 - 1e-9
        assert greedy.objective >= exact.objective - 1e-9
        # Greedy should be in the right ballpark, not pathological.
        assert greedy.objective <= 3 * exact.objective

    def test_deterministic(self, toy_model):
        a = solve_greedy_cover(toy_model, 0.5, WEIGHTS)
        b = solve_greedy_cover(toy_model, 0.5, WEIGHTS)
        assert a.monitor_ids == b.monitor_ids


class TestRichnessFloors:
    def test_floor_met(self, toy_model):
        result = MinCostProblem(toy_model, min_attack_richness={"A": 0.8}).solve()
        assert attack_richness(toy_model, result.monitor_ids, "A") >= 0.8 - 1e-6

    def test_cheapest_among_compliant(self, toy_model):
        import itertools

        result = MinCostProblem(toy_model, min_attack_richness={"A": 0.8}).solve()
        ids = sorted(toy_model.monitors)
        for r in range(len(ids) + 1):
            for combo in itertools.combinations(ids, r):
                selected = frozenset(combo)
                if attack_richness(toy_model, selected, "A") >= 0.8 - 1e-9:
                    cost = toy_model.deployment_cost(selected).scalarize()
                    assert cost >= result.objective - 1e-6

    def test_richness_costs_more_than_coverage(self, toy_model):
        """Full forensic richness needs more monitors than bare coverage."""
        cover = MinCostProblem(toy_model, min_attack_coverage={"A": 0.5}).solve()
        rich = MinCostProblem(toy_model, min_attack_richness={"A": 1.0}).solve()
        assert rich.objective >= cover.objective

    def test_unreachable_floor_infeasible(self):
        from tests.conftest import build_toy_builder

        builder = build_toy_builder()
        builder.event("orphan", asset="h1")
        builder.attack("C", steps=["e1", "orphan"])
        model = builder.build()
        # orphan has no capturable fields; C's richness is capped below 1.
        with pytest.raises(InfeasibleError):
            MinCostProblem(model, min_attack_richness={"C": 0.95}).solve()

    def test_validation(self, toy_model):
        with pytest.raises(OptimizationError, match="unknown attack"):
            MinCostProblem(toy_model, min_attack_richness={"ghost": 0.5})
        with pytest.raises(OptimizationError, match="richness floor"):
            MinCostProblem(toy_model, min_attack_richness={"A": 1.5})

    def test_counts_as_requirement(self, toy_model):
        result = MinCostProblem(toy_model, min_attack_richness={"B": 0.1}).solve()
        assert result.optimal
