"""Property-based tests of the optimization layer on random models.

The central soundness property of the reproduction: on randomized
models, the ILP's objective must equal the reference utility metric of
the deployment it returns, the optimum must dominate every heuristic,
and budgets must be respected by everything.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.casestudy import synthetic_model
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.greedy import solve_greedy
from repro.optimize.problem import MaxUtilityProblem
from repro.optimize.random_search import solve_random


@st.composite
def optimization_case(draw):
    seed = draw(st.integers(0, 5_000))
    model = synthetic_model(
        assets=5,
        data_types=4,
        monitor_types=3,
        monitors=draw(st.integers(3, 12)),
        attacks=draw(st.integers(1, 5)),
        events=draw(st.integers(3, 8)),
        seed=seed,
    )
    fraction = draw(st.floats(0.1, 0.9))
    weights = draw(
        st.sampled_from(
            [
                UtilityWeights(),
                UtilityWeights.coverage_only(),
                UtilityWeights(coverage=0.2, redundancy=0.5, richness=0.3),
            ]
        )
    )
    return model, Budget.fraction_of_total(model, fraction), weights


SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(optimization_case())
@settings(**SETTINGS)
def test_ilp_objective_equals_reference_utility(case):
    model, budget, weights = case
    result = MaxUtilityProblem(model, budget, weights).solve()
    assert result.objective == pytest.approx(
        utility(model, result.monitor_ids, weights), abs=1e-6
    )


@given(optimization_case())
@settings(**SETTINGS)
def test_ilp_dominates_heuristics(case):
    model, budget, weights = case
    optimal = MaxUtilityProblem(model, budget, weights).solve()
    greedy = solve_greedy(model, budget, weights)
    random_best = solve_random(model, budget, weights, samples=10, seed=1)
    assert greedy.utility <= optimal.utility + 1e-6
    assert random_best.utility <= optimal.utility + 1e-6


@given(optimization_case())
@settings(**SETTINGS)
def test_everyone_respects_budget(case):
    model, budget, weights = case
    for result in (
        MaxUtilityProblem(model, budget, weights).solve(),
        solve_greedy(model, budget, weights),
        solve_random(model, budget, weights, samples=5, seed=2),
    ):
        assert budget.allows(result.deployment.cost()), result.method


@given(optimization_case())
@settings(**SETTINGS)
def test_backends_agree_on_optimum(case):
    model, budget, weights = case
    scipy_result = MaxUtilityProblem(model, budget, weights).solve("scipy")
    bnb_result = MaxUtilityProblem(model, budget, weights).solve("branch-and-bound")
    assert scipy_result.utility == pytest.approx(bnb_result.utility, abs=1e-6)


@given(optimization_case(), st.integers(0, 2**32 - 1))
@settings(**SETTINGS)
def test_formulation_agrees_with_metric_on_pinned_deployments(case, subset_seed):
    """Stronger than optimum agreement: the ILP's utility expression
    equals the reference metric at an *arbitrary* pinned 0/1 point."""
    import numpy as np

    from repro.optimize.formulation import FormulationBuilder
    from repro.solver import solve
    from repro.solver.model import MilpModel, ObjectiveSense

    model, _, weights = case
    rng = np.random.default_rng(subset_seed)
    monitor_ids = sorted(model.monitors)
    selected = frozenset(m for m in monitor_ids if rng.random() < 0.5)

    milp = MilpModel("pinned", ObjectiveSense.MAXIMIZE)
    builder = FormulationBuilder(milp, model)
    milp.set_objective(builder.utility_expression(weights))
    for monitor_id, var in builder.selection.items():
        value = 1.0 if monitor_id in selected else 0.0
        milp.add_constraint(var + 0.0 == value)
    solution = solve(milp, "scipy")
    assert solution.objective == pytest.approx(
        utility(model, selected, weights), abs=1e-6
    )
