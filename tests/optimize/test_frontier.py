"""Tests for the exact ε-constraint Pareto frontier."""

import itertools

import pytest

from repro.errors import OptimizationError
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.frontier import exact_frontier


def brute_force_frontier(model, weights):
    """All non-dominated (cost, utility) pairs by subset enumeration."""
    candidates = []
    ids = sorted(model.monitors)
    for r in range(len(ids) + 1):
        for combo in itertools.combinations(ids, r):
            selected = frozenset(combo)
            candidates.append(
                (model.deployment_cost(selected).scalarize(), utility(model, selected, weights))
            )
    candidates.sort(key=lambda p: (p[0], -p[1]))
    frontier = []
    best = -1.0
    for cost, value in candidates:
        if value > best + 1e-12:
            frontier.append((cost, value))
            best = value
    return frontier


class TestExactFrontier:
    def test_matches_brute_force_on_toy(self, toy_model):
        weights = UtilityWeights()
        points = exact_frontier(toy_model, weights)
        expected = brute_force_frontier(toy_model, weights)
        assert len(points) == len(expected)
        for point, (cost, value) in zip(points, expected):
            assert point.scalar_cost == pytest.approx(cost)
            assert point.utility == pytest.approx(value)

    def test_strictly_increasing(self, toy_model):
        points = exact_frontier(toy_model)
        costs = [p.scalar_cost for p in points]
        utilities = [p.utility for p in points]
        assert all(b > a for a, b in zip(costs, costs[1:]))
        assert all(b > a for a, b in zip(utilities, utilities[1:]))

    def test_endpoints(self, toy_model):
        points = exact_frontier(toy_model)
        assert points[0].scalar_cost == 0.0
        assert points[0].utility == 0.0
        assert points[-1].utility == pytest.approx(utility(toy_model, toy_model.monitors))

    def test_deployments_achieve_their_point(self, toy_model):
        weights = UtilityWeights()
        for point in exact_frontier(toy_model, weights):
            assert point.deployment.utility(weights) == pytest.approx(point.utility)
            assert point.deployment.cost().scalarize() == pytest.approx(point.scalar_cost)

    def test_coverage_only_weights(self, toy_model):
        weights = UtilityWeights.coverage_only()
        points = exact_frontier(toy_model, weights)
        expected = brute_force_frontier(toy_model, weights)
        assert [(p.scalar_cost, round(p.utility, 9)) for p in points] == [
            (c, round(u, 9)) for c, u in expected
        ]

    def test_invalid_epsilon(self, toy_model):
        with pytest.raises(OptimizationError):
            exact_frontier(toy_model, epsilon=0.0)

    def test_max_points_caps_iterations(self, toy_model):
        points = exact_frontier(toy_model, max_points=2)
        assert len(points) <= 2
