"""Tests for the ILP linearization: the encoded expressions must equal
the reference metrics on **every** 0/1 assignment of a small model."""

import itertools

import pytest

from repro.metrics.coverage import attack_coverage, event_coverage
from repro.metrics.cost import Budget
from repro.metrics.redundancy import event_redundancy
from repro.metrics.richness import event_richness
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.formulation import FormulationBuilder
from repro.errors import OptimizationError

from repro.solver.model import MilpModel, ObjectiveSense
from repro.solver import solve


def all_subsets(model):
    ids = sorted(model.monitors)
    for r in range(len(ids) + 1):
        yield from (frozenset(c) for c in itertools.combinations(ids, r))


def maximize_expression_given_selection(milp, builder, expression, selected):
    """Max value of an auxiliary expression with the selection pinned.

    The encodings are upper-bounded relaxations that reach the true
    metric value at optimum, so we evaluate them by maximizing.
    """
    for monitor_id, var in builder.selection.items():
        value = 1.0 if monitor_id in selected else 0.0
        milp.add_constraint(var + 0.0 == value, name=f"pin[{monitor_id}]")
    milp.set_objective(expression)
    solution = solve(milp, "scipy")
    return solution.objective


class TestCoverageLevel:
    @pytest.mark.parametrize("event_id", ["e1", "e2", "e3"])
    def test_matches_metric_on_all_subsets(self, toy_model, event_id):
        for selected in all_subsets(toy_model):
            milp = MilpModel("t", ObjectiveSense.MAXIMIZE)
            builder = FormulationBuilder(milp, toy_model)
            expr = builder.coverage_level(event_id)
            value = maximize_expression_given_selection(milp, builder, expr, selected)
            assert value == pytest.approx(
                event_coverage(toy_model, selected, event_id), abs=1e-6
            ), (event_id, sorted(selected))

    def test_cached_per_event(self, toy_model):
        milp = MilpModel("t")
        builder = FormulationBuilder(milp, toy_model)
        assert builder.coverage_level("e1") is builder.coverage_level("e1")

    def test_unprovided_event_is_empty_expression(self):
        from tests.conftest import build_toy_builder

        b = build_toy_builder()
        b.event("orphan", asset="h1")
        model = b.build()
        milp = MilpModel("t")
        builder = FormulationBuilder(milp, model)
        assert builder.coverage_level("orphan").terms == {}


class TestRedundancyLevel:
    @pytest.mark.parametrize("cap", [1, 2, 3])
    def test_matches_metric_on_all_subsets(self, toy_model, cap):
        for selected in all_subsets(toy_model):
            milp = MilpModel("t", ObjectiveSense.MAXIMIZE)
            builder = FormulationBuilder(milp, toy_model)
            expr = builder.redundancy_level("e1", cap)
            value = maximize_expression_given_selection(milp, builder, expr, selected)
            assert value == pytest.approx(
                event_redundancy(toy_model, selected, "e1", cap), abs=1e-6
            )


class TestRichnessLevel:
    @pytest.mark.parametrize("event_id", ["e1", "e2", "e3"])
    def test_matches_metric_on_all_subsets(self, toy_model, event_id):
        for selected in all_subsets(toy_model):
            milp = MilpModel("t", ObjectiveSense.MAXIMIZE)
            builder = FormulationBuilder(milp, toy_model)
            expr = builder.richness_level(event_id)
            value = maximize_expression_given_selection(milp, builder, expr, selected)
            assert value == pytest.approx(
                event_richness(toy_model, selected, event_id), abs=1e-6
            )


class TestUtilityExpression:
    @pytest.mark.parametrize(
        "weights",
        [
            UtilityWeights(),
            UtilityWeights.coverage_only(),
            UtilityWeights(coverage=0.0, redundancy=1.0, richness=0.0),
            UtilityWeights(coverage=0.0, redundancy=0.0, richness=1.0),
            UtilityWeights(coverage=0.3, redundancy=0.3, richness=0.4, redundancy_cap=3),
        ],
    )
    def test_matches_metric_on_all_subsets(self, toy_model, weights):
        for selected in all_subsets(toy_model):
            milp = MilpModel("t", ObjectiveSense.MAXIMIZE)
            builder = FormulationBuilder(milp, toy_model)
            expr = builder.utility_expression(weights)
            value = maximize_expression_given_selection(milp, builder, expr, selected)
            assert value == pytest.approx(
                utility(toy_model, selected, weights), abs=1e-6
            ), sorted(selected)


class TestAttackCoverageExpression:
    def test_matches_metric(self, toy_model):
        for attack_id in toy_model.attacks:
            for selected in all_subsets(toy_model):
                milp = MilpModel("t", ObjectiveSense.MAXIMIZE)
                builder = FormulationBuilder(milp, toy_model)
                expr = builder.attack_coverage_expression(attack_id)
                value = maximize_expression_given_selection(milp, builder, expr, selected)
                assert value == pytest.approx(
                    attack_coverage(toy_model, selected, attack_id), abs=1e-6
                )


class TestConstraints:
    def test_budget_constraint_cuts_selection(self, toy_model):
        milp = MilpModel("t", ObjectiveSense.MAXIMIZE)
        builder = FormulationBuilder(milp, toy_model)
        builder.add_budget_constraints(Budget.of(cpu=4))
        milp.set_objective(builder.cost_expression({"cpu": 1.0}))
        solution = solve(milp, "scipy")
        assert solution.objective <= 4 + 1e-9

    def test_empty_budget_rejected(self, toy_model):
        milp = MilpModel("t")
        builder = FormulationBuilder(milp, toy_model)
        with pytest.raises(OptimizationError, match="no dimension"):
            builder.add_budget_constraints(Budget())

    def test_cost_expression_unweighted(self, toy_model):
        milp = MilpModel("t", ObjectiveSense.MINIMIZE)
        builder = FormulationBuilder(milp, toy_model)
        expr = builder.cost_expression()
        assignment = {var: 1.0 for var in builder.selection.values()}
        assert expr.evaluate(assignment) == pytest.approx(
            toy_model.total_cost().scalarize()
        )

    def test_full_coverage_constraint_forces_providers(self, toy_model):
        milp = MilpModel("t", ObjectiveSense.MINIMIZE)
        builder = FormulationBuilder(milp, toy_model)
        builder.add_full_coverage_constraint("A")
        milp.set_objective(builder.cost_expression())
        solution = solve(milp, "scipy")
        selected = builder.selected_ids(solution.values)
        # A requires e1 and e2; two optima tie at cost 6 ({mnet@n1} and
        # {mlog@h1, mdb@h2}) — check cost-optimality and actual coverage.
        assert solution.objective == pytest.approx(6.0)
        from repro.metrics.coverage import event_coverage

        assert event_coverage(toy_model, selected, "e1") > 0
        assert event_coverage(toy_model, selected, "e2") > 0

    def test_full_coverage_infeasible_for_uncoverable_attack(self):
        from tests.conftest import build_toy_builder
        from repro.solver.model import SolutionStatus

        b = build_toy_builder()
        b.event("orphan", asset="h1")
        b.attack("C", steps=["orphan"])
        model = b.build()
        milp = MilpModel("t", ObjectiveSense.MINIMIZE)
        builder = FormulationBuilder(milp, model)
        builder.add_full_coverage_constraint("C")
        milp.set_objective(builder.cost_expression())
        assert solve(milp, "scipy").status is SolutionStatus.INFEASIBLE

    def test_forced_selection(self, toy_model):
        milp = MilpModel("t", ObjectiveSense.MINIMIZE)
        builder = FormulationBuilder(milp, toy_model)
        builder.add_forced_selection({"mdb@h2"})
        milp.set_objective(builder.cost_expression())
        solution = solve(milp, "scipy")
        assert "mdb@h2" in builder.selected_ids(solution.values)

    def test_forced_unknown_monitor_rejected(self, toy_model):
        milp = MilpModel("t")
        builder = FormulationBuilder(milp, toy_model)
        with pytest.raises(OptimizationError, match="unknown monitors"):
            builder.add_forced_selection({"ghost"})


class TestSelectedIds:
    def test_threshold_half(self, toy_model):
        milp = MilpModel("t")
        builder = FormulationBuilder(milp, toy_model)
        values = {var.name: 0.0 for var in builder.selection.values()}
        values["x[mnet@n1]"] = 1.0
        assert builder.selected_ids(values) == frozenset({"mnet@n1"})
