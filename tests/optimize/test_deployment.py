"""Tests for the Deployment value type."""

import pytest

from repro.errors import OptimizationError
from repro.metrics.utility import UtilityWeights
from repro.optimize.deployment import Deployment, OptimizationResult


class TestConstruction:
    def test_of_validates_ids(self, toy_model):
        with pytest.raises(OptimizationError, match="unknown monitors"):
            Deployment.of(toy_model, ["ghost"])

    def test_empty_and_full(self, toy_model):
        assert len(Deployment.empty(toy_model)) == 0
        assert Deployment.full(toy_model).monitor_ids == frozenset(toy_model.monitors)

    def test_contains(self, toy_model):
        d = Deployment.of(toy_model, ["mnet@n1"])
        assert "mnet@n1" in d
        assert "mdb@h2" not in d


class TestSetOperations:
    def test_with_monitor(self, toy_model):
        d = Deployment.empty(toy_model).with_monitor("mnet@n1")
        assert d.monitor_ids == frozenset({"mnet@n1"})

    def test_with_unknown_monitor_rejected(self, toy_model):
        with pytest.raises(OptimizationError):
            Deployment.empty(toy_model).with_monitor("ghost")

    def test_without_monitor(self, toy_model):
        d = Deployment.of(toy_model, ["mnet@n1", "mdb@h2"]).without_monitor("mnet@n1")
        assert d.monitor_ids == frozenset({"mdb@h2"})

    def test_union(self, toy_model):
        a = Deployment.of(toy_model, ["mnet@n1"])
        b = Deployment.of(toy_model, ["mdb@h2"])
        assert (a | b).monitor_ids == frozenset({"mnet@n1", "mdb@h2"})

    def test_union_requires_same_model(self, toy_model):
        from tests.conftest import build_toy_builder

        other = build_toy_builder().build()
        with pytest.raises(OptimizationError, match="different models"):
            Deployment.empty(toy_model) | Deployment.empty(other)


class TestEvaluation:
    def test_cost(self, toy_model):
        d = Deployment.of(toy_model, ["mnet@n1"])
        assert d.cost().as_dict() == {"cpu": 4, "network": 2}

    def test_utility_matches_metric(self, toy_model):
        from repro.metrics.utility import utility

        d = Deployment.of(toy_model, ["mnet@n1"])
        w = UtilityWeights()
        assert d.utility(w) == pytest.approx(utility(toy_model, d.monitor_ids, w))

    def test_breakdown_keys(self, toy_model):
        breakdown = Deployment.full(toy_model).breakdown()
        assert set(breakdown) == {"coverage", "redundancy", "richness", "utility"}

    def test_by_asset_grouping(self, toy_model):
        d = Deployment.of(toy_model, ["mlog@h2", "mdb@h2", "mnet@n1"])
        assert d.by_asset() == {"h2": ["mdb@h2", "mlog@h2"], "n1": ["mnet@n1"]}


class TestOptimizationResult:
    def test_summary_mentions_method_and_utility(self, toy_model):
        result = OptimizationResult(
            deployment=Deployment.empty(toy_model),
            objective=0.0,
            utility=0.0,
            solve_seconds=0.01,
            method="greedy",
            optimal=False,
        )
        assert "greedy" in result.summary()
        assert "heuristic" in result.summary()
