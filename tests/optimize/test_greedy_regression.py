"""Regression pins for greedy's selection sequence on the case study.

The greedy heuristic was rebuilt on the incremental evaluation cursor;
these pins freeze the exact monitor-by-monitor choices the reference
implementation made on the enterprise Web service, so any future change
to the substrate (or the lazy queue) that silently alters greedy's
behaviour fails loudly rather than shifting experiment F1's curves.
"""

import pytest

from repro.metrics.cost import Budget
from repro.optimize.greedy import solve_greedy

# Captured from the reference (pre-substrate) implementation.
PINNED = {
    0.2: (
        0.7005519751783414,
        (
            "web_logger@web-1",
            "web_logger@web-2",
            "syslog_agent@web-1",
            "syslog_agent@web-2",
            "auth_logger@app-1",
            "auth_logger@web-1",
            "auth_logger@web-2",
            "firewall_logger@fw-edge",
            "auth_logger@auth-1",
            "flow_collector@sw-core",
            "audit_daemon@web-1",
            "syslog_agent@app-1",
            "app_logger@app-1",
            "fim@web-2",
            "auth_logger@db-1",
        ),
    ),
    0.3: (
        0.8832402293974617,
        (
            "web_logger@web-1",
            "web_logger@web-2",
            "syslog_agent@web-1",
            "syslog_agent@web-2",
            "auth_logger@app-1",
            "auth_logger@web-1",
            "auth_logger@web-2",
            "firewall_logger@fw-edge",
            "auth_logger@auth-1",
            "flow_collector@sw-core",
            "audit_daemon@web-1",
            "audit_daemon@web-2",
            "syslog_agent@app-1",
            "app_logger@app-1",
            "auth_logger@db-1",
            "waf@lb-1",
            "db_audit@db-1",
            "firewall_logger@fw-int",
        ),
    ),
}


@pytest.mark.parametrize("fraction", sorted(PINNED))
@pytest.mark.parametrize("incremental", [True, False])
def test_greedy_selection_sequence_is_pinned(web_model, fraction, incremental):
    expected_utility, expected_order = PINNED[fraction]
    budget = Budget.fraction_of_total(web_model, fraction)
    result = solve_greedy(web_model, budget, incremental=incremental)
    assert result.selection_order == expected_order
    assert result.monitor_ids == frozenset(expected_order)
    assert result.utility == pytest.approx(expected_utility, abs=1e-12)


@pytest.mark.parametrize("fraction", sorted(PINNED))
def test_incremental_and_reference_paths_agree(web_model, fraction):
    budget = Budget.fraction_of_total(web_model, fraction)
    incremental = solve_greedy(web_model, budget, incremental=True)
    reference = solve_greedy(web_model, budget, incremental=False)
    assert incremental.selection_order == reference.selection_order
    assert incremental.utility == pytest.approx(reference.utility, abs=1e-12)
