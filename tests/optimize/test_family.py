"""Tests for shared formulation cores (:mod:`repro.optimize.family`).

The contract under test is exactness: a family-built instance must
compile to the *bit-identical* standard form of a cold build, so the
solver's answer — down to tie-breaking — cannot depend on whether the
core was fresh or reused.
"""

import numpy as np
import pytest

from repro import obs
from repro.errors import OptimizationError
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.family import ProblemFamily
from repro.optimize.frontier import exact_frontier
from repro.optimize.pareto import budget_sweep
from repro.optimize.problem import MaxUtilityProblem
from repro.solver.sparse import matrices_equal

FRACTIONS = [0.25, 0.5, 0.75, 1.0]


def assert_forms_identical(left, right):
    for field in ("c", "b_ub", "b_eq", "lower", "upper", "integrality"):
        assert np.array_equal(getattr(left, field), getattr(right, field)), field
    for field in ("A_ub", "A_eq"):
        assert matrices_equal(getattr(left, field), getattr(right, field)), field
    assert left.objective_constant == right.objective_constant
    assert left.maximize == right.maximize


class TestFamilyCores:
    def test_reused_core_compiles_bit_identical(self, toy_model):
        family = ProblemFamily(toy_model)
        for fraction in FRACTIONS:
            budget = Budget.fraction_of_total(toy_model, fraction)
            warm_milp, _ = MaxUtilityProblem(toy_model, budget, family=family).build()
            cold_milp, _ = MaxUtilityProblem(toy_model, budget).build()
            assert_forms_identical(warm_milp.compile(), cold_milp.compile())

    def test_core_built_once_then_reused(self, toy_model):
        family = ProblemFamily(toy_model)
        with obs.capture() as cap:
            for fraction in FRACTIONS:
                budget = Budget.fraction_of_total(toy_model, fraction)
                MaxUtilityProblem(toy_model, budget, family=family).build()
        counters = cap.registry.snapshot()["counters"]
        assert counters["optimize.family.builds"] == 1
        assert counters["optimize.family.reuses"] == len(FRACTIONS) - 1

    def test_distinct_keys_get_distinct_cores(self, toy_model):
        family = ProblemFamily(toy_model)
        built = []

        def factory(tag):
            def build():
                budget = Budget.fraction_of_total(toy_model, 0.5)
                milp, builder = MaxUtilityProblem(toy_model, budget)._build_core()
                built.append(tag)
                return milp, builder

            return build

        a1, _ = family.core("a", factory("a"))
        b1, _ = family.core("b", factory("b"))
        a2, _ = family.core("a", factory("a"))
        assert built == ["a", "b"]
        assert a1 is a2 and a1 is not b1

    def test_session_keys_stable_and_distinct(self, toy_model):
        family = ProblemFamily(toy_model)
        other = ProblemFamily(toy_model)
        assert family.session_key("a") == family.session_key("a")
        assert family.session_key("a") != family.session_key("b")
        assert family.session_key("a") != other.session_key("a")

    def test_rejects_foreign_model(self, toy_model, web_model):
        family = ProblemFamily(web_model)
        budget = Budget.fraction_of_total(toy_model, 0.5)
        with pytest.raises(OptimizationError, match="different model"):
            MaxUtilityProblem(toy_model, budget, family=family)

    def test_rejects_mismatched_weights(self, toy_model):
        family = ProblemFamily(toy_model, UtilityWeights())
        budget = Budget.fraction_of_total(toy_model, 0.5)
        with pytest.raises(OptimizationError, match="different utility weights"):
            MaxUtilityProblem(
                toy_model, budget, UtilityWeights.coverage_only(), family=family
            )


class TestWarmEqualsCold:
    def test_budget_sweep_identical_to_cold(self, toy_model):
        cold = budget_sweep(toy_model, FRACTIONS, workers=1)
        warm = budget_sweep(toy_model, FRACTIONS, workers=1, presolve=True)
        for c, w in zip(cold, warm):
            assert w.result.deployment.monitor_ids == c.result.deployment.monitor_ids
            assert w.result.objective == c.result.objective

    def test_budget_sweep_identical_on_case_study(self, web_model):
        # Presolve genuinely reduces the case-study model, so the warm
        # objective is the *lifted* re-evaluation of the same optimal
        # vertex — equal up to summation order, not bit-for-bit (the
        # untransformed-model case above is strict).  Deployments, the
        # integer answer, must still match exactly.
        fractions = [0.2, 0.4, 0.6]
        cold = budget_sweep(web_model, fractions, workers=1)
        warm = budget_sweep(web_model, fractions, workers=1, presolve=True)
        for c, w in zip(cold, warm):
            assert w.result.deployment.monitor_ids == c.result.deployment.monitor_ids
            assert w.result.objective == pytest.approx(c.result.objective, rel=1e-12)

    def test_exact_frontier_identical_to_cold(self, toy_model):
        cold = exact_frontier(toy_model)
        warm = exact_frontier(toy_model, presolve=True)
        assert len(cold) == len(warm)
        for c, w in zip(cold, warm):
            assert w.deployment.monitor_ids == c.deployment.monitor_ids
            assert w.scalar_cost == c.scalar_cost
            assert w.utility == c.utility
