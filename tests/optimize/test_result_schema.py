"""Regression tests pinning the :class:`OptimizationResult` schema.

Every solver — exact and heuristic — returns the same dataclass with
the same field set, reports ``solve_seconds`` in **seconds sourced from
the ambient tracer**, and publishes a documented per-method ``stats``
dict.  Downstream consumers (CLI tables, benchmark JSON, the sweep
plots) key on these names; this file is the contract that keeps them
from drifting.
"""

import dataclasses

import pytest

from repro import obs
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.annealing import solve_annealing
from repro.optimize.deployment import OptimizationResult
from repro.optimize.greedy import solve_greedy
from repro.optimize.greedy_cover import solve_greedy_cover
from repro.optimize.problem import MaxUtilityProblem, MinCostProblem
from repro.optimize.random_search import solve_random

WEIGHTS = UtilityWeights()

RESULT_FIELDS = {
    "deployment",
    "objective",
    "utility",
    "solve_seconds",
    "method",
    "optimal",
    "stats",
    "selection_order",
}

STATS_KEYS = {
    "greedy": {"evaluations"},
    "annealing": {"iterations", "accepted"},
    "random": {"samples"},
    "greedy-cover": {"evaluations"},
    "ilp/scipy-milp": {"variables", "constraints", "nodes"},
}


def _results(toy_model) -> dict[str, OptimizationResult]:
    budget = Budget.of(cpu=6)
    return {
        "greedy": solve_greedy(toy_model, budget, WEIGHTS),
        "annealing": solve_annealing(toy_model, budget, WEIGHTS, iterations=50, seed=3),
        "random": solve_random(toy_model, budget, WEIGHTS, samples=20, seed=3),
        "greedy-cover": solve_greedy_cover(toy_model, 0.3, WEIGHTS),
        "ilp/scipy-milp": MaxUtilityProblem(toy_model, budget, WEIGHTS).solve(),
    }


def test_result_field_set_is_pinned():
    fields = {f.name for f in dataclasses.fields(OptimizationResult)}
    assert fields == RESULT_FIELDS


def test_every_method_reports_its_documented_stats(toy_model):
    for method, result in _results(toy_model).items():
        assert result.method == method
        assert set(result.stats) == STATS_KEYS[method], method
        assert all(isinstance(v, float) for v in result.stats.values()), method


def test_min_cost_shares_the_ilp_stats_schema(toy_model):
    result = MinCostProblem(toy_model, min_utility=0.3, weights=WEIGHTS).solve()
    assert result.method == "ilp/scipy-milp"
    assert set(result.stats) == STATS_KEYS["ilp/scipy-milp"]


def test_solve_seconds_is_sourced_from_the_tracer():
    """Under a ManualClock, solve_seconds is an exact tick count.

    The heuristics and ILP wrappers all take their wall time from the
    ambient tracer span, so with a fake clock ticking 1 s per reading
    the reported duration is a whole, positive, deterministic number of
    seconds — impossible if any solver still read real time directly.
    Each capture gets a fresh model so both runs pay for the same
    engine build.
    """
    from repro.casestudy.scaling import synthetic_model

    def fresh():
        return synthetic_model(
            assets=5, data_types=6, monitor_types=4, monitors=12, attacks=8, seed=11
        )

    for make in (
        lambda: solve_greedy(fresh(), Budget.of(cpu=6), WEIGHTS),
        lambda: solve_random(fresh(), Budget.of(cpu=6), WEIGHTS, samples=5),
        lambda: MaxUtilityProblem(fresh(), Budget.of(cpu=6), WEIGHTS).solve(),
    ):
        with obs.capture(clock=obs.ManualClock(autostep=1.0)):
            first = make()
        with obs.capture(clock=obs.ManualClock(autostep=1.0)):
            second = make()
        assert first.solve_seconds == second.solve_seconds
        assert first.solve_seconds > 0.0
        assert first.solve_seconds == int(first.solve_seconds)


def test_solve_seconds_is_plausible_wall_time(toy_model):
    """With the real clock, durations are small positive seconds."""
    for result in _results(toy_model).values():
        assert 0.0 < result.solve_seconds < 60.0, result.method


def test_heuristics_report_selection_order(toy_model):
    greedy = solve_greedy(toy_model, Budget.of(cpu=6), WEIGHTS)
    assert frozenset(greedy.selection_order) == greedy.monitor_ids
    exact = MaxUtilityProblem(toy_model, Budget.of(cpu=6), WEIGHTS).solve()
    assert exact.selection_order == ()


def test_results_round_trip_through_summary(toy_model):
    for result in _results(toy_model).values():
        line = result.summary()
        assert result.method in line
        assert f"{result.utility:.4f}" in line
