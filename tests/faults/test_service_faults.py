"""The solve service under injected faults: retry, fail typed, isolate.

Faults fire through the ambient plan at each job's own site
(``service.job.<tenant>.<job_id>``), exactly where the service pokes
before dispatching — no monkey-patching of solver internals.  The
contracts pinned here:

* a transient fault retries on the deterministic schedule and then
  answers bit-identically to a clean run;
* exhausted retries fail *typed* — a structured
  :class:`~repro.runtime.resilience.TaskFailure`, never a raw
  exception escaping the job future;
* one tenant's faults are invisible in another tenant's results.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.runtime import faults
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.service import JobStatus, ServiceConfig, SolveRequest, SolveService
from tests.service.conftest import canon, oracle_value

pytestmark = pytest.mark.service


def _plan(tmp_path, specs) -> FaultPlan:
    state = tmp_path / "state"
    state.mkdir(exist_ok=True)
    return FaultPlan.of(state, specs)


def _request(model, tenant="t-a", fraction=0.5, job_id="boom"):
    return SolveRequest(
        tenant=tenant,
        kind="max-utility",
        model=model,
        budget_fraction=fraction,
        job_id=job_id,
    )


def _run(requests, config):
    async def scenario():
        async with SolveService(config) as service:
            handles = [service.submit(r) for r in requests]
            return [await h for h in handles]

    return asyncio.run(scenario())


def test_transient_fault_retries_to_a_bit_identical_answer(tmp_path, toy_model):
    request = _request(toy_model)
    plan = _plan(tmp_path, {request.site: FaultSpec(kind="error", times=1)})
    retries_before = obs.counter("service.jobs.retries").value
    with faults.inject(plan):
        (result,) = _run([request], ServiceConfig(workers=1, max_retries=1))
    assert result.ok
    assert result.attempts == 2
    assert obs.counter("service.jobs.retries").value == retries_before + 1
    assert canon(result.value) == canon(oracle_value(toy_model, request))


def test_exhausted_retries_fail_with_a_structured_task_failure(tmp_path, toy_model):
    request = _request(toy_model)
    plan = _plan(tmp_path, {request.site: FaultSpec(kind="error", times=-1)})
    with faults.inject(plan):
        (result,) = _run([request], ServiceConfig(workers=1, max_retries=1))
    assert result.status is JobStatus.FAILED
    assert result.attempts == 2  # 1 + max_retries, then give up
    failure = result.failure
    assert failure is not None
    assert failure.stage == "service"
    assert failure.error_type == "InjectedFault"
    assert request.site in failure.message
    assert failure.to_dict()["error_type"] == "InjectedFault"
    # Attempt accounting agrees with the plan's cross-process markers.
    assert plan.attempts_seen(request.site) == 2


def test_exit_fault_downgrades_to_a_retryable_error_in_process(tmp_path, toy_model):
    # "exit" faults refuse to kill the plan's parent process, and the
    # service executes jobs on in-process threads — so a scripted
    # worker-kill surfaces as InjectedFault and takes the retry path.
    request = _request(toy_model, job_id="killed")
    plan = _plan(tmp_path, {request.site: FaultSpec(kind="exit", times=1)})
    transient_before = obs.counter("service.jobs.transient_faults").value
    with faults.inject(plan):
        (result,) = _run([request], ServiceConfig(workers=1, max_retries=1))
    assert result.ok
    assert result.attempts == 2
    assert obs.counter("service.jobs.transient_faults").value == transient_before + 1
    assert canon(result.value) == canon(oracle_value(toy_model, request))


def test_hung_job_still_answers_and_does_not_block_peers(tmp_path, toy_model):
    hung = _request(toy_model, tenant="t-slow", job_id="stuck")
    peer = _request(toy_model, tenant="t-fast", fraction=0.4, job_id="fast")
    plan = _plan(tmp_path, {hung.site: FaultSpec(kind="hang", seconds=0.3, times=1)})
    with faults.inject(plan):
        hung_result, peer_result = _run([hung, peer], ServiceConfig(workers=2))
    assert hung_result.ok and peer_result.ok
    assert hung_result.run_seconds >= 0.2  # it really did hang
    assert canon(hung_result.value) == canon(oracle_value(toy_model, hung))
    assert canon(peer_result.value) == canon(oracle_value(toy_model, peer))


def test_unrelated_tenants_stay_bit_identical_under_a_tenant_fault(tmp_path, toy_model):
    doomed = _request(toy_model, tenant="t-a", job_id="doomed")
    clean = [
        _request(toy_model, tenant="t-b", fraction=f, job_id=f"clean-{i}")
        for i, f in enumerate((0.2, 0.4, 0.6))
    ]
    plan = _plan(tmp_path, {doomed.site: FaultSpec(kind="error", times=-1)})
    with faults.inject(plan):
        results = _run([doomed, *clean], ServiceConfig(workers=2, max_retries=1))
    assert results[0].status is JobStatus.FAILED
    for request, result in zip(clean, results[1:]):
        assert result.ok
        assert result.attempts == 1  # never even saw a retry
        assert canon(result.value) == canon(oracle_value(toy_model, request))
