"""Determinism and bookkeeping of the fault plans themselves."""

from __future__ import annotations

import pytest

from repro.runtime.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    inject,
    poke,
    seeded_plan,
    task_site,
)


def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(kind="meteor")
    with pytest.raises(ValueError):
        FaultSpec(times=-2)
    with pytest.raises(ValueError):
        FaultSpec(seconds=-1.0)
    assert set(FAULT_KINDS) == {"error", "hang", "exit", "infeasible"}


def test_spec_attempt_budget():
    assert FaultSpec(times=2).applies_to(1)
    assert FaultSpec(times=2).applies_to(2)
    assert not FaultSpec(times=2).applies_to(3)
    assert FaultSpec(times=-1).applies_to(10_000)


def test_plan_requires_an_existing_state_dir(tmp_path):
    with pytest.raises(ValueError):
        FaultPlan.of(tmp_path / "missing", {})


def test_attempt_numbers_are_claimed_monotonically(tmp_path):
    plan = FaultPlan.of(tmp_path, {})
    site = task_site("a")
    assert [plan.next_attempt(site) for _ in range(3)] == [1, 2, 3]
    assert plan.attempts_seen(site) == 3
    assert plan.attempts_seen(task_site("b")) == 0


def test_fire_consumes_the_attempt_budget(tmp_path):
    plan = FaultPlan.of(tmp_path, {"s": FaultSpec(kind="error", times=2)})
    for _ in range(2):
        with pytest.raises(InjectedFault):
            plan.fire("s")
    assert plan.fire("s") is None  # third attempt proceeds
    assert plan.fire("unscripted") is None


def _state(tmp_path, name):
    directory = tmp_path / name
    directory.mkdir()
    return directory


def test_seeded_plan_is_a_pure_function_of_the_seed(tmp_path):
    sites = [task_site(i) for i in range(32)]
    a = seeded_plan(_state(tmp_path, "a1"), 7, sites)
    b = seeded_plan(_state(tmp_path, "a2"), 7, sites)
    assert set(a.specs) == set(b.specs)
    other = seeded_plan(_state(tmp_path, "a3"), 8, sites)
    assert set(a.specs) != set(other.specs)


def test_seeded_plan_rate_extremes(tmp_path):
    sites = [task_site(i) for i in range(10)]
    assert seeded_plan(_state(tmp_path, "r0"), 0, sites, fault_rate=0.0).specs == {}
    full = seeded_plan(_state(tmp_path, "r1"), 0, sites, fault_rate=1.0)
    assert set(full.specs) == set(sites)
    with pytest.raises(ValueError):
        seeded_plan(_state(tmp_path, "r2"), 0, sites, fault_rate=1.5)


def test_inject_installs_and_restores_the_ambient_plan(tmp_path):
    plan = FaultPlan.of(tmp_path, {"site": FaultSpec(kind="infeasible", times=-1)})
    assert active_plan() is None
    assert poke("site") is None  # no plan installed: free no-op
    with inject(plan):
        assert active_plan() is plan
        assert poke("site") == "infeasible"
    assert active_plan() is None
