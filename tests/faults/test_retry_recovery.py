"""Retry recovery: faulted maps converge to the fault-free serial oracle.

The acceptance bar for the whole harness: a task that fails fewer times
than ``max_retries`` allows must leave **no trace in the results** —
bit-identical output to a serial fault-free run — at 1, 2, and 4
workers, with the recovery visible only in the :class:`MapReport` and
the ``parallel.*`` counters.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ReproError
from repro.runtime.faults import FaultPlan, FaultSpec, FaultyJob, InjectedFault, task_site
from repro.runtime.parallel import parallel_map
from repro.runtime.resilience import MapReport, RetryPolicy

ITEMS = list(range(8))


def _cube(x: int) -> int:
    return x * x * x


ORACLE = [_cube(x) for x in ITEMS]

#: Items whose first two attempts are scripted to raise.
FAULTED = (1, 4, 6)


def _flaky_plan(tmp_path) -> FaultPlan:
    state = tmp_path / "state"
    state.mkdir()
    return FaultPlan.of(
        state, {task_site(i): FaultSpec(kind="error", times=2) for i in FAULTED}
    )


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_retried_results_match_serial_oracle(tmp_path, workers, persist_report):
    job = FaultyJob(_cube, _flaky_plan(tmp_path))
    report = MapReport()
    policy = RetryPolicy(max_retries=2, backoff_base=0.0)
    results = parallel_map(job, ITEMS, workers=workers, policy=policy, report=report)
    persist_report(report)
    assert results == ORACLE
    assert report.retries == 2 * len(FAULTED)
    assert not report.failures and not report.skipped and not report.degraded


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_exhausted_retries_raise_the_original_exception(tmp_path, workers):
    state = tmp_path / "state"
    state.mkdir()
    plan = FaultPlan.of(state, {task_site(3): FaultSpec(kind="error", times=-1)})
    with pytest.raises(InjectedFault):
        parallel_map(
            FaultyJob(_cube, plan),
            ITEMS,
            workers=workers,
            policy=RetryPolicy(max_retries=1, backoff_base=0.0),
        )


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_skip_drops_only_the_faulted_task(tmp_path, workers, persist_report):
    state = tmp_path / "state"
    state.mkdir()
    plan = FaultPlan.of(state, {task_site(3): FaultSpec(kind="error", times=-1)})
    report = MapReport()
    policy = RetryPolicy(max_retries=1, backoff_base=0.0, on_failure="skip")
    results = parallel_map(
        FaultyJob(_cube, plan), ITEMS, workers=workers, policy=policy, report=report
    )
    persist_report(report)
    assert results == [_cube(x) for x in ITEMS if x != 3]
    assert report.skipped == [3]
    assert [f.index for f in report.failures] == [3]
    assert report.failures[0].error_type == "InjectedFault"


def test_retry_counters_mirror_the_report(tmp_path):
    job = FaultyJob(_cube, _flaky_plan(tmp_path))
    report = MapReport()
    with obs.capture() as cap:
        results = parallel_map(
            job,
            ITEMS,
            workers=2,
            policy=RetryPolicy(max_retries=2, backoff_base=0.0),
            report=report,
        )
    assert results == ORACLE
    counters = cap.registry.snapshot()["counters"]
    assert counters["parallel.retries"] == report.retries
    assert counters["parallel.tasks"] == len(ITEMS)
    assert "parallel.task_failures" not in counters


def test_backoff_schedule_is_deterministic():
    policy = RetryPolicy(max_retries=5, backoff_base=0.05, backoff_cap=0.4)
    assert [policy.delay(k) for k in range(1, 6)] == [0.05, 0.1, 0.2, 0.4, 0.4]
    with pytest.raises(ReproError):
        policy.delay(0)


def test_policy_validation():
    with pytest.raises(ReproError):
        RetryPolicy(timeout=0.0)
    with pytest.raises(ReproError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ReproError):
        RetryPolicy(on_failure="explode")
    assert RetryPolicy(max_retries=2).attempts == 3
