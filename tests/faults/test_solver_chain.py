"""The solver fallback chain under injected backend failures.

Backend crashes are scripted through the ambient fault plan
(``solver.<backend>`` sites), so these tests never monkey-patch solver
internals: the chain takes exactly the code path a real HiGHS failure
would trigger.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import InfeasibleError, SolverError
from repro.metrics.cost import Budget
from repro.optimize.problem import MaxUtilityProblem
from repro.runtime import faults
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.solver import (
    DEFAULT_CHAIN,
    MilpModel,
    SolutionStatus,
    solve,
    solve_with_fallback,
)
from tests.conftest import knapsack_model as _knapsack


def _plan(tmp_path, specs) -> FaultPlan:
    state = tmp_path / "state"
    state.mkdir(exist_ok=True)
    return FaultPlan.of(state, specs)


def test_clean_chain_answers_with_the_first_backend():
    outcome = solve_with_fallback(_knapsack())
    assert outcome.backend == DEFAULT_CHAIN[0]
    assert not outcome.rescued
    assert outcome.failures == ()
    assert outcome.solution.objective == pytest.approx(25.0)


def test_failed_backend_falls_through_and_records_why(tmp_path):
    plan = _plan(tmp_path, {"solver.scipy": FaultSpec(kind="error", times=-1)})
    with faults.inject(plan), obs.capture() as cap:
        outcome = solve_with_fallback(_knapsack())
    assert outcome.backend == "branch-and-bound"
    assert outcome.rescued
    assert [a.backend for a in outcome.attempts] == ["scipy", "branch-and-bound"]
    assert outcome.attempts[0].answered is False
    assert outcome.attempts[0].error_type == "InjectedFault"
    assert outcome.solution.objective == pytest.approx(25.0)
    counters = cap.registry.snapshot()["counters"]
    assert counters["solver.fallback.attempts"] == 2.0
    assert counters["solver.fallback.failures"] == 1.0
    assert counters["solver.fallback.rescues"] == 1.0


def test_exhausted_chain_raises_with_full_history(tmp_path):
    plan = _plan(
        tmp_path,
        {
            "solver.scipy": FaultSpec(kind="error", times=-1, message="scipy down"),
            "solver.branch-and-bound": FaultSpec(kind="error", times=-1, message="bb down"),
        },
    )
    with faults.inject(plan), obs.capture() as cap:
        with pytest.raises(SolverError) as excinfo:
            solve_with_fallback(_knapsack())
    message = str(excinfo.value)
    assert "scipy down" in message and "bb down" in message
    counters = cap.registry.snapshot()["counters"]
    assert counters["solver.fallback.exhausted"] == 1.0


def test_infeasible_verdict_stops_the_chain(tmp_path):
    """Infeasibility is a property of the model, not a backend failure.

    The chain must report the first backend's INFEASIBLE verdict rather
    than fall through to another solver (or a heuristic) that would
    "find" something.
    """
    plan = _plan(tmp_path, {"solver.scipy": FaultSpec(kind="infeasible", times=-1)})
    with faults.inject(plan):
        outcome = solve_with_fallback(_knapsack())
    assert outcome.solution.status is SolutionStatus.INFEASIBLE
    assert outcome.backend == "scipy"
    assert not outcome.rescued


def test_fallback_backend_name_routes_through_the_chain(tmp_path):
    plan = _plan(tmp_path, {"solver.scipy": FaultSpec(kind="error", times=-1)})
    with faults.inject(plan):
        solution = solve(_knapsack(), "fallback")
    assert solution.objective == pytest.approx(25.0)


def test_empty_chain_is_rejected():
    with pytest.raises(SolverError):
        solve_with_fallback(_knapsack(), ())


class TestChainControls:
    def test_node_and_gap_controls_forward_to_the_chain(self):
        outcome = solve_with_fallback(_knapsack(), max_nodes=100_000, gap=1e-9)
        assert outcome.solution.status is SolutionStatus.OPTIMAL
        assert outcome.solution.objective == pytest.approx(25.0)

    def test_node_budget_degrades_instead_of_erroring(self, tmp_path):
        # Starve scipy out of the chain, then give branch-and-bound a
        # node budget too small to prove optimality: the chain must
        # still answer (FEASIBLE or INFEASIBLE), never raise.
        plan = _plan(tmp_path, {"solver.scipy": FaultSpec(kind="error", times=-1)})
        with faults.inject(plan):
            outcome = solve_with_fallback(_knapsack(), max_nodes=1)
        assert outcome.backend == "branch-and-bound"
        assert outcome.solution.status in (
            SolutionStatus.OPTIMAL,
            SolutionStatus.FEASIBLE,
            SolutionStatus.INFEASIBLE,
        )

    def test_presolve_once_before_the_chain_lifts_back(self):
        cold = solve_with_fallback(_knapsack())
        warm = solve_with_fallback(_knapsack(), presolve=True)
        assert warm.solution.objective == pytest.approx(cold.solution.objective)
        model = _knapsack()
        assert set(warm.solution.values) == {v.name for v in model.variables}
        assert model.is_feasible(warm.solution.values, tolerance=1e-6)

    def test_presolve_detected_infeasibility_answers_the_chain(self):
        model = MilpModel("impossible")
        x = model.binary("x")
        model.add_constraint(x + 0.0 >= 2, name="cannot")
        model.set_objective(x * 1)
        outcome = solve_with_fallback(model, presolve=True)
        assert outcome.solution.status is SolutionStatus.INFEASIBLE
        assert outcome.backend == "presolve"
        assert not outcome.rescued

    def test_presolve_solved_model_never_reaches_a_backend(self, tmp_path):
        # Every real backend is scripted to fail; presolve alone must
        # still answer a model it can fully reduce.
        plan = _plan(
            tmp_path,
            {
                "solver.scipy": FaultSpec(kind="error", times=-1),
                "solver.branch-and-bound": FaultSpec(kind="error", times=-1),
            },
        )
        model = MilpModel("forced")
        x = model.binary("x")
        model.add_constraint(x + 0.0 >= 1, name="must")
        model.set_objective(3 * x)
        with faults.inject(plan):
            outcome = solve_with_fallback(model, presolve=True)
        assert outcome.backend == "presolve"
        assert outcome.solution.status is SolutionStatus.OPTIMAL
        assert outcome.solution.objective == pytest.approx(3.0)
        assert outcome.solution.values == {"x": 1.0}


class TestProblemFallback:
    def test_answers_like_a_plain_solve(self, toy_model):
        problem = MaxUtilityProblem(toy_model, Budget.of(cpu=6))
        plain = problem.solve()
        result = problem.solve_with_fallback()
        assert result.deployment.monitor_ids == plain.deployment.monitor_ids
        assert result.utility == pytest.approx(plain.utility)
        assert result.stats["fallback_attempts"] == 1.0
        assert result.stats["fallback_failures"] == 0.0

    def test_rescued_by_the_second_backend(self, tmp_path, toy_model):
        plan = _plan(tmp_path, {"solver.scipy": FaultSpec(kind="error", times=-1)})
        problem = MaxUtilityProblem(toy_model, Budget.of(cpu=6))
        with faults.inject(plan):
            result = problem.solve_with_fallback()
        assert result.method == "ilp/branch-and-bound"
        assert result.stats["fallback_attempts"] == 2.0
        assert result.stats["fallback_failures"] == 1.0
        assert result.utility == pytest.approx(problem.solve().utility)

    def test_greedy_stands_in_when_every_backend_errors(self, tmp_path, toy_model):
        plan = _plan(
            tmp_path,
            {
                "solver.scipy": FaultSpec(kind="error", times=-1),
                "solver.branch-and-bound": FaultSpec(kind="error", times=-1),
            },
        )
        problem = MaxUtilityProblem(toy_model, Budget.of(cpu=6))
        with faults.inject(plan):
            result = problem.solve_with_fallback()
        assert result.method == "greedy-fallback"
        assert result.optimal is False
        assert all(isinstance(v, float) for v in result.stats.values())
        assert result.deployment.cost().get("cpu") <= 6.0

    def test_greedy_rescue_is_refused_under_a_cardinality_cap(self, tmp_path, toy_model):
        plan = _plan(
            tmp_path,
            {
                "solver.scipy": FaultSpec(kind="error", times=-1),
                "solver.branch-and-bound": FaultSpec(kind="error", times=-1),
            },
        )
        problem = MaxUtilityProblem(toy_model, Budget.of(cpu=6), max_monitors=1)
        with faults.inject(plan):
            with pytest.raises(SolverError):
                problem.solve_with_fallback()

    def test_infeasible_verdict_never_reaches_greedy(self, tmp_path, toy_model):
        plan = _plan(tmp_path, {"solver.scipy": FaultSpec(kind="infeasible", times=-1)})
        problem = MaxUtilityProblem(toy_model, Budget.of(cpu=6))
        with faults.inject(plan):
            with pytest.raises(InfeasibleError):
                problem.solve_with_fallback()
