"""Pool breakage: a dying worker degrades the map to serial, visibly.

An ``exit`` fault calls ``os._exit(1)`` inside a pool worker, which
surfaces as ``BrokenProcessPool`` in the parent.  The contract: the map
re-runs serially, produces the oracle results (the fault's attempt
budget was consumed by the dead worker), and the degradation is
recorded in both the :class:`MapReport` and the ``parallel.*`` counters.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.runtime.faults import FaultPlan, FaultSpec, FaultyJob, task_site
from repro.runtime.parallel import parallel_map
from repro.runtime.resilience import MapReport, RetryPolicy

ITEMS = list(range(6))


def _double(x: int) -> int:
    return 2 * x


ORACLE = [_double(x) for x in ITEMS]


@pytest.mark.parametrize("workers", [2, 4])
def test_broken_pool_degrades_to_serial_with_oracle_results(
    tmp_path, workers, persist_report
):
    state = tmp_path / "state"
    state.mkdir()
    plan = FaultPlan.of(state, {task_site(2): FaultSpec(kind="exit", times=1)})
    report = MapReport()
    with obs.capture() as cap:
        results = parallel_map(
            FaultyJob(_double, plan), ITEMS, workers=workers, report=report
        )
    persist_report(report)
    assert results == ORACLE
    assert report.degraded
    assert "BrokenProcessPool" in (report.degraded_reason or "")
    counters = cap.registry.snapshot()["counters"]
    assert counters["parallel.pool_failures"] == 1.0
    assert counters["parallel.degraded_maps"] == 1.0


def test_degraded_rerun_still_applies_the_retry_policy(tmp_path, persist_report):
    """Pool death and a genuinely flaky task in the same map.

    The serial rerun keeps honouring the policy: the ``error`` fault
    exhausts its attempts there and is skipped, while every other task
    (including the one whose worker died) produces its oracle result.
    """
    state = tmp_path / "state"
    state.mkdir()
    plan = FaultPlan.of(
        state,
        {
            task_site(2): FaultSpec(kind="exit", times=1),
            task_site(5): FaultSpec(kind="error", times=-1),
        },
    )
    report = MapReport()
    policy = RetryPolicy(max_retries=1, backoff_base=0.0, on_failure="skip")
    results = parallel_map(
        FaultyJob(_double, plan), ITEMS, workers=2, policy=policy, report=report
    )
    persist_report(report)
    assert results == [_double(x) for x in ITEMS if x != 5]
    assert report.degraded
    assert 5 in report.skipped
    assert any(f.index == 5 and f.stage == "serial" for f in report.failures)


def test_exit_fault_refuses_to_kill_the_parent(tmp_path):
    """On the serial path the exit fault downgrades to an exception.

    ``os._exit`` in the test process would take pytest down with it;
    the plan records its constructing PID and refuses, raising
    ``InjectedFault`` instead — which the retry loop then handles like
    any task error.
    """
    state = tmp_path / "state"
    state.mkdir()
    plan = FaultPlan.of(state, {task_site(0): FaultSpec(kind="exit", times=1)})
    report = MapReport()
    results = parallel_map(
        FaultyJob(_double, plan),
        ITEMS,
        workers=1,
        policy=RetryPolicy(max_retries=1, backoff_base=0.0),
        report=report,
    )
    assert results == ORACLE
    assert report.retries == 1
