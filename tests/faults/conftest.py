"""Shared helpers for the fault-injection suite.

Every test here drives a scripted :class:`repro.runtime.faults.FaultPlan`
through a recovery path and checks the outcome against a fault-free
serial oracle.  The ``persist_report`` fixture additionally writes each
test's :class:`~repro.runtime.resilience.MapReport` to the directory
named by ``REPRO_FAULT_REPORT_DIR`` (when set), which is how CI uploads
structured failure evidence as artifacts.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import pytest

from repro.runtime.resilience import MapReport

#: Environment variable naming the directory MapReports are persisted to.
REPORT_DIR_ENV = "REPRO_FAULT_REPORT_DIR"


@pytest.fixture
def persist_report(request):
    """A ``record(report)`` callable that lands reports in CI artifacts.

    Returns the report unchanged so call sites can use it inline:
    ``report = persist_report(report)``.  Without ``REPRO_FAULT_REPORT_DIR``
    in the environment it is a pass-through.
    """

    def record(report: MapReport) -> MapReport:
        target = os.environ.get(REPORT_DIR_ENV, "").strip()
        if target:
            directory = Path(target)
            directory.mkdir(parents=True, exist_ok=True)
            slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.nodeid)
            path = directory / f"{slug}.json"
            path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        return report

    return record
