"""Per-task timeouts: hung tasks are abandoned, retried, and recovered.

``hang`` faults sleep and then *succeed*, so a timeout + retry run must
still produce oracle-identical results: the first attempt is abandoned
past its deadline and the retry (whose attempt number exceeds the
fault's budget) returns the real value.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.runtime.faults import FaultPlan, FaultSpec, FaultyJob, task_site
from repro.runtime.parallel import parallel_map
from repro.runtime.resilience import MapReport, RetryPolicy, TaskFailureError

ITEMS = list(range(5))


def _negate(x: int) -> int:
    return -x


ORACLE = [_negate(x) for x in ITEMS]


def _hang_plan(tmp_path, *, times: int = 1, seconds: float = 2.0) -> FaultPlan:
    state = tmp_path / "state"
    state.mkdir()
    return FaultPlan.of(
        state, {task_site(2): FaultSpec(kind="hang", times=times, seconds=seconds)}
    )


@pytest.mark.parametrize("workers", [2, 4])
def test_timed_out_task_retries_to_the_oracle_result(tmp_path, workers, persist_report):
    plan = _hang_plan(tmp_path)
    report = MapReport()
    policy = RetryPolicy(timeout=0.5, max_retries=1, backoff_base=0.0)
    with obs.capture() as cap:
        results = parallel_map(
            FaultyJob(_negate, plan), ITEMS, workers=workers, policy=policy, report=report
        )
    persist_report(report)
    assert results == ORACLE
    assert report.timeouts >= 1
    assert report.retries >= 1
    counters = cap.registry.snapshot()["counters"]
    assert counters["parallel.timeouts"] == report.timeouts


def test_persistent_hang_raises_task_failure_error(tmp_path, persist_report):
    plan = _hang_plan(tmp_path, times=-1)
    report = MapReport()
    policy = RetryPolicy(timeout=0.4, max_retries=0)
    with pytest.raises(TaskFailureError) as excinfo:
        parallel_map(
            FaultyJob(_negate, plan), ITEMS, workers=2, policy=policy, report=report
        )
    persist_report(report)
    assert excinfo.value.failure.index == 2
    assert excinfo.value.failure.error_type == "TimeoutError"
    assert report.timeouts == 1
    assert [f.index for f in report.failures] == [2]


def test_persistent_hang_can_be_skipped(tmp_path, persist_report):
    plan = _hang_plan(tmp_path, times=-1)
    report = MapReport()
    policy = RetryPolicy(timeout=0.4, max_retries=0, on_failure="skip")
    results = parallel_map(
        FaultyJob(_negate, plan), ITEMS, workers=2, policy=policy, report=report
    )
    persist_report(report)
    assert results == [_negate(x) for x in ITEMS if x != 2]
    assert report.skipped == [2]


def test_timeout_is_not_enforced_on_the_serial_path(tmp_path):
    """Serial execution cannot preempt a task; the hang just runs long.

    Documented behaviour: with ``workers=1`` the hang fault sleeps and
    then succeeds, so the map returns the oracle with no timeout
    recorded.
    """
    plan = _hang_plan(tmp_path, seconds=0.3)
    report = MapReport()
    policy = RetryPolicy(timeout=0.05, max_retries=0)
    results = parallel_map(
        FaultyJob(_negate, plan), ITEMS, workers=1, policy=policy, report=report
    )
    assert results == ORACLE
    assert report.timeouts == 0 and report.clean
