"""Tests for DOT and CSV exports."""

import csv
import io

import pytest

from repro.analysis.evaluation import evaluate_deployment
from repro.export import (
    deployment_to_dot,
    report_to_csv,
    sweep_to_csv,
    topology_to_dot,
    write_csv,
)
from repro.optimize.deployment import Deployment
from repro.optimize.pareto import budget_sweep


class TestTopologyDot:
    def test_all_assets_and_links_present(self, toy_model):
        dot = topology_to_dot(toy_model)
        for asset_id in toy_model.assets:
            assert f'"{asset_id}"' in dot
        assert dot.count(" -- ") == len(toy_model.topology.links)

    def test_graph_header_and_footer(self, toy_model):
        dot = topology_to_dot(toy_model, name="net")
        assert dot.startswith('graph "net" {')
        assert dot.rstrip().endswith("}")

    def test_kind_shapes(self, toy_model):
        dot = topology_to_dot(toy_model)
        assert "shape=cylinder" in dot  # database asset
        assert "shape=hexagon" in dot  # network device

    def test_quote_escaping(self):
        from repro.core import ModelBuilder

        model = ModelBuilder().asset("a", name='the "special" host').build()
        dot = topology_to_dot(model)
        assert '\\"special\\"' in dot


class TestDeploymentDot:
    def test_deployed_assets_highlighted(self, toy_model):
        dot = deployment_to_dot(Deployment.of(toy_model, ["mdb@h2"]))
        assert "fillcolor" in dot
        assert "[mdb]" in dot

    def test_network_monitor_taps_links(self, toy_model):
        dot = deployment_to_dot(Deployment.of(toy_model, ["mnet@n1"]))
        assert "color=blue" in dot

    def test_host_monitor_taps_nothing(self, toy_model):
        dot = deployment_to_dot(Deployment.of(toy_model, ["mlog@h1"]))
        assert "color=blue" not in dot

    def test_empty_deployment_plain_topology(self, toy_model):
        dot = deployment_to_dot(Deployment.empty(toy_model))
        assert "fillcolor" not in dot


class TestCsvExports:
    def test_report_csv_shape(self, toy_model):
        report = evaluate_deployment(toy_model, Deployment.full(toy_model))
        rows = list(csv.reader(io.StringIO(report_to_csv(report))))
        assert rows[0][0] == "attack_id"
        assert len(rows) == 1 + len(toy_model.attacks)
        assert {row[0] for row in rows[1:]} == set(toy_model.attacks)

    def test_report_csv_values_parse(self, toy_model):
        report = evaluate_deployment(toy_model, Deployment.full(toy_model))
        rows = list(csv.DictReader(io.StringIO(report_to_csv(report))))
        for row in rows:
            assert 0.0 <= float(row["coverage"]) <= 1.0
            assert row["fully_covered"] in ("0", "1")

    def test_sweep_csv(self, toy_model):
        points = budget_sweep(toy_model, [0.5, 1.0])
        rows = list(csv.DictReader(io.StringIO(sweep_to_csv(points))))
        assert [float(r["budget_fraction"]) for r in rows] == [0.5, 1.0]
        assert all(r["optimal"] == "1" for r in rows)

    def test_write_csv(self, toy_model, tmp_path):
        points = budget_sweep(toy_model, [1.0])
        path = tmp_path / "sweep.csv"
        write_csv(sweep_to_csv(points), path)
        assert path.read_text().startswith("budget_fraction")


class TestHtmlReport:
    @pytest.fixture()
    def report(self, toy_model):
        return evaluate_deployment(toy_model, Deployment.of(toy_model, ["mnet@n1"]))

    def test_complete_document(self, report):
        from repro.export import report_to_html

        html = report_to_html(report)
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        assert "<style>" in html

    def test_sections_present(self, report):
        from repro.export import report_to_html

        html = report_to_html(report)
        for section in ("Metrics", "Cost", "Deployed monitors", "Per-attack assessment"):
            assert section in html
        assert "Simulated campaign" not in html

    def test_campaign_section_when_simulated(self, toy_model):
        from repro.export import report_to_html

        report = evaluate_deployment(
            toy_model, Deployment.full(toy_model), simulate=True, repetitions=2, seed=1
        )
        assert "Simulated campaign" in report_to_html(report)

    def test_monitor_and_attack_rows(self, report):
        from repro.export import report_to_html

        html = report_to_html(report)
        assert "mnet@n1" in html
        assert ">A<" in html or "A</td>" in html

    def test_escaping(self, toy_model):
        from repro.export import report_to_html

        report = evaluate_deployment(toy_model, Deployment.empty(toy_model))
        html = report_to_html(report, title='<script>alert("x")</script>')
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_custom_title(self, report):
        from repro.export import report_to_html

        assert "Quarterly review" in report_to_html(report, title="Quarterly review")
