"""Unit tests for the span tracer and its injected clocks."""

import pytest

from repro.obs import ManualClock, SystemClock, Tracer


def manual_tracer(autostep: float = 1.0) -> Tracer:
    return Tracer(clock=ManualClock(autostep=autostep))


class TestClocks:
    def test_system_clock_is_monotone(self):
        clock = SystemClock()
        assert clock.now() <= clock.now()

    def test_manual_clock_autosteps(self):
        clock = ManualClock(start=10.0, autostep=2.0)
        assert clock.now() == 10.0
        assert clock.now() == 12.0

    def test_manual_clock_advance(self):
        clock = ManualClock()
        clock.advance(5.0)
        assert clock.now() == 5.0
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestSpanLifecycle:
    def test_nesting_builds_a_tree(self):
        tracer = manual_tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("b"):
                pass
        (root,) = tracer.roots
        assert root.name == "root"
        assert [child.name for child in root.children] == ["a", "b"]
        assert [leaf.name for leaf in root.children[0].children] == ["leaf"]

    def test_durations_come_from_the_injected_clock(self):
        tracer = manual_tracer(autostep=1.0)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        # Clock ticks: outer.begin=0, inner.begin=1, inner.end=2, outer.end=3.
        assert (outer.begin, outer.end) == (0.0, 3.0)
        assert inner.duration == 1.0
        assert outer.duration == 3.0

    def test_stop_is_idempotent_and_returns_duration(self):
        tracer = manual_tracer()
        span = tracer.span("s")
        with span:
            pass
        first = span.duration
        assert span.stop() == first
        assert span.stop() == first

    def test_duration_is_zero_while_running(self):
        tracer = manual_tracer()
        span = tracer.span("s")
        span.__enter__()
        assert span.duration == 0.0
        span.stop()

    def test_set_updates_args_after_entry(self):
        tracer = manual_tracer()
        with tracer.span("s", fixed=1) as span:
            span.set(found=3, fixed=2)
        assert span.args == {"fixed": 2, "found": 3}

    def test_out_of_order_stop_unwinds_to_the_closed_span(self):
        tracer = manual_tracer()
        outer = tracer.span("outer").__enter__()
        tracer.span("inner").__enter__()
        outer.stop()  # closes outer while inner is still open
        assert [span.name for span in tracer.roots] == ["outer"]
        assert tracer._stack == []


class TestKeepFalse:
    def test_times_spans_but_retains_nothing(self):
        tracer = Tracer(clock=ManualClock(autostep=1.0), keep=False)
        with tracer.span("work") as span:
            pass
        assert span.duration == 1.0  # still timed
        assert tracer.roots == []  # never retained
        assert tracer._stack == []

    def test_attach_is_a_no_op(self):
        keeper = manual_tracer()
        with keeper.span("task"):
            pass
        dropper = Tracer(keep=False)
        dropper.attach(keeper.export_spans(), tid="task-0")
        assert dropper.roots == []


class TestTransport:
    def test_round_trip_through_dicts(self):
        tracer = manual_tracer()
        with tracer.span("root", k="v"):
            with tracer.span("child"):
                pass
        payload = tracer.export_spans()
        rebuilt = Tracer()
        rebuilt.attach(payload, at=0.0)
        assert rebuilt.export_spans() == payload

    def test_attach_rebases_foreign_clock_origin(self):
        worker = Tracer(clock=ManualClock(start=1000.0, autostep=1.0))
        with worker.span("task"):
            pass
        parent = manual_tracer()
        parent.attach(worker.export_spans(), tid="task-0", at=50.0)
        (task,) = parent.roots
        assert task.begin == 50.0  # 1000 rebased onto the parent timeline
        assert task.duration == 1.0  # internal duration preserved
        assert task.tid == "task-0"

    def test_attach_defaults_to_parent_now(self):
        worker = Tracer(clock=ManualClock(start=77.0))
        with worker.span("task"):
            pass
        parent = Tracer(clock=ManualClock(start=5.0))
        parent.attach(worker.export_spans())
        assert parent.roots[0].begin == 5.0

    def test_attach_nests_under_an_open_span(self):
        parent = manual_tracer()
        worker = Tracer(clock=ManualClock())
        with worker.span("task"):
            pass
        with parent.span("map"):
            parent.attach(worker.export_spans(), tid="task-0")
        (map_span,) = parent.roots
        assert [child.name for child in map_span.children] == ["task"]

    def test_reset_clears_roots_and_stack(self):
        tracer = manual_tracer()
        with tracer.span("done"):
            pass
        tracer.span("open").__enter__()
        tracer.reset()
        assert tracer.roots == []
        assert tracer._stack == []


class TestDeterminism:
    def test_identical_code_paths_export_identical_trees(self):
        def run() -> list[dict]:
            tracer = Tracer(clock=ManualClock(autostep=1.0))
            with tracer.span("root", n=2):
                for i in range(2):
                    with tracer.span("step", i=i):
                        pass
            return tracer.export_spans()

        assert run() == run()
