"""Overhead guard: ambient instrumentation must stay within 5% of no-op.

The obs package promises that always-on instrumentation (ambient
``MetricsRegistry`` counters/histograms plus a ``keep=False`` tracer) is
cheap enough to leave enabled everywhere.  This test times an F3-style
greedy solve on a 200-monitor synthetic model both ways — instrumented
defaults vs. an explicit ``NullRegistry`` + non-retaining tracer — and
fails if the instrumented path is more than 5% slower.

Timing discipline: one warmup per mode, then interleaved samples (so
drift hits both modes equally), each sample timing a small batch of
solves, and best-of-N on both sides (minima are robust to scheduler
noise; means are not).
"""

import time

import pytest

from repro import obs
from repro.casestudy.scaling import synthetic_model
from repro.metrics.cost import Budget
from repro.obs import NullRegistry, Tracer
from repro.optimize.greedy import solve_greedy

SAMPLES = 7
SOLVES_PER_SAMPLE = 3
MAX_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def workload():
    model = synthetic_model(
        assets=40, data_types=12, monitor_types=6, monitors=200, attacks=100, seed=7
    )
    budget = Budget.fraction_of_total(model, 0.3)
    return model, budget


def _time_batch(model, budget) -> float:
    started = time.perf_counter()
    for _ in range(SOLVES_PER_SAMPLE):
        solve_greedy(model, budget)
    return time.perf_counter() - started


def test_instrumented_solve_within_5_percent_of_noop(workload):
    model, budget = workload
    noop_registry = NullRegistry()
    noop_tracer = Tracer(keep=False)

    # Warm both paths (engine construction, caches, JIT-ish numpy setup).
    _time_batch(model, budget)
    with obs.use(registry=noop_registry, tracer=noop_tracer):
        _time_batch(model, budget)

    instrumented: list[float] = []
    baseline: list[float] = []
    for _ in range(SAMPLES):
        instrumented.append(_time_batch(model, budget))
        with obs.use(registry=noop_registry, tracer=noop_tracer):
            baseline.append(_time_batch(model, budget))

    best_instrumented = min(instrumented)
    best_baseline = min(baseline)
    overhead = best_instrumented / best_baseline - 1.0
    assert overhead <= MAX_OVERHEAD, (
        f"instrumentation overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"(instrumented {best_instrumented * 1e3:.2f} ms vs "
        f"baseline {best_baseline * 1e3:.2f} ms per {SOLVES_PER_SAMPLE} solves)"
    )


def test_instrumented_and_noop_runs_agree_on_results(workload):
    """The guard would be vacuous if the two modes computed different things."""
    model, budget = workload
    instrumented = solve_greedy(model, budget)
    with obs.use(registry=NullRegistry(), tracer=Tracer(keep=False)):
        noop = solve_greedy(model, budget)
    assert noop.deployment.monitor_ids == instrumented.deployment.monitor_ids
    assert noop.utility == instrumented.utility
