"""Unit tests for the zero-dependency metrics registry."""

import pytest

from repro.obs import (
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.registry import Histogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1.0)


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", (2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_observation_lands_in_first_bucket_with_bound_gte_value(self):
        histogram = Histogram("h", (1.0, 10.0))
        histogram.observe(0.5)  # <= 1.0
        histogram.observe(1.0)  # boundary counts in its own bucket
        histogram.observe(5.0)  # (1, 10]
        histogram.observe(100.0)  # overflow
        assert histogram.bucket_counts == [2, 1]
        assert histogram.overflow == 1
        assert histogram.count == 4

    def test_exact_statistics_alongside_buckets(self):
        histogram = Histogram("h", (1.0,))
        for value in (0.5, 2.0, 4.0):
            histogram.observe(value)
        assert histogram.sum == pytest.approx(6.5)
        assert histogram.mean == pytest.approx(6.5 / 3)
        assert histogram.min == 0.5
        assert histogram.max == 4.0

    def test_snapshot_of_empty_histogram_has_null_extremes(self):
        snapshot = Histogram("h", (1.0,)).snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min"] is None
        assert snapshot["max"] is None

    def test_default_bounds_are_the_seconds_buckets(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.bounds == DEFAULT_SECONDS_BUCKETS

    def test_bounds_mismatch_on_existing_histogram_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        assert registry.histogram("h", (1.0, 2.0)) is registry.histogram("h")
        with pytest.raises(ValueError):
            registry.histogram("h", (1.0, 3.0))


class TestSnapshotAndMerge:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("evals").inc(3)
        registry.gauge("size").set(7.0)
        histogram = registry.histogram("t", (1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(20.0)
        return registry

    def test_snapshot_is_json_shaped_and_sorted(self):
        snapshot = self._populated().snapshot()
        assert snapshot["counters"] == {"evals": 3.0}
        assert snapshot["gauges"] == {"size": 7.0}
        assert snapshot["histograms"]["t"]["bucket_counts"] == [1, 0]
        assert snapshot["histograms"]["t"]["overflow"] == 1

    def test_merge_adds_counters_and_buckets(self):
        parent = self._populated()
        parent.merge(self._populated().snapshot())
        assert parent.counter("evals").value == 6.0
        histogram = parent.histogram("t", (1.0, 10.0))
        assert histogram.bucket_counts == [2, 0]
        assert histogram.overflow == 2
        assert histogram.count == 4
        assert histogram.min == 0.5
        assert histogram.max == 20.0

    def test_merge_into_empty_registry_recreates_instruments(self):
        parent = MetricsRegistry()
        parent.merge(self._populated().snapshot())
        assert parent.snapshot() == self._populated().snapshot()

    def test_merge_rejects_bound_mismatch(self):
        parent = MetricsRegistry()
        parent.histogram("t", (5.0,))
        with pytest.raises(ValueError):
            parent.merge(self._populated().snapshot())

    def test_reset_drops_instruments(self):
        registry = self._populated()
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestNullRegistry:
    def test_records_nothing(self):
        registry = NullRegistry()
        registry.counter("c").inc(10)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(5.0)
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_shares_instruments_across_names(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b")

    def test_merge_is_a_no_op(self):
        registry = NullRegistry()
        populated = MetricsRegistry()
        populated.counter("c").inc()
        registry.merge(populated.snapshot())
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
