"""Unit tests for the Chrome-trace exporter and the combined file format."""

import json

from repro.obs import (
    ManualClock,
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    load_trace,
    trace_payload,
    write_trace,
)


def _sample_tracer() -> Tracer:
    tracer = Tracer(clock=ManualClock(start=100.0, autostep=1.0))
    with tracer.span("root", items=2):
        with tracer.span("child"):
            pass
    return tracer


class TestChromeTraceEvents:
    def test_complete_events_with_microsecond_rebase(self):
        events = chrome_trace_events(_sample_tracer().roots)
        assert [event["name"] for event in events] == ["root", "child"]
        root, child = events
        # Clock ticks: root.begin=100, child.begin=101, child.end=102,
        # root.end=103; rebased so the earliest begin is ts=0, in µs.
        assert (root["ts"], root["dur"]) == (0.0, 3e6)
        assert (child["ts"], child["dur"]) == (1e6, 1e6)
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 0

    def test_args_survive_and_nonjson_values_stringify(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("s", count=3, ids=frozenset({"m1"})):
            pass
        (event,) = chrome_trace_events(tracer.roots)
        assert event["args"]["count"] == 3
        assert isinstance(event["args"]["ids"], str)

    def test_tid_propagates_from_attached_roots_to_children(self):
        parent = Tracer(clock=ManualClock(autostep=1.0))
        worker = Tracer(clock=ManualClock(autostep=1.0))
        with worker.span("task"):
            with worker.span("task.child"):
                pass
        with parent.span("map"):
            parent.attach(worker.export_spans(), tid="task-0")
        events = {event["name"]: event for event in chrome_trace_events(parent.roots)}
        assert events["map"]["tid"] == 0
        assert events["task"]["tid"] == "task-0"
        assert events["task.child"]["tid"] == "task-0"

    def test_empty_forest_exports_no_events(self):
        assert chrome_trace_events([]) == []


class TestTraceFile:
    def test_payload_carries_both_views(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(4)
        payload = trace_payload(_sample_tracer(), registry)
        assert payload["displayTimeUnit"] == "ms"
        assert [event["name"] for event in payload["traceEvents"]] == ["root", "child"]
        assert payload["metrics"]["counters"] == {"cache.hits": 4.0}

    def test_write_and_load_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.histogram("t").observe(0.25)
        path = write_trace(tmp_path / "trace.json", _sample_tracer(), registry)
        loaded = load_trace(path)
        assert loaded == trace_payload(_sample_tracer(), registry)
        # The file is plain JSON a Chrome-trace viewer can open directly.
        assert json.loads(path.read_text())["traceEvents"]

    def test_load_accepts_a_bare_metrics_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(registry.snapshot()))
        loaded = load_trace(path)
        assert loaded["counters"] == {"c": 1.0}
