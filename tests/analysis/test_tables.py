"""Tests for text-table rendering."""

import pytest

from repro.analysis.tables import format_value, render_table


class TestFormatValue:
    def test_floats_rounded(self):
        assert format_value(0.123456) == "0.123"
        assert format_value(0.123456, precision=1) == "0.1"

    def test_integral_floats_shown_as_int(self):
        assert format_value(3.0) == "3"

    def test_nan_shown_as_dash(self):
        assert format_value(float("nan")) == "-"

    def test_bools(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_strings_passed_through(self):
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_header_and_rule(self):
        text = render_table(["a", "bb"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) <= {"-", " "}

    def test_title_first(self):
        text = render_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_numeric_right_aligned(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[-1].endswith("22")
        assert lines[-2].endswith(" 1")

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_column_width_fits_longest(self):
        text = render_table(["h"], [["very-long-cell"]])
        header, rule, row = text.splitlines()
        assert len(rule) == len("very-long-cell")
