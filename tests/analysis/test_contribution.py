"""Tests for per-monitor contribution analysis."""

import pytest

from repro.analysis.contribution import (
    add_one_in,
    contribution_report,
    leave_one_out,
    shapley_values,
)
from repro.errors import MetricError
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.deployment import Deployment

WEIGHTS = UtilityWeights()


class TestLeaveOneOut:
    def test_values_match_direct_computation(self, toy_model):
        deployment = Deployment.of(toy_model, ["mnet@n1", "mdb@h2"])
        base = utility(toy_model, deployment.monitor_ids, WEIGHTS)
        values = {v.monitor_id: v.value for v in leave_one_out(toy_model, deployment, WEIGHTS)}
        for monitor_id in deployment.monitor_ids:
            expected = base - utility(
                toy_model, deployment.monitor_ids - {monitor_id}, WEIGHTS
            )
            assert values[monitor_id] == pytest.approx(expected)

    def test_sorted_descending(self, toy_model):
        values = leave_one_out(toy_model, Deployment.full(toy_model), WEIGHTS)
        assert [v.value for v in values] == sorted((v.value for v in values), reverse=True)

    def test_values_nonnegative(self, toy_model):
        # Utility is monotone, so removing a monitor never helps.
        for v in leave_one_out(toy_model, Deployment.full(toy_model), WEIGHTS):
            assert v.value >= -1e-12

    def test_empty_deployment(self, toy_model):
        assert leave_one_out(toy_model, Deployment.empty(toy_model), WEIGHTS) == []


class TestAddOneIn:
    def test_only_unselected_monitors(self, toy_model):
        deployment = Deployment.of(toy_model, ["mnet@n1"])
        ids = {v.monitor_id for v in add_one_in(toy_model, deployment, WEIGHTS)}
        assert ids == set(toy_model.monitors) - {"mnet@n1"}

    def test_values_match_direct_computation(self, toy_model):
        deployment = Deployment.of(toy_model, ["mnet@n1"])
        base = utility(toy_model, deployment.monitor_ids, WEIGHTS)
        for v in add_one_in(toy_model, deployment, WEIGHTS):
            expected = (
                utility(toy_model, deployment.monitor_ids | {v.monitor_id}, WEIGHTS) - base
            )
            assert v.value == pytest.approx(expected)

    def test_full_deployment_nothing_to_add(self, toy_model):
        assert add_one_in(toy_model, Deployment.full(toy_model), WEIGHTS) == []


class TestShapley:
    def test_efficiency_axiom(self, toy_model):
        """Shapley values sum to the deployment's total utility."""
        deployment = Deployment.full(toy_model)
        values = shapley_values(toy_model, deployment, WEIGHTS, samples=300, seed=1)
        total = sum(v.value for v in values)
        assert total == pytest.approx(utility(toy_model, deployment.monitor_ids, WEIGHTS))

    def test_deterministic_per_seed(self, toy_model):
        deployment = Deployment.full(toy_model)
        a = shapley_values(toy_model, deployment, WEIGHTS, samples=50, seed=3)
        b = shapley_values(toy_model, deployment, WEIGHTS, samples=50, seed=3)
        assert [(v.monitor_id, v.value) for v in a] == [(v.monitor_id, v.value) for v in b]

    def test_shapley_at_least_leave_one_out(self, toy_model):
        """For a monotone (submodular) utility, Shapley credit for each
        monitor is at least its leave-one-out value."""
        deployment = Deployment.full(toy_model)
        loo = {v.monitor_id: v.value for v in leave_one_out(toy_model, deployment, WEIGHTS)}
        for v in shapley_values(toy_model, deployment, WEIGHTS, samples=400, seed=0):
            assert v.value >= loo[v.monitor_id] - 0.02  # sampling tolerance

    def test_empty_deployment(self, toy_model):
        assert shapley_values(toy_model, Deployment.empty(toy_model), WEIGHTS) == []

    def test_invalid_samples(self, toy_model):
        with pytest.raises(MetricError):
            shapley_values(toy_model, Deployment.full(toy_model), samples=0)


class TestValuePerCost:
    def test_finite_ratio(self, toy_model):
        deployment = Deployment.of(toy_model, ["mnet@n1"])
        (value,) = leave_one_out(toy_model, deployment, WEIGHTS)
        assert value.value_per_cost == pytest.approx(value.value / 6.0)

    def test_report_renders(self, toy_model):
        text = contribution_report(
            toy_model, Deployment.full(toy_model), WEIGHTS, shapley_samples=50
        )
        assert "Monitor contributions" in text
        assert "mnet@n1" in text
