"""Tests for failure-robustness analysis."""

import pytest

from repro.analysis.robustness import (
    expected_utility_under_failures,
    robustness_curve,
    worst_case_utility,
)
from repro.errors import MetricError
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.deployment import Deployment

WEIGHTS = UtilityWeights()


class TestExpectedUtility:
    def test_zero_rate_equals_utility(self, toy_model):
        deployment = Deployment.full(toy_model)
        assert expected_utility_under_failures(
            toy_model, deployment, 0.0, WEIGHTS
        ) == pytest.approx(utility(toy_model, deployment.monitor_ids, WEIGHTS))

    def test_rate_one_kills_everything(self, toy_model):
        deployment = Deployment.full(toy_model)
        assert expected_utility_under_failures(
            toy_model, deployment, 1.0, WEIGHTS, samples=20, seed=0
        ) == pytest.approx(0.0)

    def test_monotone_in_failure_rate(self, toy_model):
        deployment = Deployment.full(toy_model)
        values = [
            expected_utility_under_failures(
                toy_model, deployment, rate, WEIGHTS, samples=300, seed=1
            )
            for rate in (0.0, 0.2, 0.5, 0.8)
        ]
        assert values == sorted(values, reverse=True)

    def test_deterministic_per_seed(self, toy_model):
        deployment = Deployment.full(toy_model)
        a = expected_utility_under_failures(toy_model, deployment, 0.3, samples=50, seed=9)
        b = expected_utility_under_failures(toy_model, deployment, 0.3, samples=50, seed=9)
        assert a == b

    def test_invalid_inputs(self, toy_model):
        deployment = Deployment.full(toy_model)
        with pytest.raises(MetricError):
            expected_utility_under_failures(toy_model, deployment, -0.1)
        with pytest.raises(MetricError):
            expected_utility_under_failures(toy_model, deployment, 0.5, samples=0)


class TestWorstCase:
    def test_k_zero_is_base_utility(self, toy_model):
        deployment = Deployment.full(toy_model)
        value, disabled = worst_case_utility(toy_model, deployment, 0, WEIGHTS)
        assert disabled == frozenset()
        assert value == pytest.approx(utility(toy_model, deployment.monitor_ids, WEIGHTS))

    def test_exact_adversary_on_toy(self, toy_model):
        """k=1 worst case: brute-force agrees with the function."""
        deployment = Deployment.full(toy_model)
        expected = min(
            utility(toy_model, deployment.monitor_ids - {m}, WEIGHTS)
            for m in deployment.monitor_ids
        )
        value, disabled = worst_case_utility(toy_model, deployment, 1, WEIGHTS)
        assert value == pytest.approx(expected)
        assert len(disabled) == 1

    def test_k_at_least_size_gives_zero(self, toy_model):
        deployment = Deployment.full(toy_model)
        value, disabled = worst_case_utility(toy_model, deployment, 100, WEIGHTS)
        assert value == 0.0
        assert disabled == deployment.monitor_ids

    def test_disabled_set_achieves_reported_value(self, toy_model):
        deployment = Deployment.full(toy_model)
        value, disabled = worst_case_utility(toy_model, deployment, 2, WEIGHTS)
        assert utility(
            toy_model, deployment.monitor_ids - disabled, WEIGHTS
        ) == pytest.approx(value)

    def test_negative_k_rejected(self, toy_model):
        with pytest.raises(MetricError):
            worst_case_utility(toy_model, Deployment.full(toy_model), -1)

    def test_greedy_fallback_on_large_deployment(self, web_model):
        deployment = Deployment.full(web_model)  # C(51, 3) > exact limit
        value, disabled = worst_case_utility(web_model, deployment, 3, WEIGHTS)
        assert len(disabled) == 3
        assert 0.0 <= value <= deployment.utility(WEIGHTS)


class TestRobustnessCurve:
    def test_non_increasing(self, toy_model):
        deployment = Deployment.full(toy_model)
        curve = robustness_curve(toy_model, deployment, 3, WEIGHTS)
        values = [v for _, v in curve]
        assert values == sorted(values, reverse=True)
        assert [k for k, _ in curve] == [0, 1, 2, 3]

    def test_redundant_deployment_degrades_slower(self, toy_model):
        """The redundancy story: a corroborated deployment loses less
        from one failure than a minimal one of equal coverage."""
        minimal = Deployment.of(toy_model, ["mlog@h1", "mdb@h2"])  # one source per event
        redundant = Deployment.of(toy_model, ["mlog@h1", "mdb@h2", "mnet@n1"])
        w = UtilityWeights.coverage_only()
        minimal_drop = (
            utility(toy_model, minimal.monitor_ids, w)
            - worst_case_utility(toy_model, minimal, 1, w)[0]
        )
        redundant_drop = (
            utility(toy_model, redundant.monitor_ids, w)
            - worst_case_utility(toy_model, redundant, 1, w)[0]
        )
        assert redundant_drop < minimal_drop
