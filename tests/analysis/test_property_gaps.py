"""Property-based invariants of gap analysis on random models."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.casestudy import synthetic_model
from repro.analysis.gaps import find_gaps
from repro.metrics.coverage import event_coverage
from repro.optimize.deployment import Deployment

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def gaps_case(draw):
    model = synthetic_model(
        assets=5,
        data_types=4,
        monitor_types=3,
        monitors=draw(st.integers(3, 12)),
        attacks=draw(st.integers(1, 5)),
        events=draw(st.integers(3, 8)),
        seed=draw(st.integers(0, 3_000)),
    )
    monitor_ids = sorted(model.monitors)
    deployed = frozenset(m for m in monitor_ids if draw(st.booleans()))
    threshold = draw(st.floats(0.1, 1.0))
    return model, Deployment.of(model, deployed), threshold


@given(gaps_case())
@settings(**SETTINGS)
def test_gaps_are_below_threshold(case):
    model, deployment, threshold = case
    for gap in find_gaps(model, deployment, threshold=threshold):
        assert gap.current_coverage < threshold
        assert gap.current_coverage == event_coverage(
            model, deployment.monitor_ids, gap.event_id
        )


@given(gaps_case())
@settings(**SETTINGS)
def test_fixes_strictly_improve_and_are_undeployed(case):
    model, deployment, threshold = case
    for gap in find_gaps(model, deployment, threshold=threshold):
        for fix in gap.fixes:
            assert fix.monitor_id not in deployment.monitor_ids
            assert fix.new_coverage > gap.current_coverage
            # Applying the fix really achieves the promised coverage.
            achieved = event_coverage(
                model, deployment.monitor_ids | {fix.monitor_id}, gap.event_id
            )
            assert achieved >= fix.new_coverage - 1e-12


@given(gaps_case())
@settings(**SETTINGS)
def test_gap_events_belong_to_attacks(case):
    model, deployment, threshold = case
    for gap in find_gaps(model, deployment, threshold=threshold):
        assert gap.attacks
        assert gap.attacks == model.attacks_using_event(gap.event_id)


@given(gaps_case())
@settings(**SETTINGS)
def test_full_deployment_leaves_only_unfixable_gaps(case):
    model, _, threshold = case
    for gap in find_gaps(model, Deployment.full(model), threshold=threshold):
        assert not gap.fixes  # nothing left to deploy
