"""Tests for deployment comparison."""

import pytest

from repro.analysis.comparison import compare_deployments
from repro.errors import OptimizationError
from repro.metrics.utility import UtilityWeights
from repro.optimize.deployment import Deployment


@pytest.fixture()
def pair(toy_model):
    a = Deployment.of(toy_model, ["mnet@n1"])
    b = Deployment.of(toy_model, ["mlog@h1", "mdb@h2"])
    return a, b


class TestDiff:
    def test_set_diff(self, pair):
        comparison = compare_deployments(*pair)
        assert comparison.added == frozenset({"mlog@h1", "mdb@h2"})
        assert comparison.removed == frozenset({"mnet@n1"})
        assert comparison.kept == frozenset()
        assert comparison.churn == 3

    def test_identity_comparison(self, toy_model):
        d = Deployment.full(toy_model)
        comparison = compare_deployments(d, d)
        assert comparison.churn == 0
        assert comparison.utility_delta == 0.0
        assert not comparison.regressions()

    def test_cost_delta(self, pair):
        a, b = pair
        comparison = compare_deployments(a, b)
        # A: mnet cpu 4, network 2.  B: mlog@h1 + mdb@h2 -> cpu 5, storage 1.
        assert comparison.cost_delta == {
            "cpu": pytest.approx(1.0),
            "network": pytest.approx(-2.0),
            "storage": pytest.approx(1.0),
        }

    def test_different_models_rejected(self, toy_model):
        from tests.conftest import build_toy_builder

        other = build_toy_builder().build()
        with pytest.raises(OptimizationError):
            compare_deployments(Deployment.full(toy_model), Deployment.full(other))


class TestMetrics:
    def test_metric_deltas_match_breakdowns(self, toy_model, pair):
        from repro.metrics.utility import utility_breakdown

        a, b = pair
        comparison = compare_deployments(a, b, UtilityWeights())
        assert comparison.metric_a == utility_breakdown(toy_model, a.monitor_ids)
        assert comparison.metric_b == utility_breakdown(toy_model, b.monitor_ids)
        assert comparison.utility_delta == pytest.approx(
            comparison.metric_b["utility"] - comparison.metric_a["utility"]
        )

    def test_attack_deltas_cover_all_attacks(self, toy_model, pair):
        comparison = compare_deployments(*pair)
        assert {d.attack_id for d in comparison.attack_deltas} == set(toy_model.attacks)

    def test_regressions_detected(self, toy_model):
        strong = Deployment.of(toy_model, ["mlog@h1", "mdb@h2"])  # e1 at 1.0
        weak = Deployment.of(toy_model, ["mnet@n1"])  # e1 at 0.5
        comparison = compare_deployments(strong, weak)
        regressions = comparison.regressions()
        assert regressions
        assert all(d.delta < 0 for d in regressions)
        # Worst regression first.
        deltas = [d.delta for d in regressions]
        assert deltas == sorted(deltas)


class TestText:
    def test_renders_sections(self, pair):
        text = compare_deployments(*pair).to_text()
        assert "Deployment comparison" in text
        assert "+ mlog@h1" in text
        assert "- mnet@n1" in text
        assert "Attack coverage movements" in text

    def test_no_change_render(self, toy_model):
        d = Deployment.full(toy_model)
        text = compare_deployments(d, d).to_text()
        assert "(none)" in text
        assert "(no coverage changes)" in text
