"""Tests for deployment evaluation reports."""

import pytest

from repro.analysis.evaluation import evaluate_deployment
from repro.metrics.coverage import overall_coverage
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.deployment import Deployment

NET_ONLY = ["mnet@n1"]


class TestReportValues:
    def test_aggregates_match_metrics(self, toy_model):
        deployment = Deployment.of(toy_model, NET_ONLY)
        report = evaluate_deployment(toy_model, deployment)
        assert report.utility == pytest.approx(utility(toy_model, NET_ONLY))
        assert report.coverage == pytest.approx(overall_coverage(toy_model, NET_ONLY))

    def test_per_attack_assessments(self, toy_model):
        report = evaluate_deployment(toy_model, Deployment.of(toy_model, NET_ONLY))
        by_id = {a.attack_id: a for a in report.attacks}
        assert set(by_id) == {"A", "B"}
        assert by_id["A"].coverage == pytest.approx(0.45)
        assert by_id["A"].fully_covered  # e1 and e2 both covered (weakly)
        assert by_id["A"].detectable

    def test_counts(self, toy_model):
        report = evaluate_deployment(toy_model, Deployment.of(toy_model, ["mlog@h2"]))
        # mlog@h2 covers only e3 (optional step of B).
        assert report.detectable_count == 1
        assert report.fully_covered_count == 0

    def test_cost_reported(self, toy_model):
        report = evaluate_deployment(toy_model, Deployment.of(toy_model, NET_ONLY))
        assert report.cost == {"cpu": 4, "network": 2}

    def test_no_campaign_by_default(self, toy_model):
        report = evaluate_deployment(toy_model, Deployment.of(toy_model, NET_ONLY))
        assert report.campaign is None


class TestSimulatedReport:
    def test_campaign_attached(self, toy_model):
        report = evaluate_deployment(
            toy_model,
            Deployment.full(toy_model),
            simulate=True,
            repetitions=3,
            seed=5,
        )
        assert report.campaign is not None
        assert len(report.campaign.runs) == 3 * len(toy_model.attacks)

    def test_simulation_deterministic(self, toy_model):
        kwargs = dict(simulate=True, repetitions=3, seed=5)
        a = evaluate_deployment(toy_model, Deployment.full(toy_model), **kwargs)
        b = evaluate_deployment(toy_model, Deployment.full(toy_model), **kwargs)
        assert a.campaign.detection_rate == b.campaign.detection_rate


class TestTextRendering:
    def test_contains_sections(self, toy_model):
        report = evaluate_deployment(toy_model, Deployment.of(toy_model, NET_ONLY))
        text = report.to_text()
        assert "Deployment report" in text
        assert "Per-attack assessment" in text
        assert "Cost" in text

    def test_simulated_section_when_present(self, toy_model):
        report = evaluate_deployment(
            toy_model, Deployment.full(toy_model), simulate=True, repetitions=2, seed=1
        )
        assert "Simulated campaign" in report.to_text()

    def test_custom_weights_respected(self, toy_model):
        weights = UtilityWeights.coverage_only()
        report = evaluate_deployment(toy_model, Deployment.of(toy_model, NET_ONLY), weights)
        assert report.utility == pytest.approx(report.coverage)
