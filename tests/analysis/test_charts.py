"""Tests for ASCII chart rendering."""

import pytest

from repro.analysis.charts import render_chart


SERIES = {"a": [(0.0, 0.0), (1.0, 1.0)], "b": [(0.0, 1.0), (1.0, 0.0)]}


class TestRenderChart:
    def test_title_and_labels(self):
        chart = render_chart(SERIES, title="T", x_label="xx", y_label="yy")
        assert chart.splitlines()[0] == "T"
        assert "xx" in chart
        assert "yy" in chart

    def test_legend_lists_all_series(self):
        chart = render_chart(SERIES)
        assert "* a" in chart
        assert "o b" in chart

    def test_glyphs_plotted(self):
        chart = render_chart({"only": [(0.0, 0.0), (1.0, 1.0)]})
        plot_lines = [line for line in chart.splitlines() if "|" in line]
        assert any("*" in line for line in plot_lines)

    def test_corner_placement(self):
        chart = render_chart({"s": [(0.0, 1.0), (1.0, 0.0)]}, width=20, height=5)
        plot_rows = [line for line in chart.splitlines() if "|" in line]
        # the (min x, max y) point lands in the top-left grid cell,
        # the (max x, min y) point in the bottom-right one
        assert plot_rows[0].split("|", 1)[1][0] == "*"
        assert plot_rows[-1].split("|", 1)[1][19] == "*"

    def test_axis_ticks(self):
        chart = render_chart({"s": [(2.0, 10.0), (8.0, 30.0)]})
        assert "30" in chart
        assert "10" in chart
        assert "2" in chart
        assert "8" in chart

    def test_empty_series(self):
        chart = render_chart({}, title="nothing")
        assert "(no data)" in chart

    def test_constant_series_does_not_crash(self):
        chart = render_chart({"flat": [(0.0, 0.5), (1.0, 0.5)]})
        assert "*" in chart

    def test_single_point(self):
        chart = render_chart({"dot": [(3.0, 7.0)]})
        assert "*" in chart

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            render_chart(SERIES, width=5)
        with pytest.raises(ValueError):
            render_chart(SERIES, height=2)

    def test_deterministic(self):
        assert render_chart(SERIES) == render_chart(SERIES)

    def test_width_respected(self):
        chart = render_chart(SERIES, width=30, height=6)
        plot_lines = [line for line in chart.splitlines() if "|" in line]
        for line in plot_lines:
            assert len(line.split("|", 1)[1]) <= 30
