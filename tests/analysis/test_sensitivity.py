"""Tests for weight-sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import jaccard, weight_sensitivity
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights


class TestJaccard:
    def test_identical(self):
        assert jaccard(frozenset({"a"}), frozenset({"a"})) == 1.0

    def test_disjoint(self):
        assert jaccard(frozenset({"a"}), frozenset({"b"})) == 0.0

    def test_partial(self):
        assert jaccard(frozenset({"a", "b"}), frozenset({"b", "c"})) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard(frozenset(), frozenset()) == 1.0


class TestWeightSensitivity:
    def test_points_per_weighting(self, toy_model):
        budget = Budget.of(cpu=6)
        weightings = [UtilityWeights.tradeoff(lam) for lam in (0.0, 0.5, 1.0)]
        points = weight_sensitivity(toy_model, budget, weightings)
        assert len(points) == 3
        for point, weights in zip(points, weightings):
            assert point.weights is weights
            assert 0.0 <= point.similarity_to_baseline <= 1.0

    def test_baseline_similarity_is_one_for_baseline_weights(self, toy_model):
        budget = Budget.of(cpu=6)
        baseline = UtilityWeights()
        points = weight_sensitivity(toy_model, budget, [baseline], baseline=baseline)
        assert points[0].similarity_to_baseline == 1.0

    def test_components_reported(self, toy_model):
        budget = Budget.of(cpu=100)
        (point,) = weight_sensitivity(toy_model, budget, [UtilityWeights()])
        assert point.coverage > 0
        assert point.utility == pytest.approx(
            UtilityWeights().coverage * point.coverage
            + UtilityWeights().redundancy * point.redundancy
            + UtilityWeights().richness * point.richness
        )
