"""Tests for coverage-gap analysis."""

import pytest

from repro.analysis.gaps import find_gaps, gap_report
from repro.optimize.deployment import Deployment


class TestFindGaps:
    def test_empty_deployment_all_events_gap(self, toy_model):
        gaps = find_gaps(toy_model, Deployment.empty(toy_model))
        assert {g.event_id for g in gaps} == {"e1", "e2", "e3"}
        assert all(g.is_blind_spot for g in gaps)

    def test_full_deployment_weak_events_only(self, toy_model):
        # Full coverage: e1=1.0, e2=0.8, e3=0.6; threshold 0.5 -> none.
        gaps = find_gaps(toy_model, Deployment.full(toy_model), threshold=0.5)
        assert gaps == []

    def test_threshold_controls_weak_gaps(self, toy_model):
        gaps = find_gaps(toy_model, Deployment.full(toy_model), threshold=0.7)
        assert {g.event_id for g in gaps} == {"e3"}
        assert not gaps[0].is_blind_spot

    def test_fixes_ranked_by_value_per_cost(self, toy_model):
        gaps = find_gaps(toy_model, Deployment.empty(toy_model))
        e1 = next(g for g in gaps if g.event_id == "e1")
        # e1 candidates: mlog@h1 (1.0 @ cost 3), mnet@n1 (0.5 @ cost 6)
        assert [f.monitor_id for f in e1.fixes] == ["mlog@h1", "mnet@n1"]
        assert e1.fixes[0].coverage_per_cost == pytest.approx(1.0 / 3)

    def test_fixes_exclude_deployed_and_weaker_monitors(self, toy_model):
        deployment = Deployment.of(toy_model, ["mnet@n1"])
        gaps = find_gaps(toy_model, deployment, threshold=0.9)
        e1 = next(g for g in gaps if g.event_id == "e1")
        # mnet already deployed (0.5); only the stronger mlog@h1 is a fix.
        assert [f.monitor_id for f in e1.fixes] == ["mlog@h1"]

    def test_uncoverable_event_has_no_fixes(self):
        from tests.conftest import build_toy_builder

        builder = build_toy_builder()
        builder.event("orphan", asset="h1")
        builder.attack("C", steps=["orphan"])
        model = builder.build()
        gaps = find_gaps(model, Deployment.full(model))
        orphan = next(g for g in gaps if g.event_id == "orphan")
        assert not orphan.fixable

    def test_events_without_attacks_skipped(self):
        from tests.conftest import build_toy_builder

        builder = build_toy_builder()
        builder.event("lonely", asset="h1")
        builder.evidence("dlog", "lonely")
        model = builder.build()
        gaps = find_gaps(model, Deployment.empty(model))
        assert "lonely" not in {g.event_id for g in gaps}

    def test_sorted_worst_first(self, toy_model):
        deployment = Deployment.of(toy_model, ["mnet@n1"])  # e3 blind, e1/e2 weak
        gaps = find_gaps(toy_model, deployment, threshold=0.9)
        coverages = [g.current_coverage for g in gaps]
        assert coverages == sorted(coverages)

    def test_attack_context(self, toy_model):
        gaps = find_gaps(toy_model, Deployment.empty(toy_model))
        e2 = next(g for g in gaps if g.event_id == "e2")
        assert e2.attacks == frozenset({"A", "B"})
        assert e2.max_importance == 1.0


class TestGapReport:
    def test_report_lists_gaps_and_fixes(self, toy_model):
        text = gap_report(toy_model, Deployment.empty(toy_model))
        assert "blind spots" in text
        assert "mlog@h1" in text

    def test_clean_deployment_reports_none(self, toy_model):
        text = gap_report(toy_model, Deployment.full(toy_model), threshold=0.5)
        assert "no gaps" in text.lower()

    def test_on_case_study(self, web_model):
        from repro.metrics.cost import Budget
        from repro.optimize.problem import MaxUtilityProblem

        tight = MaxUtilityProblem(web_model, Budget.fraction_of_total(web_model, 0.05)).solve()
        gaps = find_gaps(web_model, tight.deployment)
        assert gaps, "a 5% budget deployment must leave gaps"
        assert all(g.fixable for g in gaps), "case study has no uncoverable events"
