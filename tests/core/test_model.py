"""Tests for SystemModel: integrity checking and derived indices."""

import pytest

from repro.core import AssetKind, ModelBuilder
from repro.errors import UnknownIdError, ValidationError

from tests.conftest import build_toy_builder


class TestIntegrity:
    def test_monitor_with_unknown_type(self):
        builder = ModelBuilder()
        builder.asset("a")
        builder.monitor("ghost-type", "a")
        with pytest.raises(ValidationError, match="unknown type"):
            builder.build()

    def test_monitor_at_unknown_asset(self):
        builder = ModelBuilder()
        builder.asset("a")
        builder.data_type("d")
        builder.monitor_type("mt", data_types=["d"])
        builder.monitor("mt", "ghost")
        with pytest.raises(ValidationError, match="unknown asset"):
            builder.build()

    def test_monitor_at_incompatible_kind(self):
        builder = ModelBuilder()
        builder.asset("a", kind=AssetKind.SERVER)
        builder.data_type("d")
        builder.monitor_type("mt", data_types=["d"], deployable_kinds=[AssetKind.DATABASE])
        builder.monitor("mt", "a")
        with pytest.raises(ValidationError, match="not deployable"):
            builder.build()

    def test_monitor_type_with_unknown_data_type(self):
        builder = ModelBuilder()
        builder.asset("a")
        builder.monitor_type("mt", data_types=["ghost"])
        with pytest.raises(ValidationError, match="unknown data type"):
            builder.build()

    def test_event_at_unknown_asset(self):
        builder = ModelBuilder()
        builder.asset("a")
        builder.event("e", asset="ghost")
        with pytest.raises(ValidationError, match="unknown asset"):
            builder.build()

    def test_evidence_with_unknown_refs(self):
        builder = ModelBuilder()
        builder.asset("a")
        builder.event("e", asset="a")
        builder.evidence("ghost-dt", "e")
        with pytest.raises(ValidationError, match="unknown data type"):
            builder.build()

    def test_evidence_with_unknown_field(self):
        builder = ModelBuilder()
        builder.asset("a")
        builder.data_type("d", fields=["f1"])
        builder.event("e", asset="a")
        builder.evidence("d", "e", fields_used=["f1", "ghost"])
        with pytest.raises(ValidationError, match="absent from"):
            builder.build()

    def test_attack_with_unknown_event(self):
        builder = ModelBuilder()
        builder.asset("a")
        builder.attack("atk", steps=["ghost-event"])
        with pytest.raises(ValidationError, match="unknown event"):
            builder.build()

    def test_all_problems_reported_at_once(self):
        builder = ModelBuilder()
        builder.asset("a")
        builder.monitor("ghost-type", "a")
        builder.event("e", asset="ghost")
        with pytest.raises(ValidationError) as excinfo:
            builder.build()
        assert len(excinfo.value.problems) >= 2


class TestCoverageRelation:
    def test_monitors_for_event_host_scope(self, toy_model):
        providers = toy_model.monitors_for_event("e1")
        assert providers == {"mlog@h1": 1.0, "mnet@n1": 0.5}

    def test_network_scope_reaches_neighbors(self, toy_model):
        # mnet@n1 observes h2 through the n1--h2 link
        assert toy_model.monitors_for_event("e2") == {"mdb@h2": 0.8, "mnet@n1": 0.4}

    def test_host_monitor_does_not_reach_other_assets(self, toy_model):
        # mlog@h1 generates dlog, which evidences e3 at h2 — but cannot see h2
        assert "mlog@h1" not in toy_model.monitors_for_event("e3")
        assert toy_model.monitors_for_event("e3") == {"mlog@h2": 0.6}

    def test_events_for_monitor_is_transpose(self, toy_model):
        for monitor_id in toy_model.monitors:
            for event_id, weight in toy_model.events_for_monitor(monitor_id).items():
                assert toy_model.monitors_for_event(event_id)[monitor_id] == weight

    def test_evidencing_data_types(self, toy_model):
        assert toy_model.evidencing_data_types("mnet@n1", "e1") == frozenset({"dnet"})
        assert toy_model.evidencing_data_types("mnet@n1", "e3") == frozenset()

    def test_unknown_ids_raise(self, toy_model):
        with pytest.raises(UnknownIdError):
            toy_model.monitors_for_event("ghost")
        with pytest.raises(UnknownIdError):
            toy_model.events_for_monitor("ghost")
        with pytest.raises(UnknownIdError):
            toy_model.evidencing_data_types("ghost", "e1")


class TestAttackIndices:
    def test_attacks_using_event(self, toy_model):
        assert toy_model.attacks_using_event("e1") == frozenset({"A"})
        assert toy_model.attacks_using_event("e2") == frozenset({"A", "B"})

    def test_coverable_events(self, toy_model):
        assert toy_model.coverable_events() == frozenset({"e1", "e2", "e3"})

    def test_uncovered_event_excluded(self):
        builder = build_toy_builder()
        builder.event("orphan", asset="h1")
        model = builder.build()
        assert "orphan" not in model.coverable_events()


class TestCosts:
    def test_monitor_cost(self, toy_model):
        assert toy_model.monitor_cost("mnet@n1").as_dict() == {"cpu": 4, "network": 2}

    def test_deployment_cost_sums(self, toy_model):
        cost = toy_model.deployment_cost(["mlog@h1", "mdb@h2"])
        assert cost.as_dict() == {"cpu": 5, "storage": 1}

    def test_total_cost(self, toy_model):
        total = toy_model.total_cost()
        assert total.get("cpu") == 2 + 2 + 4 + 3
        assert total.get("storage") == 2
        assert total.get("network") == 2


class TestFields:
    def test_max_fields_for_event(self, toy_model):
        assert toy_model.max_fields_for_event("e1") == frozenset({"f1", "f2", "f3"})

    def test_fields_for_event_subset(self, toy_model):
        assert toy_model.fields_for_event("e1", ["mnet@n1"]) == frozenset({"f2", "f3"})
        assert toy_model.fields_for_event("e1", []) == frozenset()

    def test_evidence_fields_defaults_to_all(self, toy_model):
        assert toy_model.evidence_fields("dlog", "e1") == frozenset({"f1", "f2"})

    def test_evidence_fields_respects_restriction(self):
        builder = build_toy_builder()
        builder.event("e4", asset="h1")
        builder.evidence("dlog", "e4", fields_used=["f1"])
        model = builder.build()
        assert model.evidence_fields("dlog", "e4") == frozenset({"f1"})

    def test_no_evidence_pair_returns_empty(self, toy_model):
        assert toy_model.evidence_fields("ddb", "e1") == frozenset()


class TestStats:
    def test_stats_counts(self, toy_model):
        stats = toy_model.stats()
        assert stats == {
            "assets": 3,
            "links": 2,
            "data_types": 3,
            "monitor_types": 3,
            "monitors": 4,
            "events": 3,
            "evidence": 5,
            "attacks": 2,
        }

    def test_repr_mentions_counts(self, toy_model):
        assert "4 monitors" in repr(toy_model)
