"""Tests for JSON serialization round-trips."""

import json

import pytest

from repro.core import load_model, model_from_dict, model_to_dict, save_model
from repro.core.serialization import FORMAT_VERSION
from repro.errors import SerializationError


def assert_models_equal(a, b):
    """Structural equality through the canonical dict form."""
    assert model_to_dict(a) == model_to_dict(b)


class TestRoundTrip:
    def test_toy_round_trip(self, toy_model):
        assert_models_equal(toy_model, model_from_dict(model_to_dict(toy_model)))

    def test_web_model_round_trip(self, web_model):
        assert_models_equal(web_model, model_from_dict(model_to_dict(web_model)))

    def test_round_trip_preserves_indices(self, toy_model):
        clone = model_from_dict(model_to_dict(toy_model))
        for event_id in toy_model.events:
            assert clone.monitors_for_event(event_id) == toy_model.monitors_for_event(event_id)
        for monitor_id in toy_model.monitors:
            assert clone.monitor_cost(monitor_id).as_dict() == toy_model.monitor_cost(
                monitor_id
            ).as_dict()

    def test_file_round_trip(self, toy_model, tmp_path):
        path = tmp_path / "model.json"
        save_model(toy_model, path)
        assert_models_equal(toy_model, load_model(path))

    def test_document_is_plain_json(self, toy_model):
        json.dumps(model_to_dict(toy_model))  # must not raise

    def test_non_finite_field_saves_as_strict_json(self, tmp_path):
        # Regression: save_model used to call raw json.dumps, which writes
        # an `Infinity` token no spec-compliant parser accepts.  It now
        # routes through jsonsafe, which sanitizes non-finite floats.
        model = model_from_dict(
            {
                "name": "non-finite",
                "data_types": [{"id": "d", "volume_hint": float("inf")}],
            }
        )
        path = tmp_path / "model.json"
        save_model(model, path)
        text = path.read_text()
        assert "Infinity" not in text and "NaN" not in text

        def reject(token):
            raise AssertionError(f"non-strict JSON token {token!r} in output")

        document = json.loads(text, parse_constant=reject)
        assert document["data_types"][0]["volume_hint"] is None


class TestMalformed:
    def test_unsupported_version(self, toy_model):
        document = model_to_dict(toy_model)
        document["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(SerializationError, match="version"):
            model_from_dict(document)

    def test_missing_required_key(self):
        with pytest.raises(SerializationError, match="malformed"):
            model_from_dict({"assets": [{"name": "no-id"}]})

    def test_dangling_reference_surfaces_as_validation_error(self, toy_model):
        # Structurally valid JSON with broken cross-references fails model
        # validation (not parsing), with the full problem list preserved.
        from repro.errors import ValidationError

        document = model_to_dict(toy_model)
        document["monitors"][0]["asset"] = "ghost"
        with pytest.raises(ValidationError, match="unknown asset"):
            model_from_dict(document)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError, match="invalid JSON"):
            load_model(path)

    def test_bad_enum_value(self, toy_model):
        document = model_to_dict(toy_model)
        document["assets"][0]["kind"] = "flying-saucer"
        with pytest.raises(SerializationError):
            model_from_dict(document)


class TestDefaults:
    def test_minimal_document(self):
        model = model_from_dict({"name": "empty"})
        assert model.name == "empty"
        assert model.stats()["assets"] == 0

    def test_defaults_fill_in(self):
        model = model_from_dict(
            {
                "assets": [{"id": "a"}],
                "data_types": [{"id": "d"}],
                "monitor_types": [{"id": "mt", "data_types": ["d"]}],
                "monitors": [{"id": "m", "type": "mt", "asset": "a"}],
                "events": [{"id": "e", "asset": "a"}],
                "evidence": [{"data_type": "d", "event": "e"}],
                "attacks": [{"id": "atk", "steps": [{"event": "e"}]}],
            }
        )
        assert model.monitor_type("mt").quality == 0.95
        assert model.attack("atk").importance == 1.0
        assert model.evidence[0].weight == 1.0
