"""Tests for assets, links, and the topology graph."""

import pytest

from repro.core.assets import Asset, AssetKind, Link, Topology
from repro.errors import DuplicateIdError, UnknownIdError


def make_asset(asset_id="a1", kind=AssetKind.HOST, **kwargs):
    return Asset(asset_id=asset_id, name=asset_id, kind=kind, **kwargs)


class TestAsset:
    def test_basic_construction(self):
        asset = make_asset("web-1", AssetKind.SERVER, zone="dmz", criticality=0.8)
        assert asset.asset_id == "web-1"
        assert asset.kind is AssetKind.SERVER
        assert asset.zone == "dmz"

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError, match="asset_id"):
            make_asset("")

    @pytest.mark.parametrize("bad", [-0.1, 1.1, 5.0])
    def test_criticality_out_of_range_rejected(self, bad):
        with pytest.raises(ValueError, match="criticality"):
            make_asset(criticality=bad)

    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_criticality_boundaries_accepted(self, ok):
        assert make_asset(criticality=ok).criticality == ok

    def test_tags(self):
        asset = make_asset(tags=frozenset({"os:linux", "pci"}))
        assert asset.has_tag("pci")
        assert not asset.has_tag("os:windows")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_asset().zone = "x"


class TestAssetKind:
    def test_network_fabric_kinds(self):
        assert AssetKind.FIREWALL.is_network_fabric()
        assert AssetKind.LOAD_BALANCER.is_network_fabric()
        assert AssetKind.NETWORK_DEVICE.is_network_fabric()

    def test_host_kinds_are_not_fabric(self):
        assert not AssetKind.SERVER.is_network_fabric()
        assert not AssetKind.DATABASE.is_network_fabric()
        assert not AssetKind.EXTERNAL.is_network_fabric()


class TestLink:
    def test_endpoints_unordered(self):
        link = Link("a", "b")
        assert link.endpoints == frozenset({"a", "b"})

    def test_self_link_rejected(self):
        with pytest.raises(ValueError, match="self-link"):
            Link("a", "a")

    def test_other_endpoint(self):
        link = Link("a", "b")
        assert link.other("a") == "b"
        assert link.other("b") == "a"

    def test_other_rejects_non_endpoint(self):
        with pytest.raises(ValueError):
            Link("a", "b").other("c")


class TestTopology:
    @pytest.fixture()
    def topo(self):
        t = Topology()
        t.add_asset(make_asset("a", AssetKind.SERVER))
        t.add_asset(make_asset("b", AssetKind.DATABASE))
        t.add_asset(make_asset("c", AssetKind.NETWORK_DEVICE))
        t.add_link("c", "a")
        t.add_link("c", "b")
        return t

    def test_contains_and_len(self, topo):
        assert "a" in topo
        assert "zzz" not in topo
        assert len(topo) == 3

    def test_duplicate_asset_rejected(self, topo):
        with pytest.raises(DuplicateIdError):
            topo.add_asset(make_asset("a"))

    def test_link_requires_existing_assets(self, topo):
        with pytest.raises(UnknownIdError):
            topo.add_link("a", "nope")

    def test_asset_lookup(self, topo):
        assert topo.asset("a").kind is AssetKind.SERVER
        with pytest.raises(UnknownIdError):
            topo.asset("nope")

    def test_neighbors(self, topo):
        assert topo.neighbors("c") == frozenset({"a", "b"})
        assert topo.neighbors("a") == frozenset({"c"})
        with pytest.raises(UnknownIdError):
            topo.neighbors("nope")

    def test_assets_of_kind(self, topo):
        assert [a.asset_id for a in topo.assets_of_kind(AssetKind.SERVER)] == ["a"]
        assert topo.assets_of_kind(AssetKind.WORKSTATION) == []

    def test_assets_in_zone(self):
        t = Topology()
        t.add_asset(make_asset("x", zone="dmz"))
        t.add_asset(make_asset("y", zone="internal"))
        assert [a.asset_id for a in t.assets_in_zone("dmz")] == ["x"]

    def test_host_observation_domain_is_self(self, topo):
        assert topo.observation_domain("a", network_scope=False) == frozenset({"a"})

    def test_network_observation_domain_includes_neighbors(self, topo):
        assert topo.observation_domain("c", network_scope=True) == frozenset({"a", "b", "c"})

    def test_observation_domain_unknown_asset(self, topo):
        with pytest.raises(UnknownIdError):
            topo.observation_domain("nope", network_scope=True)

    def test_connected_components_single(self, topo):
        assert topo.connected_components() == [frozenset({"a", "b", "c"})]

    def test_connected_components_disconnected(self, topo):
        topo.add_asset(make_asset("island"))
        components = topo.connected_components()
        assert len(components) == 2
        assert frozenset({"island"}) in components

    def test_asset_ids_insertion_order(self, topo):
        assert topo.asset_ids() == ["a", "b", "c"]

    def test_links_listing(self, topo):
        assert len(topo.links) == 2
        assert topo.links[0].endpoints == frozenset({"c", "a"})
