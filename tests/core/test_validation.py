"""Tests for semantic model audits."""


from repro.core import AssetKind
from repro.core.validation import Severity, audit_model

from tests.conftest import build_toy_builder


def codes(findings):
    return {f.code for f in findings}


class TestAudit:
    def test_clean_toy_model_has_no_warnings(self, toy_model):
        findings = audit_model(toy_model)
        assert not [f for f in findings if f.severity is Severity.WARNING]

    def test_uncoverable_event_flagged(self):
        builder = build_toy_builder()
        builder.event("orphan", asset="h1")
        builder.attack("C", steps=["orphan"])
        findings = audit_model(builder.build())
        assert "uncoverable-event" in codes(findings)
        assert "uncoverable-attack" in codes(findings)

    def test_optional_uncoverable_step_not_an_attack_problem(self):
        from repro.core import AttackStep

        builder = build_toy_builder()
        builder.event("orphan", asset="h1")
        builder.attack("C", steps=[AttackStep("e1"), AttackStep("orphan", required=False)])
        findings = audit_model(builder.build())
        assert "uncoverable-event" in codes(findings)
        assert "uncoverable-attack" not in codes(findings)

    def test_idle_monitor_flagged(self):
        builder = build_toy_builder()
        builder.data_type("dx")
        builder.monitor_type("mx", data_types=["dx"], cost={"cpu": 1})
        builder.monitor("mx", "h1")
        findings = audit_model(builder.build())
        idle = [f for f in findings if f.code == "idle-monitor"]
        assert any("mx@h1" in f.message for f in idle)

    def test_free_monitor_flagged(self):
        builder = build_toy_builder()
        builder.monitor_type("freebie", data_types=["dlog"])
        builder.monitor("freebie", "h1")
        findings = audit_model(builder.build())
        assert "free-monitor" in codes(findings)

    def test_disconnected_topology_flagged(self):
        builder = build_toy_builder()
        builder.asset("island", kind=AssetKind.HOST)
        findings = audit_model(builder.build())
        assert "disconnected-topology" in codes(findings)

    def test_unused_data_type_flagged(self):
        builder = build_toy_builder()
        builder.data_type("unused")
        findings = audit_model(builder.build())
        assert "unused-data-type" in codes(findings)

    def test_unused_event_flagged(self):
        builder = build_toy_builder()
        builder.event("lonely", asset="h1")
        builder.evidence("dlog", "lonely")
        findings = audit_model(builder.build())
        assert "unused-event" in codes(findings)

    def test_finding_str_format(self):
        builder = build_toy_builder()
        builder.data_type("unused")
        findings = audit_model(builder.build())
        rendered = [str(f) for f in findings]
        assert any(r.startswith("[info] unused-data-type:") for r in rendered)

    def test_web_model_audit_is_warning_bounded(self, web_model):
        # The case study deliberately contains idle monitors (deployable
        # but useless placements); it must not contain uncoverable attacks.
        findings = audit_model(web_model)
        assert "uncoverable-attack" not in codes(findings)
        assert "uncoverable-event" not in codes(findings)
