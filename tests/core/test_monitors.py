"""Tests for cost vectors, monitor types, and monitor instances."""

import pytest

from repro.core.assets import AssetKind
from repro.core.monitors import CostVector, Monitor, MonitorScope, MonitorType


class TestCostVector:
    def test_zero(self):
        assert CostVector.zero().is_zero()
        assert CostVector.zero().get("cpu") == 0.0

    def test_zero_entries_dropped(self):
        cv = CostVector({"cpu": 0.0, "storage": 2.0})
        assert cv.dimensions == frozenset({"storage"})

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="cpu"):
            CostVector({"cpu": -1})

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            CostVector({"cpu": float("inf")})
        with pytest.raises(ValueError):
            CostVector({"cpu": float("nan")})

    def test_addition_merges_dimensions(self):
        total = CostVector({"cpu": 1, "storage": 2}) + CostVector({"cpu": 3, "network": 4})
        assert total.as_dict() == {"cpu": 4, "storage": 2, "network": 4}

    def test_scaling(self):
        assert (CostVector({"cpu": 2}) * 2.5).get("cpu") == 5.0
        assert (2.5 * CostVector({"cpu": 2})).get("cpu") == 5.0

    def test_scaling_to_zero_empties(self):
        assert (CostVector({"cpu": 2}) * 0).is_zero()

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            CostVector({"cpu": 1}) * -1

    def test_total(self):
        vectors = [CostVector({"cpu": 1}), CostVector({"cpu": 2, "admin": 1})]
        assert CostVector.total(vectors).as_dict() == {"cpu": 3, "admin": 1}

    def test_total_empty(self):
        assert CostVector.total([]).is_zero()

    def test_uniform(self):
        cv = CostVector.uniform(2.0, ["a", "b"])
        assert cv.as_dict() == {"a": 2.0, "b": 2.0}

    def test_scalarize_unweighted(self):
        assert CostVector({"cpu": 1, "storage": 2}).scalarize() == 3.0

    def test_scalarize_weighted(self):
        cv = CostVector({"cpu": 1, "storage": 2})
        assert cv.scalarize({"cpu": 10}) == 10.0  # unweighted dims drop out

    def test_fits_within(self):
        budget = CostVector({"cpu": 5, "storage": 3})
        assert CostVector({"cpu": 5}).fits_within(budget)
        assert not CostVector({"cpu": 6}).fits_within(budget)
        assert not CostVector({"network": 0.1}).fits_within(budget)

    def test_fits_within_zero_budget(self):
        assert CostVector.zero().fits_within(CostVector.zero())
        assert not CostVector({"cpu": 1}).fits_within(CostVector.zero())


def make_type(**kwargs):
    defaults = dict(
        monitor_type_id="mt",
        name="mt",
        data_type_ids=("dt",),
        cost=CostVector({"cpu": 1}),
    )
    defaults.update(kwargs)
    return MonitorType(**defaults)


class TestMonitorType:
    def test_needs_data_types(self):
        with pytest.raises(ValueError, match="at least one data type"):
            make_type(data_type_ids=())

    def test_duplicate_data_types_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_type(data_type_ids=("dt", "dt"))

    @pytest.mark.parametrize("quality", [0.0, -0.1, 1.01])
    def test_quality_range(self, quality):
        with pytest.raises(ValueError, match="quality"):
            make_type(quality=quality)

    def test_deployable_anywhere_by_default(self):
        mt = make_type()
        assert mt.can_deploy_at_kind(AssetKind.SERVER)
        assert mt.can_deploy_at_kind(AssetKind.EXTERNAL)

    def test_deployable_kinds_restrict(self):
        mt = make_type(deployable_kinds=frozenset({AssetKind.DATABASE}))
        assert mt.can_deploy_at_kind(AssetKind.DATABASE)
        assert not mt.can_deploy_at_kind(AssetKind.SERVER)

    def test_default_scope_is_host(self):
        assert make_type().scope is MonitorScope.HOST


class TestMonitor:
    def test_effective_cost_scales(self):
        mt = make_type(cost=CostVector({"cpu": 4, "storage": 2}))
        monitor = Monitor("m", "mt", "a1", cost_multiplier=1.5)
        assert monitor.effective_cost(mt).as_dict() == {"cpu": 6.0, "storage": 3.0}

    def test_effective_cost_type_mismatch(self):
        other = make_type(monitor_type_id="other")
        with pytest.raises(ValueError, match="has type"):
            Monitor("m", "mt", "a1").effective_cost(other)

    def test_negative_multiplier_rejected(self):
        with pytest.raises(ValueError, match="cost_multiplier"):
            Monitor("m", "mt", "a1", cost_multiplier=-1)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Monitor("", "mt", "a1")
