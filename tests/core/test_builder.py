"""Tests for the fluent ModelBuilder."""

import pytest

from repro.core import AssetKind, AttackStep, ModelBuilder, MonitorScope
from repro.errors import DuplicateIdError, UnknownIdError


@pytest.fixture()
def builder():
    b = ModelBuilder("test")
    b.asset("a1", kind=AssetKind.SERVER)
    b.asset("a2", kind=AssetKind.DATABASE)
    b.link("a1", "a2")
    b.data_type("d1", fields=["f1"])
    b.monitor_type("mt1", data_types=["d1"], cost={"cpu": 1})
    return b


class TestFluency:
    def test_methods_chain(self):
        model = (
            ModelBuilder("chain")
            .asset("a")
            .data_type("d")
            .monitor_type("mt", data_types=["d"])
            .monitor("mt", "a")
            .event("e", asset="a")
            .evidence("d", "e")
            .attack("atk", steps=["e"])
            .build()
        )
        assert model.stats()["monitors"] == 1


class TestDuplicates:
    def test_duplicate_data_type(self, builder):
        with pytest.raises(DuplicateIdError):
            builder.data_type("d1")

    def test_duplicate_monitor_type(self, builder):
        with pytest.raises(DuplicateIdError):
            builder.monitor_type("mt1", data_types=["d1"])

    def test_duplicate_monitor(self, builder):
        builder.monitor("mt1", "a1")
        with pytest.raises(DuplicateIdError):
            builder.monitor("mt1", "a1")

    def test_duplicate_event(self, builder):
        builder.event("e", asset="a1")
        with pytest.raises(DuplicateIdError):
            builder.event("e", asset="a2")

    def test_duplicate_evidence(self, builder):
        builder.event("e", asset="a1")
        builder.evidence("d1", "e")
        with pytest.raises(DuplicateIdError):
            builder.evidence("d1", "e", 0.5)

    def test_duplicate_attack(self, builder):
        builder.event("e", asset="a1")
        builder.attack("atk", steps=["e"])
        with pytest.raises(DuplicateIdError):
            builder.attack("atk", steps=["e"])


class TestMonitorPlacement:
    def test_default_monitor_id(self, builder):
        builder.monitor("mt1", "a1")
        model_monitors = builder.build().monitors
        assert "mt1@a1" in model_monitors

    def test_explicit_monitor_id(self, builder):
        builder.monitor("mt1", "a1", monitor_id="custom")
        assert "custom" in builder.build().monitors

    def test_monitor_everywhere_respects_kinds(self):
        b = ModelBuilder()
        b.asset("s", kind=AssetKind.SERVER)
        b.asset("db", kind=AssetKind.DATABASE)
        b.data_type("d")
        b.monitor_type("mt", data_types=["d"], deployable_kinds=[AssetKind.DATABASE])
        b.monitor_everywhere("mt")
        monitors = b.build().monitors
        assert set(monitors) == {"mt@db"}

    def test_monitor_everywhere_unknown_type(self, builder):
        with pytest.raises(UnknownIdError):
            builder.monitor_everywhere("ghost")


class TestAttackSteps:
    def test_string_steps_normalized(self, builder):
        builder.event("e", asset="a1")
        builder.attack("atk", steps=["e"])
        attack = builder.build().attack("atk")
        assert attack.steps[0].weight == 1.0
        assert attack.steps[0].required

    def test_tuple_steps_normalized(self, builder):
        builder.event("e", asset="a1")
        builder.attack("atk", steps=[("e", 2.5)])
        assert builder.build().attack("atk").steps[0].weight == 2.5

    def test_attackstep_objects_passed_through(self, builder):
        builder.event("e", asset="a1")
        builder.attack("atk", steps=[AttackStep("e", weight=3.0, required=False)])
        step = builder.build().attack("atk").steps[0]
        assert step.weight == 3.0 and not step.required

    def test_mixed_step_forms(self, builder):
        builder.event("e1", asset="a1")
        builder.event("e2", asset="a2")
        builder.event("e3", asset="a1")
        builder.attack("atk", steps=["e1", ("e2", 2.0), AttackStep("e3", required=False)])
        assert builder.build().attack("atk").event_ids == ("e1", "e2", "e3")


class TestCostCoercion:
    def test_dict_cost_accepted(self, builder):
        builder.monitor_type("mt2", data_types=["d1"], cost={"storage": 3})
        builder.monitor("mt2", "a1")
        assert builder.build().monitor_cost("mt2@a1").get("storage") == 3

    def test_none_cost_is_zero(self, builder):
        builder.monitor_type("mt3", data_types=["d1"])
        builder.monitor("mt3", "a1")
        assert builder.build().monitor_cost("mt3@a1").is_zero()

    def test_scope_passed_through(self, builder):
        builder.monitor_type("mt4", data_types=["d1"], scope=MonitorScope.NETWORK)
        assert builder.build().monitor_type("mt4").scope is MonitorScope.NETWORK
