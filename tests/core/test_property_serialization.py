"""Property-based serialization tests: random models must round-trip."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.casestudy import synthetic_model
from repro.core import model_from_dict, model_to_dict

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def random_model(draw):
    assets = draw(st.integers(2, 10))
    monitor_types = draw(st.integers(1, 4))
    monitors = min(draw(st.integers(1, 12)), assets * monitor_types)
    return synthetic_model(
        assets=assets,
        data_types=draw(st.integers(1, 6)),
        monitor_types=monitor_types,
        monitors=monitors,
        attacks=draw(st.integers(1, 8)),
        events=draw(st.integers(1, 10)),
        network_monitor_fraction=draw(st.floats(0.0, 1.0)),
        seed=draw(st.integers(0, 100_000)),
    )


@given(random_model())
@settings(**SETTINGS)
def test_round_trip_is_identity_on_documents(model):
    document = model_to_dict(model)
    clone = model_from_dict(document)
    assert model_to_dict(clone) == document


@given(random_model())
@settings(**SETTINGS)
def test_round_trip_preserves_coverage_relation(model):
    clone = model_from_dict(model_to_dict(model))
    for event_id in model.events:
        assert clone.monitors_for_event(event_id) == model.monitors_for_event(event_id)
    for monitor_id in model.monitors:
        assert clone.monitor_cost(monitor_id).as_dict() == model.monitor_cost(
            monitor_id
        ).as_dict()


@given(random_model())
@settings(**SETTINGS)
def test_round_trip_preserves_field_indices(model):
    clone = model_from_dict(model_to_dict(model))
    for event_id in model.events:
        assert clone.max_fields_for_event(event_id) == model.max_fields_for_event(event_id)
