"""Tests for data types, fields, and evidence entries."""

import pytest

from repro.core.data import DataField, DataType, Evidence


class TestDataField:
    def test_name_required(self):
        with pytest.raises(ValueError):
            DataField("")

    def test_description_optional(self):
        assert DataField("src_ip").description == ""


class TestDataType:
    def test_field_names(self):
        dt = DataType("flow", "Flow", fields=(DataField("a"), DataField("b")))
        assert dt.field_names == frozenset({"a", "b"})

    def test_empty_fields_allowed(self):
        assert DataType("x", "x").field_names == frozenset()

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate field"):
            DataType("x", "x", fields=(DataField("a"), DataField("a")))

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            DataType("", "x")

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError, match="volume_hint"):
            DataType("x", "x", volume_hint=-1)


class TestEvidence:
    def test_key(self):
        assert Evidence("dt", "ev").key == ("dt", "ev")

    @pytest.mark.parametrize("weight", [0.0, -0.5, 1.5])
    def test_weight_out_of_range_rejected(self, weight):
        with pytest.raises(ValueError, match="weight"):
            Evidence("dt", "ev", weight=weight)

    @pytest.mark.parametrize("weight", [0.01, 0.5, 1.0])
    def test_weight_in_range_accepted(self, weight):
        assert Evidence("dt", "ev", weight=weight).weight == weight

    def test_empty_refs_rejected(self):
        with pytest.raises(ValueError):
            Evidence("", "ev")
        with pytest.raises(ValueError):
            Evidence("dt", "")

    def test_fields_used_default_empty(self):
        assert Evidence("dt", "ev").fields_used == frozenset()
