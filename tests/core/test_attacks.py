"""Tests for events, attack steps, and attacks."""

import pytest

from repro.core.attacks import Attack, AttackStep, Event


class TestEvent:
    def test_requires_asset(self):
        with pytest.raises(ValueError, match="asset"):
            Event("e", "e", asset_id="")

    def test_requires_id(self):
        with pytest.raises(ValueError):
            Event("", "e", asset_id="a")


class TestAttackStep:
    def test_defaults(self):
        step = AttackStep("e1")
        assert step.weight == 1.0
        assert step.required

    @pytest.mark.parametrize("weight", [0.0, -1.0])
    def test_nonpositive_weight_rejected(self, weight):
        with pytest.raises(ValueError, match="weight"):
            AttackStep("e1", weight=weight)

    def test_requires_event(self):
        with pytest.raises(ValueError):
            AttackStep("")


def make_attack(steps=None, **kwargs):
    defaults = dict(attack_id="a", name="a", importance=1.0)
    defaults.update(kwargs)
    if steps is None:
        steps = (AttackStep("e1"), AttackStep("e2", weight=2.0, required=False))
    return Attack(steps=tuple(steps), **defaults)


class TestAttack:
    def test_event_ids_ordered(self):
        assert make_attack().event_ids == ("e1", "e2")

    def test_required_event_ids(self):
        assert make_attack().required_event_ids == frozenset({"e1"})

    def test_total_step_weight(self):
        assert make_attack().total_step_weight == 3.0

    def test_step_for_event(self):
        attack = make_attack()
        assert attack.step_for_event("e2").weight == 2.0
        with pytest.raises(KeyError):
            attack.step_for_event("nope")

    def test_needs_steps(self):
        with pytest.raises(ValueError, match="at least one step"):
            make_attack(steps=())

    def test_duplicate_event_rejected(self):
        with pytest.raises(ValueError, match="two steps"):
            make_attack(steps=(AttackStep("e1"), AttackStep("e1")))

    @pytest.mark.parametrize("importance", [0.0, -0.5, 1.5])
    def test_importance_range(self, importance):
        with pytest.raises(ValueError, match="importance"):
            make_attack(importance=importance)

    def test_importance_boundary(self):
        assert make_attack(importance=1.0).importance == 1.0
        assert make_attack(importance=0.001).importance == 0.001
