"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core import load_model, save_model

from tests.conftest import build_toy_builder


@pytest.fixture()
def toy_model_file(toy_model, tmp_path):
    path = tmp_path / "toy.json"
    save_model(toy_model, path)
    return path


class TestInfo:
    def test_model_file(self, toy_model_file, capsys):
        assert main(["info", "--model", str(toy_model_file)]) == 0
        out = capsys.readouterr().out
        assert "SystemModel" in out
        assert "monitors" in out

    def test_casestudy(self, capsys):
        assert main(["info", "--casestudy"]) == 0
        assert "enterprise-web-service" in capsys.readouterr().out

    def test_missing_model_file(self, tmp_path, capsys):
        assert main(["info", "--model", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err


class TestAudit:
    def test_clean_model(self, toy_model_file, capsys):
        assert main(["audit", "--model", str(toy_model_file)]) == 0

    def test_strict_fails_on_warnings(self, tmp_path, capsys):
        builder = build_toy_builder()
        builder.event("orphan", asset="h1")
        builder.attack("C", steps=["orphan"])
        path = tmp_path / "warn.json"
        save_model(builder.build(), path)
        assert main(["audit", "--model", str(path), "--strict"]) == 1
        assert "uncoverable" in capsys.readouterr().out

    def test_non_strict_reports_but_passes(self, tmp_path, capsys):
        builder = build_toy_builder()
        builder.data_type("unused")
        path = tmp_path / "info.json"
        save_model(builder.build(), path)
        assert main(["audit", "--model", str(path)]) == 0


class TestOptimize:
    def test_budget_fraction(self, toy_model_file, capsys):
        assert main(
            ["optimize", "--model", str(toy_model_file), "--budget-fraction", "0.5"]
        ) == 0
        assert "optimal" in capsys.readouterr().out

    def test_explicit_budget_and_outputs(self, toy_model_file, tmp_path, capsys):
        out = tmp_path / "dep.json"
        dot = tmp_path / "dep.dot"
        code = main(
            [
                "optimize",
                "--model", str(toy_model_file),
                "--budget", "cpu=6",
                "--out", str(out),
                "--dot", str(dot),
            ]
        )
        assert code == 0
        deployment = json.loads(out.read_text())
        assert isinstance(deployment, list)
        model = load_model(toy_model_file)
        assert set(deployment) <= set(model.monitors)
        assert dot.read_text().startswith("graph")

    def test_custom_weights(self, toy_model_file, capsys):
        assert main(
            [
                "optimize",
                "--model", str(toy_model_file),
                "--budget-fraction", "0.5",
                "--weights", "1,0,0",
            ]
        ) == 0

    def test_bad_weights(self, toy_model_file, capsys):
        assert main(
            [
                "optimize",
                "--model", str(toy_model_file),
                "--budget-fraction", "0.5",
                "--weights", "1,0",
            ]
        ) == 2
        assert "three numbers" in capsys.readouterr().err

    def test_missing_budget(self, toy_model_file, capsys):
        assert main(["optimize", "--model", str(toy_model_file)]) == 2

    def test_malformed_budget(self, toy_model_file, capsys):
        assert main(
            ["optimize", "--model", str(toy_model_file), "--budget", "cpu"]
        ) == 2

    def test_branch_and_bound_backend(self, toy_model_file, capsys):
        assert main(
            [
                "optimize",
                "--model", str(toy_model_file),
                "--budget-fraction", "0.5",
                "--backend", "branch-and-bound",
            ]
        ) == 0


class TestMinCost:
    def test_min_utility(self, toy_model_file, capsys):
        assert main(
            ["mincost", "--model", str(toy_model_file), "--min-utility", "0.5"]
        ) == 0
        assert "scalar cost" in capsys.readouterr().out

    def test_fully_cover(self, toy_model_file, capsys):
        assert main(
            ["mincost", "--model", str(toy_model_file), "--fully-cover", "A,B"]
        ) == 0

    def test_no_requirements(self, toy_model_file, capsys):
        assert main(["mincost", "--model", str(toy_model_file)]) == 2

    def test_infeasible_requirement(self, toy_model_file, capsys):
        assert main(
            ["mincost", "--model", str(toy_model_file), "--min-utility", "0.999"]
        ) == 2
        assert "unattainable" in capsys.readouterr().err


class TestSweep:
    def test_prints_curve(self, toy_model_file, capsys):
        assert main(
            ["sweep", "--model", str(toy_model_file), "--fractions", "0.5,1.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "Utility vs. budget" in out

    def test_csv_output(self, toy_model_file, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        assert main(
            [
                "sweep",
                "--model", str(toy_model_file),
                "--fractions", "1.0",
                "--csv", str(csv_path),
            ]
        ) == 0
        assert csv_path.read_text().startswith("budget_fraction")


class TestSimulate:
    def test_round_trip_with_optimize(self, toy_model_file, tmp_path, capsys):
        dep = tmp_path / "dep.json"
        main(["optimize", "--model", str(toy_model_file), "--budget-fraction", "1.0",
              "--out", str(dep)])
        capsys.readouterr()
        code = main(
            [
                "simulate",
                "--model", str(toy_model_file),
                "--deployment", str(dep),
                "--repetitions", "3",
                "--seed", "1",
            ]
        )
        assert code == 0
        assert "detection rate" in capsys.readouterr().out

    def test_bad_deployment_file(self, toy_model_file, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a list"}')
        assert main(
            ["simulate", "--model", str(toy_model_file), "--deployment", str(bad)]
        ) == 2

    def test_unknown_monitor_in_deployment(self, toy_model_file, tmp_path, capsys):
        bad = tmp_path / "ghost.json"
        bad.write_text('["ghost"]')
        assert main(
            ["simulate", "--model", str(toy_model_file), "--deployment", str(bad)]
        ) == 2


class TestExportCasestudy:
    def test_round_trips(self, tmp_path, capsys):
        path = tmp_path / "cs.json"
        assert main(["export-casestudy", str(path)]) == 0
        model = load_model(path)
        assert model.name == "enterprise-web-service"


class TestContrib:
    def test_contribution_report(self, toy_model_file, tmp_path, capsys):
        dep = tmp_path / "dep.json"
        main(["optimize", "--model", str(toy_model_file), "--budget-fraction", "1.0",
              "--out", str(dep)])
        capsys.readouterr()
        code = main(
            [
                "contrib",
                "--model", str(toy_model_file),
                "--deployment", str(dep),
                "--samples", "50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Monitor contributions" in out
        assert "shapley" in out


class TestGaps:
    def test_gap_report(self, toy_model_file, tmp_path, capsys):
        dep = tmp_path / "dep.json"
        dep.write_text('["mnet@n1"]')
        code = main(
            [
                "gaps",
                "--model", str(toy_model_file),
                "--deployment", str(dep),
                "--threshold", "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Coverage gaps" in out
        assert "e3" in out

    def test_no_gaps_message(self, toy_model_file, tmp_path, capsys):
        dep = tmp_path / "dep.json"
        model = load_model(toy_model_file)
        import json as _json

        dep.write_text(_json.dumps(sorted(model.monitors)))
        assert main(
            ["gaps", "--model", str(toy_model_file), "--deployment", str(dep)]
        ) == 0
        assert "no gaps" in capsys.readouterr().out.lower()


class TestHtmlOutput:
    def test_optimize_writes_html(self, toy_model_file, tmp_path, capsys):
        html_path = tmp_path / "report.html"
        assert main(
            [
                "optimize",
                "--model", str(toy_model_file),
                "--budget-fraction", "0.5",
                "--html", str(html_path),
            ]
        ) == 0
        content = html_path.read_text()
        assert content.startswith("<!DOCTYPE html>")
        assert "Per-attack assessment" in content


class TestFrontier:
    def test_frontier_table_and_csv(self, toy_model_file, tmp_path, capsys):
        csv_path = tmp_path / "frontier.csv"
        assert main(
            ["frontier", "--model", str(toy_model_file), "--csv", str(csv_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert csv_path.read_text().startswith("scalar_cost")

    def test_max_points(self, toy_model_file, capsys):
        assert main(
            ["frontier", "--model", str(toy_model_file), "--max-points", "2"]
        ) == 0


class TestCompare:
    def test_compare_two_deployments(self, toy_model_file, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text('["mnet@n1"]')
        b.write_text('["mlog@h1", "mdb@h2"]')
        assert main(
            ["compare", "--model", str(toy_model_file), "--a", str(a), "--b", str(b)]
        ) == 0
        out = capsys.readouterr().out
        assert "Deployment comparison" in out
        assert "+ mdb@h2" in out
        assert "- mnet@n1" in out

    def test_unknown_monitor_fails_cleanly(self, toy_model_file, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text('["ghost"]')
        b.write_text('[]')
        assert main(
            ["compare", "--model", str(toy_model_file), "--a", str(a), "--b", str(b)]
        ) == 2


class TestSolverFlags:
    """--presolve / --max-nodes / --gap on every solving command."""

    def test_presolve_optimize_matches_cold(self, toy_model_file, tmp_path, capsys):
        cold_out = tmp_path / "cold.json"
        warm_out = tmp_path / "warm.json"
        base = ["optimize", "--model", str(toy_model_file), "--budget-fraction", "0.5"]
        assert main(base + ["--out", str(cold_out)]) == 0
        assert main(base + ["--presolve", "--out", str(warm_out)]) == 0
        assert json.loads(cold_out.read_text()) == json.loads(warm_out.read_text())

    def test_no_presolve_is_accepted(self, toy_model_file, capsys):
        assert main(
            [
                "optimize",
                "--model", str(toy_model_file),
                "--budget-fraction", "0.5",
                "--no-presolve",
            ]
        ) == 0

    def test_node_and_gap_controls(self, toy_model_file, capsys):
        assert main(
            [
                "optimize",
                "--model", str(toy_model_file),
                "--budget-fraction", "0.5",
                "--backend", "branch-and-bound",
                "--max-nodes", "100000",
                "--gap", "1e-9",
            ]
        ) == 0
        assert "optimal" in capsys.readouterr().out

    def test_mincost_presolve(self, toy_model_file, capsys):
        assert main(
            [
                "mincost",
                "--model", str(toy_model_file),
                "--min-utility", "0.2",
                "--presolve",
            ]
        ) == 0

    def test_sweep_presolve_matches_cold(self, toy_model_file, capsys):
        args = ["sweep", "--model", str(toy_model_file), "--fractions", "0.2,0.5"]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args + ["--presolve", "--workers", "1"]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_frontier_backend_and_presolve(self, toy_model_file, capsys):
        assert main(["frontier", "--model", str(toy_model_file)]) == 0
        cold = capsys.readouterr().out
        assert main(
            [
                "frontier",
                "--model", str(toy_model_file),
                "--backend", "branch-and-bound",
                "--presolve",
            ]
        ) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_stats_renders_reduction_ratios(self, toy_model_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(
            [
                "sweep",
                "--model", str(toy_model_file),
                "--fractions", "0.2,0.5",
                "--presolve",
                "--workers", "1",
                "--trace", str(trace),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "presolve:" in out
        assert "removed" in out
