"""CLI robustness: worker-count validation, resilience flags, fallback backend."""

from __future__ import annotations

import argparse
import json

import pytest

from repro.cli import _parse_policy, _positive_worker_count, build_parser, main
from repro.core import save_model
from repro.runtime import RetryPolicy


@pytest.fixture()
def toy_model_file(toy_model, tmp_path):
    path = tmp_path / "toy.json"
    save_model(toy_model, path)
    return path


class TestWorkerCountValidation:
    def test_accepts_positive_counts(self):
        assert _positive_worker_count("1") == 1
        assert _positive_worker_count("8") == 8

    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(argparse.ArgumentTypeError, match=r">= 1 \(use 1 for serial\)"):
            _positive_worker_count(bad)

    def test_rejects_non_integers(self):
        with pytest.raises(argparse.ArgumentTypeError, match="must be an integer"):
            _positive_worker_count("two")

    @pytest.mark.parametrize("bad", ["0", "-1", "2.5"])
    def test_parser_fails_fast_before_any_work(self, toy_model_file, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--model", str(toy_model_file), "--workers", bad])
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err


class TestResilienceFlags:
    def _args(self, extra):
        return build_parser().parse_args(
            ["sweep", "--model", "unused.json"] + extra
        )

    def test_defaults_mean_no_policy(self):
        assert _parse_policy(self._args([])) is None

    def test_any_flag_builds_a_policy(self):
        policy = _parse_policy(
            self._args(["--timeout", "1.5", "--max-retries", "2", "--on-failure", "skip"])
        )
        assert isinstance(policy, RetryPolicy)
        assert policy.timeout == 1.5
        assert policy.max_retries == 2
        assert policy.on_failure == "skip"

    def test_single_flag_is_enough(self):
        policy = _parse_policy(self._args(["--max-retries", "1"]))
        assert policy is not None
        assert policy.timeout is None
        assert policy.on_failure == "raise"

    def test_invalid_failure_mode_is_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["sweep", "--model", "x.json", "--on-failure", "explode"]
            )
        assert excinfo.value.code == 2
        assert "--on-failure" in capsys.readouterr().err


class TestFallbackBackendEndToEnd:
    def test_optimize_with_fallback_backend(self, toy_model_file, capsys):
        assert main(
            ["optimize", "--model", str(toy_model_file),
             "--budget-fraction", "0.5", "--backend", "fallback"]
        ) == 0
        assert "utility" in capsys.readouterr().out

    def test_optimize_timeout_flag_is_accepted(self, toy_model_file, capsys):
        assert main(
            ["optimize", "--model", str(toy_model_file),
             "--budget-fraction", "0.5", "--timeout", "30"]
        ) == 0

    def test_mincost_with_fallback_backend(self, toy_model_file, capsys):
        assert main(
            ["mincost", "--model", str(toy_model_file),
             "--min-utility", "0.3", "--backend", "fallback", "--timeout", "30"]
        ) == 0

    def test_sweep_with_resilience_flags(self, toy_model_file, tmp_path, capsys):
        out = tmp_path / "sweep.csv"
        assert main(
            ["sweep", "--model", str(toy_model_file),
             "--fractions", "0.2,0.5", "--backend", "fallback",
             "--workers", "1", "--max-retries", "1", "--csv", str(out)]
        ) == 0
        assert out.exists()

    def test_optimize_fallback_writes_strict_deployment_json(
        self, toy_model_file, tmp_path, capsys
    ):
        out = tmp_path / "deploy.json"
        assert main(
            ["optimize", "--model", str(toy_model_file),
             "--budget-fraction", "0.5", "--backend", "fallback",
             "--out", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        assert isinstance(payload, list) and payload
        assert all(isinstance(monitor_id, str) for monitor_id in payload)
