"""Branch-and-bound regressions and warm-start controls.

Covers three behaviours that plain backend cross-validation misses: the
pure-LP degenerate case (no integral variables at all), the snapped-
incumbent feasibility check (an LP point inside the integrality
tolerance whose rounding violates a large-coefficient row), and the
warm-start / dual-bound / node-budget knobs that the solve sessions and
the fallback chain rely on.
"""

import numpy as np
import pytest

from repro import obs
from repro.solver import MilpModel, ObjectiveSense, SolutionStatus, solve
from repro.solver.branch_and_bound import (
    _most_fractional,
    _snapped_if_feasible,
    solve_branch_and_bound,
)
from tests.conftest import knapsack_model as knapsack


class TestPureLpModels:
    def test_most_fractional_handles_no_integral_variables(self):
        # Regression: np.argmax over an empty candidate set raised
        # "attempt to get argmax of an empty sequence".
        assert _most_fractional(np.array([0.5, 0.25]), np.array([], dtype=int)) is None

    def test_continuous_only_model_solves(self):
        model = MilpModel("lp-only", ObjectiveSense.MAXIMIZE)
        x = model.continuous("x", 0, 4)
        y = model.continuous("y", 0, 4)
        model.add_constraint(x + y <= 5, name="cap")
        model.set_objective(2 * x + 3 * y)
        solution = solve_branch_and_bound(model)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(14.0)  # y=4, x=1


class TestSnappedIncumbentFeasibility:
    def test_rounding_across_a_tight_big_coefficient_row_is_rejected(self):
        # x = 1 - 1e-8 is inside the integrality tolerance, but rounding
        # to 1 pushes the 10000-coefficient row 1e-4 over its cap.
        model = MilpModel("tight", ObjectiveSense.MAXIMIZE)
        x = model.binary("x")
        model.add_constraint(10000 * x <= 9999.9999, name="cap")
        model.set_objective(5 * x)
        form = model.compile()
        assert (
            _snapped_if_feasible(form, np.array([1.0 - 1e-8]), np.array([0])) is None
        )

    def test_solver_reports_the_true_feasible_optimum(self):
        # End-to-end version of the case above: the LP relaxation's
        # optimum snaps infeasible, so the only integer-feasible choice
        # is x = 0.  An unchecked snap used to report x = 1 (objective
        # 5) — an infeasible "optimum".
        model = MilpModel("tight", ObjectiveSense.MAXIMIZE)
        x = model.binary("x")
        model.add_constraint(10000 * x <= 9999.9999, name="cap")
        model.set_objective(5 * x)
        solution = solve_branch_and_bound(model)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.values == {"x": 0.0}
        assert solution.objective == pytest.approx(0.0)
        assert model.is_feasible(solution.values)

    def test_feasible_snap_is_accepted_verbatim(self):
        form = knapsack().compile()
        snapped = _snapped_if_feasible(
            form, np.array([1.0 - 1e-8, 1.0, 0.0, 1e-9, 0.0]), np.arange(5)
        )
        assert snapped is not None
        assert snapped.tolist() == [1.0, 1.0, 0.0, 0.0, 0.0]


class TestWarmStartControls:
    def test_feasible_seed_is_accepted_and_optimum_unchanged(self):
        seed = {"x0": 0.0, "x1": 1.0, "x2": 0.0, "x3": 0.0, "x4": 1.0}  # value 25
        with obs.capture() as cap:
            solution = solve_branch_and_bound(knapsack(), warm_start=seed)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(25.0)
        counters = cap.registry.snapshot()["counters"]
        assert counters.get("solver.warm_start.accepted") == 1.0

    def test_infeasible_seed_is_rejected_not_fatal(self):
        seed = {f"x{i}": 1.0 for i in range(5)}  # weight 16 > capacity 8
        with obs.capture() as cap:
            solution = solve_branch_and_bound(knapsack(), warm_start=seed)
        assert solution.objective == pytest.approx(25.0)
        counters = cap.registry.snapshot()["counters"]
        assert counters.get("solver.warm_start.rejected") == 1.0

    def test_incomplete_seed_is_rejected_not_fatal(self):
        solution = solve_branch_and_bound(knapsack(), warm_start={"x0": 1.0})
        assert solution.objective == pytest.approx(25.0)

    def test_known_bound_preserves_the_optimum(self):
        cold = solve_branch_and_bound(knapsack())
        seed = {"x0": 0.0, "x1": 1.0, "x2": 0.0, "x3": 0.0, "x4": 1.0}
        warm = solve_branch_and_bound(
            knapsack(), warm_start=seed, known_bound=cold.objective
        )
        assert warm.status is SolutionStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective)
        # Seed + exact bound close the gap at the root.
        assert warm.nodes_explored <= cold.nodes_explored

    def test_node_budget_degrades_to_feasible_with_a_seed(self):
        seed = {"x0": 1.0, "x1": 1.0, "x2": 0.0, "x3": 0.0, "x4": 0.0}  # value 23
        solution = solve_branch_and_bound(knapsack(), max_nodes=1, warm_start=seed)
        assert solution.status in (SolutionStatus.OPTIMAL, SolutionStatus.FEASIBLE)
        assert solution.objective >= 23.0 - 1e-9

    def test_loose_gap_accepts_the_seed_early(self):
        seed = {"x0": 0.0, "x1": 1.0, "x2": 0.0, "x3": 0.0, "x4": 1.0}  # the optimum
        solution = solve_branch_and_bound(knapsack(), warm_start=seed, gap=0.5)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(25.0)


class TestDispatcherControls:
    @pytest.mark.parametrize("backend", ["scipy", "branch-and-bound"])
    def test_gap_and_node_controls_thread_through_solve(self, backend):
        solution = solve(knapsack(), backend, max_nodes=100_000, gap=1e-9)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(25.0)

    def test_enumeration_ignores_the_controls(self):
        solution = solve(knapsack(), "enumeration", max_nodes=5, gap=0.5)
        assert solution.objective == pytest.approx(25.0)
