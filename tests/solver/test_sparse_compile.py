"""Sparse-vs-dense differential suite for the end-to-end solver core.

The non-negotiable contract of the sparse compile path: **bit-identical
objectives and deployments** against the dense path it replaced.  Over
50 seeded models this suite pins

* compile bit-identity — the CSR standard form densifies to exactly the
  matrix ``compile(dense=True)`` builds, cell for cell, and every
  vector field matches;
* LP relaxation identity — HiGHS returns the *same bits* (objective and
  solution vector) whether it is handed the CSR or the dense matrices;
* presolve lift-back exactness with the dominance rule forced onto the
  sparse bitset engine, plus dense-engine/sparse-engine agreement on
  which columns they fix;
* parallel branch & bound worker-count invariance (1/2/4) on a sparse
  catalog model, bit-identical to the serial solver;
* the dense guard rails: ``compile(dense=True)`` refuses matrices past
  :data:`~repro.solver.model.MAX_DENSE_CELLS` while the default sparse
  compile shrugs.

The multizone catalog test is the reduction this PR exists for: a
zone-structured monitor catalog full of near-duplicate placements must
collapse under the dominated-monitor rule before the solver branches.
"""

from __future__ import annotations

import importlib

import numpy as np
import pytest
import scipy.sparse as sp

import repro.solver.model as model_mod

# ``repro.solver.__init__`` rebinds the attribute ``presolve`` to the
# function of the same name, so attribute-style module import would hand
# back the function; go through importlib for the module itself.
presolve_mod = importlib.import_module("repro.solver.presolve")
from repro.casestudy.scaling import synthetic_model
from repro.errors import SolverError
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.problem import MaxUtilityProblem
from repro.solver import (
    MilpModel,
    ObjectiveSense,
    PresolveStatus,
    SolutionStatus,
    presolve,
    solve,
    solve_presolved,
)
from repro.solver.branch_and_bound import solve_branch_and_bound
from repro.solver.lp import solve_lp
from repro.solver.model import MAX_DENSE_CELLS
from repro.solver.parallel_bb import solve_parallel_branch_and_bound
from repro.solver.sparse import (
    csr_from_rows,
    dense_equivalent_nbytes,
    matrices_equal,
    matrix_nbytes,
    to_dense,
)
from tests.solver.test_presolve import random_program

SEEDS = range(50)


def force_sparse_dominance(monkeypatch):
    """Route every dominance round through the sparse bitset engine."""
    monkeypatch.setattr(presolve_mod, "DOMINANCE_WORK_LIMIT", 0)


# -- compile bit-identity --------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_sparse_and_dense_compiles_are_bit_identical(seed):
    model = random_program(seed)
    sparse_form = model.compile()
    dense_form = model.compile(dense=True)

    assert sp.issparse(sparse_form.A_ub) and sp.issparse(sparse_form.A_eq)
    assert sparse_form.is_sparse and not dense_form.is_sparse
    assert np.array_equal(to_dense(sparse_form.A_ub), dense_form.A_ub)
    assert np.array_equal(to_dense(sparse_form.A_eq), dense_form.A_eq)
    for field in ("c", "b_ub", "b_eq", "lower", "upper", "integrality"):
        assert np.array_equal(
            getattr(sparse_form, field), getattr(dense_form, field)
        ), field
    assert sparse_form.objective_constant == dense_form.objective_constant
    assert sparse_form.maximize == dense_form.maximize
    # Both flavors report the same dense-equivalent footprint (the
    # CSR payload itself can exceed it on toy matrices — indptr
    # overhead — which is fine; the win is asymptotic, not universal).
    assert dense_form.dense_matrix_nbytes == sparse_form.dense_matrix_nbytes


@pytest.mark.parametrize("seed", SEEDS)
def test_lp_relaxation_is_bit_identical_across_flavors(seed):
    model = random_program(seed)
    s = model.compile()
    d = model.compile(dense=True)
    from_sparse = solve_lp(s.c, s.A_ub, s.b_ub, s.A_eq, s.b_eq, s.lower, s.upper)
    from_dense = solve_lp(d.c, d.A_ub, d.b_ub, d.A_eq, d.b_eq, d.lower, d.upper)
    assert from_sparse.status == from_dense.status
    if from_sparse.is_optimal:
        # Same matrix bits in, same HiGHS run out — exact, not approx.
        assert from_sparse.objective == from_dense.objective
        assert np.array_equal(from_sparse.x, from_dense.x)


# -- presolve under the sparse dominance engine ----------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_liftback_is_exact_under_the_sparse_dominance_engine(seed, monkeypatch):
    force_sparse_dominance(monkeypatch)
    model = random_program(seed)
    cold = solve(model, "enumeration")
    if cold.status is SolutionStatus.INFEASIBLE:
        warm = solve_presolved(model)
        assert warm.status is SolutionStatus.INFEASIBLE
        return
    warm = solve_presolved(model)
    assert warm.status is SolutionStatus.OPTIMAL
    assert warm.objective == pytest.approx(cold.objective, abs=1e-6)
    assert model.is_feasible(warm.values, tolerance=1e-6)
    assert set(warm.values) == {v.name for v in model.variables}


@pytest.mark.parametrize("seed", SEEDS)
def test_dense_and_sparse_dominance_engines_fix_identical_columns(seed, monkeypatch):
    model = random_program(seed)
    via_dense = presolve(model)

    force_sparse_dominance(monkeypatch)
    via_sparse = presolve(model)

    assert via_dense.status == via_sparse.status
    assert via_dense.stats.dominated_columns == via_sparse.stats.dominated_columns
    assert via_dense.stats.columns_after == via_sparse.stats.columns_after
    assert via_dense.stats.rows_after == via_sparse.stats.rows_after
    if via_dense.status is PresolveStatus.REDUCED:
        reduced_dense = via_dense.reduced.compile()
        reduced_sparse = via_sparse.reduced.compile()
        assert matrices_equal(reduced_dense.A_ub, reduced_sparse.A_ub)
        assert matrices_equal(reduced_dense.A_eq, reduced_sparse.A_eq)
        assert np.array_equal(reduced_dense.c, reduced_sparse.c)
        assert np.array_equal(reduced_dense.b_ub, reduced_sparse.b_ub)


def test_sparse_engine_prunes_a_handbuilt_dominated_column(monkeypatch):
    # x1 covers everything x2 does (rows) at lower cost: the sparse
    # engine must fix x2 to 0 and record a sparse round.
    force_sparse_dominance(monkeypatch)
    model = MilpModel("dominated", ObjectiveSense.MINIMIZE)
    x1 = model.binary("x1")
    x2 = model.binary("x2")
    x3 = model.binary("x3")
    model.add_constraint(-2.0 * x1 - 1.0 * x2 - 1.0 * x3 <= -2.0, name="cover")
    model.set_objective(1.0 * x1 + 3.0 * x2 + 2.0 * x3)
    result = presolve(model)
    assert result.stats.dominated_columns >= 1
    assert result.stats.sparse_dominance_rounds >= 1
    warm = solve_presolved(model)
    cold = solve(model, "enumeration")
    assert warm.objective == pytest.approx(cold.objective)
    assert warm.values["x2"] == 0.0


def test_multizone_catalog_collapses_under_dominated_monitor_rule():
    # The reduction that makes thousands-of-monitor catalogs tractable:
    # zone-correlated costs mean many placements are covered by a
    # no-more-expensive rival, and presolve proves them droppable.
    catalog = synthetic_model(
        assets=40,
        monitor_types=10,
        monitors=150,
        attacks=30,
        seed=7,
        topology="multizone",
        zones=4,
    )
    problem = MaxUtilityProblem(
        catalog, Budget.fraction_of_total(catalog, 0.35), UtilityWeights()
    )
    milp, _ = problem.build()
    result = presolve(milp)
    assert result.status is PresolveStatus.REDUCED
    assert result.stats.dominated_columns > 0
    assert result.stats.columns_after < result.stats.columns_before
    # And the reduction is exact: lifted solve equals the cold solve.
    cold = solve(milp, "scipy")
    warm = solve_presolved(milp, backend="scipy")
    assert warm.status is cold.status is SolutionStatus.OPTIMAL
    assert warm.objective == pytest.approx(cold.objective, abs=1e-6)


# -- parallel branch & bound on a sparse catalog model ---------------------


def test_parallel_bb_worker_identity_on_a_sparse_catalog_model():
    catalog = synthetic_model(
        assets=20,
        monitor_types=6,
        monitors=40,
        attacks=12,
        seed=3,
        topology="multizone",
        zones=3,
    )
    problem = MaxUtilityProblem(
        catalog, Budget.fraction_of_total(catalog, 0.3), UtilityWeights()
    )
    milp, _ = problem.build()
    assert milp.compile().is_sparse

    serial = solve_branch_and_bound(milp)
    answers = [
        solve_parallel_branch_and_bound(milp, workers=workers)
        for workers in (1, 2, 4)
    ]
    for parallel in answers:
        assert parallel.status is serial.status
        assert parallel.objective == serial.objective
        assert parallel.values == serial.values
    # Node accounting is worker-count invariant (the frontier split is
    # deterministic and the merge commutative).
    nodes = {answer.nodes_explored for answer in answers}
    assert len(nodes) == 1


# -- dense guard rails -----------------------------------------------------


def test_dense_compile_refuses_past_the_cell_limit(monkeypatch):
    monkeypatch.setattr(model_mod, "MAX_DENSE_CELLS", 100)
    model = MilpModel("too-big", ObjectiveSense.MINIMIZE)
    xs = [model.binary(f"x{i}") for i in range(20)]
    for r in range(10):
        model.add_constraint(sum(xs[r : r + 3]) <= 2.0, name=f"c{r}")
    model.set_objective(sum(xs))
    with pytest.raises(SolverError, match="sparse compile"):
        model.compile(dense=True)
    form = model.compile()  # the default sparse path is untouched
    assert form.is_sparse


def test_real_cell_limit_matches_catalog_scale_expectations():
    # The F14 geometry: the 2000-monitor / 500-attack catalog (6926 x
    # 8408 standard form) lands past the limit — dense refuses there —
    # while the 2000-monitor / 300-attack race instance (4166 x 5853)
    # squeaks under it as the largest dense-completable size the
    # speedup is measured at.
    assert 6_926 * 8_408 > MAX_DENSE_CELLS  # 2000m/500a: dense refuses
    assert 4_166 * 5_853 < MAX_DENSE_CELLS  # 2000m/300a: dense completes


# -- csr_from_rows canonical-form unit pins --------------------------------


def test_csr_from_rows_builds_canonical_int32_csr():
    rows = [
        (np.array([0, 3], dtype=np.int32), np.array([1.5, -2.0])),
        (np.array([], dtype=np.int32), np.array([])),  # genuine zero row
        (np.array([1], dtype=np.int32), np.array([4.0])),
    ]
    matrix = csr_from_rows(rows, 5)
    assert matrix.shape == (3, 5)
    assert matrix.indices.dtype == np.int32
    assert matrix.indptr.dtype == np.int32
    assert matrix.has_sorted_indices and matrix.has_canonical_format
    expected = np.zeros((3, 5))
    expected[0, 0], expected[0, 3], expected[2, 1] = 1.5, -2.0, 4.0
    assert np.array_equal(to_dense(matrix), expected)
    assert matrix_nbytes(matrix) == (
        matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
    )
    assert dense_equivalent_nbytes(matrix) == 3 * 5 * 8


def test_csr_from_rows_handles_the_empty_block():
    matrix = csr_from_rows([], 7)
    assert matrix.shape == (0, 7)
    assert matrix.nnz == 0
    assert matrices_equal(matrix, csr_from_rows([], 7))
