"""Warm-started solve sessions: equivalence, seeding, bound reuse.

A session must be a pure acceleration: every solve returns the status
and objective a cold solve would, on every backend.  The warm machinery
is then observed through the obs counters — incumbents seeded on family
repeats, dual bounds reused on pure tightenings, LP-relaxation cache
hits on identical cores.
"""

import pytest

from repro import obs
from repro.solver import (
    MilpModel,
    ObjectiveSense,
    SolutionStatus,
    SolveSession,
    solve,
)
from repro.solver.session import _only_tightened, structure_signature
from tests.conftest import knapsack_model


def knapsack(capacity: float, values=(10, 13, 7, 8, 12)) -> MilpModel:
    """One member of a knapsack family: same structure, one rhs knob."""
    return knapsack_model(capacity, values, name="family", constraint_name="cap")


class TestStructureSignature:
    def test_rhs_changes_share_a_family(self):
        assert structure_signature(knapsack(8)) == structure_signature(knapsack(5))

    def test_objective_changes_share_a_family(self):
        assert structure_signature(knapsack(8)) == structure_signature(
            knapsack(8, values=(1, 2, 3, 4, 5))
        )

    def test_coefficient_changes_split_families(self):
        other = MilpModel("family", ObjectiveSense.MAXIMIZE)
        x = [other.binary(f"x{i}") for i in range(5)]
        other.add_constraint(sum(2 * v for v in x) <= 8, name="cap")
        other.set_objective(sum(x))
        assert structure_signature(knapsack(8)) != structure_signature(other)


class TestOnlyTightened:
    def test_smaller_rhs_is_a_tightening(self):
        loose, tight = knapsack(8).compile(), knapsack(5).compile()
        assert _only_tightened(loose, tight)
        assert not _only_tightened(tight, loose)

    def test_objective_change_is_not(self):
        a = knapsack(8).compile()
        b = knapsack(8, values=(1, 2, 3, 4, 5)).compile()
        assert not _only_tightened(a, b)


@pytest.mark.parametrize("backend", ["scipy", "branch-and-bound"])
class TestSessionEquivalence:
    def test_matches_cold_solves_across_a_sweep(self, backend):
        session = SolveSession(backend, presolve=True)
        for capacity in (3, 5, 8, 11, 14):
            warm = session.solve(knapsack(capacity))
            cold = solve(knapsack(capacity), backend)
            assert warm.status == cold.status, capacity
            assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
            model = knapsack(capacity)
            assert model.is_feasible(warm.values, tolerance=1e-6)

    def test_matches_cold_solves_descending(self, backend):
        session = SolveSession(backend, presolve=True)
        for capacity in (14, 11, 8, 5, 3):
            warm = session.solve(knapsack(capacity))
            cold = solve(knapsack(capacity), backend)
            assert warm.objective == pytest.approx(cold.objective, abs=1e-9)

    def test_infeasible_instances_pass_through(self, backend):
        model = MilpModel("impossible", ObjectiveSense.MAXIMIZE)
        x = model.binary("x")
        model.add_constraint(x + 0.0 >= 2, name="cannot")
        model.set_objective(x * 1)
        session = SolveSession(backend, presolve=True)
        assert session.solve(model).status is SolutionStatus.INFEASIBLE


class TestWarmMachinery:
    def test_incumbents_seed_family_repeats(self):
        with obs.capture() as cap:
            session = SolveSession("branch-and-bound", presolve=True)
            for capacity in (5, 8, 11):
                session.solve(knapsack(capacity))
        counters = cap.registry.snapshot()["counters"]
        assert counters.get("solver.session.solves") == 3
        # Ascending capacities: each optimum stays feasible at the next.
        assert counters.get("solver.session.incumbent_seeds", 0) >= 1
        assert counters.get("solver.warm_start.accepted", 0) >= 1

    def test_dual_bounds_reused_on_pure_tightenings(self):
        # Bound reuse compares ORIGINAL compiled forms, so descending
        # capacities qualify even when presolve fixes different subsets.
        with obs.capture() as cap:
            session = SolveSession("branch-and-bound", presolve=False)
            for capacity in (14, 11, 8):
                session.solve(knapsack(capacity))
        counters = cap.registry.snapshot()["counters"]
        assert counters.get("solver.session.bound_reuses", 0) >= 1

    def test_lp_cache_hits_on_identical_resolve(self):
        with obs.capture() as cap:
            session = SolveSession("branch-and-bound", presolve=False)
            first = session.solve(knapsack(8))
            second = session.solve(knapsack(8))
        assert first.objective == second.objective
        counters = cap.registry.snapshot()["counters"]
        assert counters.get("solver.lp_cache.hits", 0) >= 1

    def test_scipy_sessions_never_count_seeds(self):
        # scipy cannot consume a warm start; the session must not claim
        # it seeded one.
        with obs.capture() as cap:
            session = SolveSession("scipy", presolve=True)
            for capacity in (5, 8):
                session.solve(knapsack(capacity))
        counters = cap.registry.snapshot()["counters"]
        assert counters.get("solver.session.incumbent_seeds", 0) == 0

    def test_solve_controls_fall_back_to_session_defaults(self):
        session = SolveSession("branch-and-bound", presolve=True, gap=1e-9)
        solution = session.solve(knapsack(8), time_limit=30.0)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(25.0)


def presolve_proof_model(rhs: float) -> MilpModel:
    """A family member the reduction pipeline provably cannot shrink."""
    model = MilpModel("futile", ObjectiveSense.MAXIMIZE)
    x, y, z = model.binary("x"), model.binary("y"), model.binary("z")
    model.add_constraint(2 * x + 3 * y + z <= rhs, name="r1")
    model.add_constraint(x + y + 2 * z <= 2, name="r2")
    model.set_objective(2 * x + 3 * y + z)
    return model


class TestFamilyKeyAndFutilitySkip:
    def test_family_key_groups_without_hashing(self):
        # Callers that manage families themselves (ProblemFamily) name
        # the family directly; the warm machinery must engage exactly
        # as it does under the structure-signature grouping.
        with obs.capture() as cap:
            session = SolveSession("branch-and-bound", presolve=False)
            for capacity in (5, 8, 11):
                session.solve(knapsack(capacity), family_key="knapsack-family")
        counters = cap.registry.snapshot()["counters"]
        assert counters.get("solver.session.incumbent_seeds", 0) >= 1

    @pytest.mark.parametrize("backend", ["scipy", "branch-and-bound"])
    def test_family_key_solves_match_cold(self, backend):
        session = SolveSession(backend, presolve=True)
        for capacity in (5, 8, 11):
            warm = session.solve(knapsack(capacity), family_key="k")
            cold = solve(knapsack(capacity), backend)
            assert warm.objective == pytest.approx(cold.objective)

    def test_futile_presolve_runs_once_per_family(self):
        with obs.capture() as cap:
            session = SolveSession("scipy", presolve=True)
            for rhs in (3.0, 4.0, 5.0):
                warm = session.solve(presolve_proof_model(rhs))
                cold = solve(presolve_proof_model(rhs), "scipy")
                assert warm.objective == pytest.approx(cold.objective)
        counters = cap.registry.snapshot()["counters"]
        assert counters.get("presolve.runs") == 1
        assert counters.get("solver.session.presolve_skips") == 2

    def test_reducing_presolve_keeps_running(self):
        # knapsack(5) presolve is not futile for every member; families
        # whose first presolve reduces must keep presolving.
        from repro.solver.presolve import PresolveStatus, presolve as run_presolve

        pre = run_presolve(presolve_proof_model(3.0))
        assert pre.status is PresolveStatus.REDUCED
        assert pre.stats.columns_after == pre.stats.columns_before
        assert pre.stats.rows_after == pre.stats.rows_before
