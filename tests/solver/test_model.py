"""Tests for MilpModel construction and standard-form compilation."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solver.expressions import VarKind
from repro.solver.model import MilpModel, ObjectiveSense
from repro.solver.sparse import matrices_equal, to_dense


class TestVariables:
    def test_binary_bounds(self):
        model = MilpModel()
        x = model.binary("x")
        assert (x.lower, x.upper) == (0.0, 1.0)
        assert x.kind is VarKind.BINARY
        assert x.is_integral

    def test_continuous_not_integral(self):
        model = MilpModel()
        z = model.continuous("z", 1.0, 5.0)
        assert not z.is_integral

    def test_duplicate_name_rejected(self):
        model = MilpModel()
        model.binary("x")
        with pytest.raises(SolverError, match="duplicate"):
            model.continuous("x")

    def test_empty_domain_rejected(self):
        model = MilpModel()
        with pytest.raises(SolverError, match="empty domain"):
            model.integer("x", 3, 2)

    def test_counts(self):
        model = MilpModel()
        model.binary("a")
        model.integer("b", 0, 5)
        model.continuous("c")
        assert model.num_variables == 3
        assert model.num_integer_variables == 2

    def test_foreign_variable_rejected(self):
        m1, m2 = MilpModel("m1"), MilpModel("m2")
        x = m1.binary("x")
        m2.binary("x")  # same name, different model
        with pytest.raises(SolverError, match="belong"):
            m2.add_constraint(x <= 1)
        with pytest.raises(SolverError, match="belong"):
            m2.set_objective(x + 0.0)


class TestCompile:
    def test_maximize_negates_objective(self):
        model = MilpModel(sense=ObjectiveSense.MAXIMIZE)
        x = model.binary("x")
        model.set_objective(2 * x)
        form = model.compile()
        assert form.c[x.index] == -2.0
        assert form.maximize

    def test_minimize_keeps_objective(self):
        model = MilpModel(sense=ObjectiveSense.MINIMIZE)
        x = model.binary("x")
        model.set_objective(2 * x)
        assert model.compile().c[x.index] == 2.0

    def test_ge_converted_to_le(self):
        model = MilpModel()
        x, y = model.binary("x"), model.binary("y")
        model.add_constraint(x + 2 * y >= 1)
        form = model.compile()
        assert form.A_ub.shape == (1, 2)
        assert form.is_sparse
        np.testing.assert_allclose(to_dense(form.A_ub)[0], [-1.0, -2.0])
        assert form.b_ub[0] == -1.0

    def test_compile_is_sparse_by_default_and_dense_on_request(self):
        model = MilpModel()
        x, y = model.binary("x"), model.binary("y")
        model.add_constraint(x + 2 * y <= 1, name="r")
        model.set_objective(x + y)
        sparse_form = model.compile()
        dense_form = model.compile(dense=True)
        assert sparse_form.is_sparse and not dense_form.is_sparse
        assert isinstance(dense_form.A_ub, np.ndarray)
        np.testing.assert_array_equal(to_dense(sparse_form.A_ub), dense_form.A_ub)
        assert sparse_form.to_dense().A_ub.tolist() == dense_form.A_ub.tolist()

    def test_eq_rows_separate(self):
        model = MilpModel()
        x = model.binary("x")
        model.add_constraint(x + 0.0 == 1)
        form = model.compile()
        assert form.A_eq.shape == (1, 1)
        assert form.A_ub.shape == (0, 1)

    def test_integrality_mask(self):
        model = MilpModel()
        model.binary("x")
        model.continuous("z")
        mask = model.compile().integrality
        np.testing.assert_array_equal(mask, [True, False])

    def test_objective_constant_round_trip(self):
        model = MilpModel(sense=ObjectiveSense.MAXIMIZE)
        x = model.binary("x")
        model.set_objective(x + 5.0)
        form = model.compile()
        # backend minimizes -x; at x=1 the minimized value is -1
        assert form.objective_in_model_sense(-1.0) == pytest.approx(6.0)


class TestFeasibility:
    @pytest.fixture()
    def model(self):
        m = MilpModel()
        x = m.binary("x")
        z = m.continuous("z", 0, 2)
        m.add_constraint(x + z <= 2)
        m.set_objective(x + z)
        return m

    def test_feasible_assignment(self, model):
        assert model.is_feasible({"x": 1.0, "z": 1.0})

    def test_constraint_violation(self, model):
        assert not model.is_feasible({"x": 1.0, "z": 1.5})

    def test_bound_violation(self, model):
        assert not model.is_feasible({"x": 0.0, "z": 3.0})

    def test_integrality_violation(self, model):
        assert not model.is_feasible({"x": 0.5, "z": 0.0})

    def test_missing_variable(self, model):
        with pytest.raises(SolverError, match="missing"):
            model.is_feasible({"x": 1.0})

    def test_objective_value(self, model):
        assert model.objective_value({"x": 1.0, "z": 0.5}) == 1.5

    def test_constraint_requires_constraint_object(self, model):
        with pytest.raises(SolverError, match="expected a Constraint"):
            model.add_constraint(True)  # a comparison that collapsed to bool


class TestTruncateAndRecompile:
    """The rollback primitive behind formulation reuse must be exact."""

    def build(self, rhs: float) -> MilpModel:
        m = MilpModel("core", ObjectiveSense.MAXIMIZE)
        x, y = m.binary("x"), m.binary("y")
        z = m.continuous("z", 0, 2)
        m.add_constraint(x + y + z <= 2, name="shared")
        m.add_constraint(2 * x + y >= 1, name="shared_ge")
        m.set_objective(3 * x + 2 * y + z)
        m.add_constraint(x + 2 * y <= rhs, name="budget")
        return m

    def assert_identical(self, left, right):
        import numpy as np

        for field in ("c", "b_ub", "b_eq", "lower", "upper", "integrality"):
            assert np.array_equal(getattr(left, field), getattr(right, field)), field
        for field in ("A_ub", "A_eq"):
            assert matrices_equal(getattr(left, field), getattr(right, field)), field
        assert left.objective_constant == right.objective_constant
        assert left.maximize == right.maximize

    def test_truncate_then_reappend_is_bit_identical(self):
        reused = self.build(1.5)
        reused.compile()  # populate the row memo
        x, y = reused.variables[0], reused.variables[1]
        for rhs in (0.5, 1.0, 2.0):
            reused.truncate_constraints(2)
            reused.add_constraint(x + 2 * y <= rhs, name="budget")
            self.assert_identical(reused.compile(), self.build(rhs).compile())

    def test_truncate_drops_trailing_constraints(self):
        model = self.build(1.0)
        model.truncate_constraints(2)
        assert [c.name for c in model.constraints] == ["shared", "shared_ge"]

    def test_truncate_rejects_out_of_range_counts(self):
        model = self.build(1.0)
        with pytest.raises(SolverError, match="cannot truncate"):
            model.truncate_constraints(4)
        with pytest.raises(SolverError, match="cannot truncate"):
            model.truncate_constraints(-1)

    def test_row_memo_survives_new_variables(self):
        # Sparse memo rows name columns, not a vector width, so rows
        # memoized before a variable was added stay valid and the new
        # compile widens the matrix around them.
        model = MilpModel("grow", ObjectiveSense.MAXIMIZE)
        x = model.binary("x")
        model.add_constraint(x <= 1, name="r")
        model.set_objective(x)
        assert model.compile().A_ub.shape == (1, 1)
        y = model.binary("y")
        model.add_constraint(x + y <= 1, name="r2")
        form = model.compile()
        assert form.A_ub.shape == (2, 2)
        assert to_dense(form.A_ub)[0].tolist() == [1.0, 0.0]
        assert to_dense(form.A_ub)[1].tolist() == [1.0, 1.0]
