"""Property-based backend cross-validation.

Random small 0/1 programs are solved by all three backends; the two real
solvers must agree with the enumeration oracle on feasibility and (to
tolerance) on the optimal objective, and must return assignments the
model itself verifies as feasible.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.solver import MilpModel, ObjectiveSense, SolutionStatus, solve


@st.composite
def random_binary_program(draw):
    """A random 0/1 program with <= 8 variables and <= 6 constraints."""
    num_vars = draw(st.integers(1, 8))
    num_constraints = draw(st.integers(0, 6))
    sense = draw(st.sampled_from(list(ObjectiveSense)))
    model = MilpModel("random", sense)
    variables = [model.binary(f"x{i}") for i in range(num_vars)]

    coef = st.integers(-5, 5)
    for c in range(num_constraints):
        coefficients = [draw(coef) for _ in variables]
        rhs = draw(st.integers(-5, 10))
        expression = sum(
            k * v for k, v in zip(coefficients, variables) if k
        )
        if isinstance(expression, int):  # all coefficients were zero
            continue
        if draw(st.booleans()):
            model.add_constraint(expression <= rhs, name=f"c{c}")
        else:
            model.add_constraint(expression >= rhs, name=f"c{c}")

    objective = sum(draw(coef) * v for v in variables)
    if isinstance(objective, int):
        objective = variables[0] * 0
    model.set_objective(objective)
    return model


SETTINGS = dict(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@given(random_binary_program())
@settings(**SETTINGS)
def test_backends_agree_with_oracle(model):
    oracle = solve(model, "enumeration")
    for backend in ("scipy", "branch-and-bound"):
        solution = solve(model, backend)
        assert solution.status == oracle.status, backend
        if oracle.status is SolutionStatus.OPTIMAL:
            assert solution.objective == pytest.approx(oracle.objective, abs=1e-6), backend


@given(random_binary_program())
@settings(**SETTINGS)
def test_returned_assignments_are_feasible(model):
    for backend in ("scipy", "branch-and-bound"):
        solution = solve(model, backend)
        if solution.status is SolutionStatus.OPTIMAL:
            assert model.is_feasible(solution.values), backend
            assert model.objective_value(solution.values) == pytest.approx(
                solution.objective, abs=1e-6
            ), backend


@st.composite
def random_mixed_program(draw):
    """Bounded integers + continuous variables, validated by the oracle."""
    num_int = draw(st.integers(1, 4))
    num_cont = draw(st.integers(0, 3))
    sense = draw(st.sampled_from(list(ObjectiveSense)))
    model = MilpModel("mixed", sense)
    integers = [model.integer(f"n{i}", 0, draw(st.integers(1, 3))) for i in range(num_int)]
    continuous = [model.continuous(f"c{i}", 0, draw(st.integers(1, 5))) for i in range(num_cont)]
    variables = integers + continuous

    coef = st.integers(-4, 4)
    for index in range(draw(st.integers(1, 5))):
        coefficients = [draw(coef) for _ in variables]
        expression = sum(k * v for k, v in zip(coefficients, variables) if k)
        if isinstance(expression, int):
            continue
        rhs = draw(st.integers(-5, 12))
        if draw(st.booleans()):
            model.add_constraint(expression <= rhs, name=f"c{index}")
        else:
            model.add_constraint(expression >= rhs, name=f"c{index}")

    objective = sum(draw(coef) * v for v in variables)
    if isinstance(objective, int):
        objective = variables[0] * 0
    model.set_objective(objective)
    return model


@given(random_mixed_program())
@settings(**SETTINGS)
def test_mixed_programs_agree_with_oracle(model):
    # HiGHS proves optimality only to its default MIP gap (~1e-6
    # relative), so continuous-part objectives can differ from the
    # oracle by ~1e-6 in absolute terms; compare at 1e-4.
    oracle = solve(model, "enumeration")
    for backend in ("scipy", "branch-and-bound"):
        solution = solve(model, backend)
        assert solution.status == oracle.status, backend
        if oracle.status is SolutionStatus.OPTIMAL:
            assert solution.objective == pytest.approx(
                oracle.objective, abs=1e-4
            ), backend
            assert model.is_feasible(solution.values, tolerance=1e-5), backend
