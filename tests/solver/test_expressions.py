"""Tests for the linear-expression DSL."""

import pytest

from repro.errors import SolverError
from repro.solver.expressions import ConstraintSense, LinearExpression
from repro.solver.model import MilpModel


@pytest.fixture()
def variables():
    model = MilpModel("expr-test")
    return model.binary("x"), model.binary("y"), model.continuous("z", 0, 10)


class TestAlgebra:
    def test_variable_plus_variable(self, variables):
        x, y, _ = variables
        expr = x + y
        assert expr.terms == {x: 1.0, y: 1.0}
        assert expr.constant == 0.0

    def test_scaling(self, variables):
        x, _, _ = variables
        assert (3 * x).terms == {x: 3.0}
        assert (x * 3).terms == {x: 3.0}

    def test_constant_folding(self, variables):
        x, _, _ = variables
        expr = 2 * x + 1 + 2
        assert expr.constant == 3.0

    def test_subtraction(self, variables):
        x, y, _ = variables
        expr = 2 * x - y - 1
        assert expr.terms == {x: 2.0, y: -1.0}
        assert expr.constant == -1.0

    def test_rsub(self, variables):
        x, _, _ = variables
        expr = 5 - x
        assert expr.terms == {x: -1.0}
        assert expr.constant == 5.0

    def test_negation(self, variables):
        x, y, _ = variables
        expr = -(x + 2 * y + 1)
        assert expr.terms == {x: -1.0, y: -2.0}
        assert expr.constant == -1.0

    def test_zero_coefficients_dropped(self, variables):
        x, y, _ = variables
        expr = x + y - x
        assert expr.terms == {y: 1.0}

    def test_sum_of_merges_duplicates(self, variables):
        x, y, _ = variables
        expr = LinearExpression.sum_of([(x, 1.0), (x, 2.0), (y, -1.0)])
        assert expr.terms == {x: 3.0, y: -1.0}

    def test_builtin_sum_works(self, variables):
        x, y, z = variables
        expr = sum([x, y, z], LinearExpression())
        assert set(expr.terms) == {x, y, z}

    def test_nonlinear_rejected(self, variables):
        x, y, _ = variables
        with pytest.raises((SolverError, TypeError)):
            x * y  # noqa: B018 — the multiplication itself must fail

    def test_non_finite_rejected(self, variables):
        x, _, _ = variables
        with pytest.raises(SolverError):
            x * float("nan")

    def test_evaluate(self, variables):
        x, y, _ = variables
        expr = 2 * x + 3 * y + 1
        assert expr.evaluate({x: 1.0, y: 0.0}) == 3.0
        assert expr.evaluate({x: 1.0, y: 1.0}) == 6.0


class TestConstraints:
    def test_le_moves_constant(self, variables):
        x, _, _ = variables
        constraint = 2 * x + 1 <= 5
        assert constraint.sense is ConstraintSense.LE
        assert constraint.rhs == 4.0

    def test_ge(self, variables):
        x, y, _ = variables
        constraint = x + y >= 1
        assert constraint.sense is ConstraintSense.GE
        assert constraint.rhs == 1.0

    def test_eq(self, variables):
        x, _, _ = variables
        constraint = x + 0.0 == 1
        assert constraint.sense is ConstraintSense.EQ

    def test_expression_vs_expression(self, variables):
        x, y, _ = variables
        constraint = x + 1 <= y + 3
        assert constraint.expression.terms == {x: 1.0, y: -1.0}
        assert constraint.rhs == 2.0

    def test_satisfied_by(self, variables):
        x, y, _ = variables
        constraint = x + y <= 1
        assert constraint.satisfied_by({x: 1.0, y: 0.0})
        assert not constraint.satisfied_by({x: 1.0, y: 1.0})

    def test_ge_satisfied_by(self, variables):
        x, y, _ = variables
        constraint = x + y >= 1
        assert constraint.satisfied_by({x: 0.0, y: 1.0})
        assert not constraint.satisfied_by({x: 0.0, y: 0.0})

    def test_named(self, variables):
        x, _, _ = variables
        constraint = (x <= 1).named("cap")
        assert constraint.name == "cap"
        assert "cap" in repr(constraint)
