"""Differential stress suite: parallel branch & bound vs. the serial solver.

The determinism contract of :mod:`repro.solver.parallel_bb`, pinned on
50 seeded instances:

* objectives, deployments (variable values), and statuses match the
  serial solver exactly (the instances draw continuous objective
  coefficients, so optima are unique almost surely);
* objectives, values, *and node accounting* are bit-identical at every
  worker count — 1, 2, and 4, with and without a persistent pool;
* a worker killed mid-subtree (injected ``exit`` fault) is respawned
  and the final answer is unchanged;
* warm-started :class:`~repro.solver.session.SolveSession` runs return
  what cold serial solves return.

Everything here compares full result tuples, never just objectives:
silent tie-break drift is exactly the bug class this suite exists to
catch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.runtime.faults import FaultPlan, FaultSpec, inject
from repro.runtime.pool import PersistentPool, use_pool
from repro.solver import (
    MilpModel,
    ObjectiveSense,
    SolutionStatus,
    SolveSession,
)
from repro.solver.branch_and_bound import solve_branch_and_bound
from repro.solver.parallel_bb import solve_parallel_branch_and_bound
from tests.conftest import random_binary_model as random_model
from tests.conftest import wide_knapsack_model as knapsack

SEEDS = range(50)


def same_objective(a: float, b: float) -> bool:
    """Exact equality, treating the two NaNs (infeasible) as equal."""
    return a == b or (np.isnan(a) and np.isnan(b))


@pytest.fixture(scope="module")
def serial_answers():
    """The serial oracle, solved once per module."""
    return {seed: solve_branch_and_bound(random_model(seed)) for seed in SEEDS}


@pytest.fixture(scope="module")
def shared_pool():
    """One warm 4-worker pool for the whole module (spawn paid once)."""
    with PersistentPool(workers=4) as pool:
        yield pool


class TestSerialEquivalence:
    def test_objectives_values_and_status_match_serial(self, serial_answers):
        for seed in SEEDS:
            serial = serial_answers[seed]
            parallel = solve_parallel_branch_and_bound(random_model(seed), workers=1)
            assert parallel.status == serial.status, seed
            assert same_objective(parallel.objective, serial.objective), seed
            assert parallel.values == serial.values, seed

    def test_solutions_are_feasible_in_the_model(self, serial_answers):
        for seed in SEEDS:
            if serial_answers[seed].status is not SolutionStatus.OPTIMAL:
                continue
            model = random_model(seed)
            parallel = solve_parallel_branch_and_bound(model, workers=1)
            assert model.is_feasible(parallel.values, tolerance=1e-6), seed


class TestWorkerCountInvariance:
    def test_bit_identical_at_1_2_and_4_workers(self, shared_pool):
        """Objectives, values, AND node accounting never move with workers.

        Workers 2 and 4 share one persistent pool, so this also pins the
        zero-copy shared-memory task path against the in-process path.
        """
        for seed in SEEDS:
            reference = solve_parallel_branch_and_bound(random_model(seed), workers=1)
            for workers in (2, 4):
                run = solve_parallel_branch_and_bound(
                    random_model(seed), workers=workers, pool=shared_pool
                )
                key = (seed, workers)
                assert run.status == reference.status, key
                assert same_objective(run.objective, reference.objective), key
                assert run.values == reference.values, key
                assert run.nodes_explored == reference.nodes_explored, key

    def test_fresh_spawned_pools_agree_too(self):
        """A per-call executor (no PersistentPool) changes nothing either."""
        for seed in (3, 11, 27):
            reference = solve_parallel_branch_and_bound(random_model(seed), workers=1)
            spawned = solve_parallel_branch_and_bound(random_model(seed), workers=2)
            assert same_objective(spawned.objective, reference.objective), seed
            assert spawned.values == reference.values, seed
            assert spawned.nodes_explored == reference.nodes_explored, seed

    def test_dispatch_seed_does_not_change_results(self, shared_pool):
        """The dispatch shuffle is cosmetic: any seed, same answer."""
        for seed in (5, 19):
            model = random_model(seed)
            a = solve_parallel_branch_and_bound(model, workers=2, pool=shared_pool, seed=0)
            b = solve_parallel_branch_and_bound(
                random_model(seed), workers=2, pool=shared_pool, seed=12345
            )
            assert same_objective(a.objective, b.objective), seed
            assert a.values == b.values, seed
            assert a.nodes_explored == b.nodes_explored, seed

    def test_subtree_grain_never_changes_optima(self):
        """``subtrees`` legitimately moves node counts, never answers."""
        for seed in (7, 23, 41):
            coarse = solve_parallel_branch_and_bound(random_model(seed), workers=1, subtrees=2)
            fine = solve_parallel_branch_and_bound(random_model(seed), workers=1, subtrees=16)
            assert same_objective(coarse.objective, fine.objective), seed
            assert coarse.values == fine.values, seed


def _first_decomposed_seed() -> int:
    """The first stress seed whose instance actually reaches phase 2."""
    for seed in SEEDS:
        with obs.capture() as cap:
            solve_parallel_branch_and_bound(random_model(seed), workers=1)
        if cap.registry.snapshot()["counters"].get("solver.parallel.subtrees", 0) > 0:
            return seed
    raise AssertionError("no stress instance decomposes; suite is vacuous")


class TestFaultInjection:
    def test_killed_worker_respawns_and_answer_is_unchanged(self, tmp_path):
        """An ``exit`` fault inside subtree 0 must not move the result.

        The dead worker surfaces as a transport error; the pool respawns
        its executor and the subtree re-runs (attempt 2 is fault-free).
        The merge is commutative, so the recovery schedule cannot leak
        into the answer.
        """
        seed = _first_decomposed_seed()
        reference = solve_parallel_branch_and_bound(random_model(seed), workers=1)
        state = tmp_path / "faults"
        state.mkdir()
        plan = FaultPlan.of(
            state, {"solver.parallel_bb.subtree[0]": FaultSpec(kind="exit", times=1)}
        )
        with PersistentPool(workers=2) as pool, inject(plan):
            survived = solve_parallel_branch_and_bound(
                random_model(seed), workers=2, pool=pool
            )
            assert pool.respawns >= 1
        assert plan.attempts_seen("solver.parallel_bb.subtree[0]") == 2
        assert survived.status == reference.status
        assert same_objective(survived.objective, reference.objective)
        assert survived.values == reference.values
        assert survived.nodes_explored == reference.nodes_explored

    def test_injected_error_fault_propagates_cleanly(self, tmp_path):
        """A scripted task *error* (not a death) surfaces, not silently."""
        seed = _first_decomposed_seed()
        state = tmp_path / "faults"
        state.mkdir()
        plan = FaultPlan.of(
            state, {"solver.parallel_bb.subtree[1]": FaultSpec(kind="error", times=-1)}
        )
        with inject(plan), pytest.raises(Exception, match="subtree"):
            solve_parallel_branch_and_bound(random_model(seed), workers=1)


class TestWarmSessions:
    def test_warm_parallel_session_matches_cold_serial(self, shared_pool):
        """Descending capacities: warm starts + dual bounds, same answers."""
        with use_pool(shared_pool):
            session = SolveSession("parallel-bb", bb_workers=2, presolve=True)
            for capacity in (24, 18, 14, 9, 5):
                warm = session.solve(knapsack(capacity))
                cold = solve_branch_and_bound(knapsack(capacity))
                assert warm.status == cold.status, capacity
                assert warm.objective == pytest.approx(cold.objective, abs=1e-9), capacity
                assert knapsack(capacity).is_feasible(warm.values, tolerance=1e-6)

    def test_bb_workers_upgrade_of_serial_backend_matches(self):
        """``branch-and-bound`` + ``bb_workers>1`` routes parallel, same answers."""
        session = SolveSession("branch-and-bound", bb_workers=2, presolve=False)
        upgraded = session.solve(knapsack(14))
        cold = solve_branch_and_bound(knapsack(14))
        assert upgraded.backend == "parallel-bb"
        assert upgraded.objective == pytest.approx(cold.objective, abs=1e-9)


class TestEdgeCases:
    def test_infeasible_model(self):
        model = MilpModel("impossible", ObjectiveSense.MAXIMIZE)
        x = model.binary("x")
        model.add_constraint(x + 0.0 >= 2, name="cannot")
        model.set_objective(x * 1)
        solution = solve_parallel_branch_and_bound(model, workers=2)
        assert solution.status is SolutionStatus.INFEASIBLE
        assert np.isnan(solution.objective)
        assert solution.values == {}

    def test_node_budget_truncation_degrades_not_errors(self):
        seed = _first_decomposed_seed()
        solution = solve_parallel_branch_and_bound(
            random_model(seed), workers=1, max_nodes=1
        )
        assert solution.status in (SolutionStatus.FEASIBLE, SolutionStatus.INFEASIBLE)

    def test_backend_stamp(self):
        solution = solve_parallel_branch_and_bound(random_model(1), workers=1)
        assert solution.backend == "parallel-bb"
