"""Exactness of the presolve reduction pipeline.

The property suite solves >= 50 seeded random programs twice — cold,
and through presolve + lift — and requires identical feasibility
verdicts, identical objectives, and lifted assignments the *original*
model verifies as feasible.  The pins exercise each reduction rule on a
hand-built instance where the intended reduction (or, for the dominance
counterexample, its intended absence) is checkable by eye.
"""

import numpy as np
import pytest

from repro.solver import (
    MilpModel,
    ObjectiveSense,
    PresolveStatus,
    SolutionStatus,
    presolve,
    solve,
    solve_presolved,
)

SEEDS = range(60)


def random_program(seed: int) -> MilpModel:
    """A random bounded 0/1-plus-integers program, enumeration-sized."""
    rng = np.random.default_rng(seed)
    num_bin = int(rng.integers(1, 7))
    num_int = int(rng.integers(0, 3))
    sense = ObjectiveSense.MAXIMIZE if rng.random() < 0.5 else ObjectiveSense.MINIMIZE
    model = MilpModel(f"random[{seed}]", sense)
    variables = [model.binary(f"x{i}") for i in range(num_bin)]
    variables += [
        model.integer(f"n{i}", 0, int(rng.integers(1, 4))) for i in range(num_int)
    ]

    for index in range(int(rng.integers(1, 6))):
        coefficients = rng.integers(-4, 5, size=len(variables))
        if not coefficients.any():
            continue
        expression = sum(
            int(k) * v for k, v in zip(coefficients, variables) if k
        )
        rhs = int(rng.integers(-4, 10))
        if rng.random() < 0.7:
            model.add_constraint(expression <= rhs, name=f"c{index}")
        else:
            model.add_constraint(expression >= rhs, name=f"c{index}")

    objective_coefficients = rng.integers(-5, 6, size=len(variables))
    objective = sum(int(k) * v for k, v in zip(objective_coefficients, variables))
    if isinstance(objective, int):
        objective = variables[0] * 0
    model.set_objective(objective)
    return model


@pytest.mark.parametrize("seed", SEEDS)
def test_lifted_solutions_match_cold_solves(seed):
    model = random_program(seed)
    cold = solve(model, "enumeration")
    pre = presolve(model)

    if cold.status is SolutionStatus.INFEASIBLE:
        if pre.status is not PresolveStatus.INFEASIBLE:
            # Presolve may not detect infeasibility itself; the reduced
            # model must then still be infeasible for the backend.
            warm = solve_presolved(model)
            assert warm.status is SolutionStatus.INFEASIBLE
        return

    warm = solve_presolved(model)
    assert warm.status is SolutionStatus.OPTIMAL
    assert warm.objective == pytest.approx(cold.objective, abs=1e-6)
    # The lifted assignment must be feasible in the ORIGINAL model and
    # cover every original variable by name.
    assert model.is_feasible(warm.values, tolerance=1e-6)
    assert set(warm.values) == {v.name for v in model.variables}
    assert model.objective_value(warm.values) == pytest.approx(
        cold.objective, abs=1e-6
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_presolve_shrinks_or_preserves(seed):
    model = random_program(seed)
    pre = presolve(model)
    assert pre.stats.columns_after <= pre.stats.columns_before
    assert pre.stats.rows_after <= pre.stats.rows_before
    if pre.status is PresolveStatus.REDUCED:
        assert pre.reduced is not None
        assert len(pre.reduced.variables) == pre.stats.columns_after


def test_dominated_column_is_fixed_to_zero():
    # Min-cost cover: monitor a covers the step at cost 2, monitor b
    # covers the same step at cost 3.  b can never appear in an optimum
    # a could not be swapped into, so it is dominated and fixed to 0.
    # (A profitable column — negative cost in minimized form — must NOT
    # be droppable this way; that case is the knapsack pin below.)
    model = MilpModel("dominated", ObjectiveSense.MINIMIZE)
    a = model.binary("a")
    b = model.binary("b")
    model.add_constraint(a + b >= 1, name="cover")
    model.set_objective(2 * a + 3 * b)

    pre = presolve(model)
    assert pre.stats.dominated_columns >= 1
    assert pre.fixed.get("b") == 0.0
    warm = solve_presolved(model)
    assert warm.objective == pytest.approx(2.0)
    assert warm.values == {"a": 1.0, "b": 0.0}


def test_dominance_respects_knapsack_counterexample():
    # values (10, 7), weights (3, 4), capacity 8: the optimum takes BOTH
    # items (17).  A dominance rule without the negative-coefficient
    # guard would "eliminate" the second item and report 10.
    model = MilpModel("knapsack-trap", ObjectiveSense.MAXIMIZE)
    x0 = model.binary("x0")
    x1 = model.binary("x1")
    model.add_constraint(3 * x0 + 4 * x1 <= 8, name="cap")
    model.set_objective(10 * x0 + 7 * x1)

    warm = solve_presolved(model)
    assert warm.objective == pytest.approx(17.0)
    assert warm.values == {"x0": 1.0, "x1": 1.0}


def test_duplicate_rows_are_merged():
    model = MilpModel("dupes", ObjectiveSense.MAXIMIZE)
    x = [model.binary(f"x{i}") for i in range(3)]
    total = x[0] + x[1] + x[2]
    model.add_constraint(total <= 2, name="first")
    model.add_constraint(total <= 1, name="tighter-twin")
    model.set_objective(x[0] + 2 * x[1] + 3 * x[2])

    pre = presolve(model)
    assert pre.stats.duplicate_rows >= 1
    warm = solve_presolved(model)
    # The surviving merged row must keep the TIGHTER rhs.
    assert warm.objective == pytest.approx(3.0)


def test_forced_fixing_via_singleton_row():
    model = MilpModel("forced", ObjectiveSense.MINIMIZE)
    x = model.binary("x")
    y = model.binary("y")
    model.add_constraint(x + 0.0 >= 1, name="must-deploy")
    model.add_constraint(x + y >= 1, name="cover")
    model.set_objective(3 * x + 2 * y)

    pre = presolve(model)
    assert pre.stats.forced_fixings >= 1
    assert pre.fixed.get("x") == 1.0
    warm = solve_presolved(model)
    assert warm.objective == pytest.approx(3.0)
    assert warm.values == {"x": 1.0, "y": 0.0}


def test_fully_solved_by_presolve():
    model = MilpModel("trivial", ObjectiveSense.MAXIMIZE)
    x = model.binary("x")
    model.add_constraint(x + 0.0 >= 1, name="force")
    model.set_objective(4 * x)

    pre = presolve(model)
    assert pre.status is PresolveStatus.SOLVED
    assert pre.reduced is None
    assert pre.lift({}) == {"x": 1.0}
    warm = solve_presolved(model)
    assert warm.status is SolutionStatus.OPTIMAL
    assert warm.objective == pytest.approx(4.0)
    assert warm.backend == "presolve"


def test_infeasibility_detected():
    model = MilpModel("impossible", ObjectiveSense.MAXIMIZE)
    x = model.binary("x")
    model.add_constraint(x + 0.0 >= 2, name="cannot")
    model.set_objective(x * 1)

    pre = presolve(model)
    assert pre.status is PresolveStatus.INFEASIBLE
    warm = solve_presolved(model)
    assert warm.status is SolutionStatus.INFEASIBLE


def test_redundant_row_dropped():
    model = MilpModel("redundant", ObjectiveSense.MAXIMIZE)
    x = [model.binary(f"x{i}") for i in range(3)]
    model.add_constraint(x[0] + x[1] + x[2] <= 10, name="never-binds")
    model.add_constraint(x[0] + x[1] <= 1, name="binds")
    model.set_objective(x[0] + x[1] + x[2])

    pre = presolve(model)
    assert pre.stats.redundant_rows >= 1
    warm = solve_presolved(model)
    assert warm.objective == pytest.approx(2.0)


def test_lift_solution_preserves_backend_and_status():
    model = MilpModel("lifted", ObjectiveSense.MAXIMIZE)
    x = model.binary("x")
    y = model.binary("y")
    model.add_constraint(x + 0.0 >= 1, name="force-x")
    model.add_constraint(x + y <= 1, name="exclusive")
    model.set_objective(2 * x + 3 * y)

    warm = solve_presolved(model, backend="branch-and-bound")
    assert warm.status is SolutionStatus.OPTIMAL
    assert warm.values == {"x": 1.0, "y": 0.0}
    assert model.is_feasible(warm.values)


def test_stats_to_dict_round_trips():
    model = random_program(3)
    pre = presolve(model)
    payload = pre.stats.to_dict()
    assert payload["columns_before"] == pre.stats.columns_before
    assert payload["rows_before"] == pre.stats.rows_before
    assert all(isinstance(v, int) for v in payload.values())
