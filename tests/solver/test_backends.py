"""Tests for the three solver backends on known instances."""

import numpy as np
import pytest

from repro.errors import SolverError, UnboundedError
from repro.solver import MilpModel, ObjectiveSense, SolutionStatus, solve
from repro.solver.enumerate import MAX_INTEGER_VARIABLES, solve_by_enumeration
from repro.solver.lp import solve_lp
from tests.conftest import knapsack_model, set_cover_model

BACKENDS = ["scipy", "branch-and-bound", "enumeration"]


class TestLp:
    def test_simple_lp(self):
        # max x + y st x + y <= 1.5, 0 <= x,y <= 1 -> 1.5
        result = solve_lp(
            c=np.array([-1.0, -1.0]),
            A_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([1.5]),
            A_eq=np.empty((0, 2)),
            b_eq=np.empty(0),
            lower=np.zeros(2),
            upper=np.ones(2),
        )
        assert result.is_optimal
        assert result.objective == pytest.approx(-1.5)

    def test_infeasible_lp(self):
        result = solve_lp(
            c=np.array([1.0]),
            A_ub=np.array([[1.0], [-1.0]]),
            b_ub=np.array([0.0, -1.0]),  # x <= 0 and x >= 1
            A_eq=np.empty((0, 1)),
            b_eq=np.empty(0),
            lower=np.zeros(1),
            upper=np.ones(1),
        )
        assert result.status == "infeasible"

    def test_unbounded_lp(self):
        result = solve_lp(
            c=np.array([-1.0]),
            A_ub=np.empty((0, 1)),
            b_ub=np.empty(0),
            A_eq=np.empty((0, 1)),
            b_eq=np.empty(0),
            lower=np.zeros(1),
            upper=np.array([np.inf]),
        )
        assert result.status == "unbounded"


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendsAgree:
    def test_knapsack_optimum(self, backend):
        solution = solve(knapsack_model(), backend)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(25.0)

    def test_set_cover_optimum(self, backend):
        solution = solve(set_cover_model(), backend)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(5.0)
        assert solution.value("A") == 1.0
        assert solution.value("B") == 0.0
        assert solution.value("C") == 1.0

    def test_infeasible(self, backend):
        model = MilpModel()
        x = model.binary("x")
        model.add_constraint(x >= 2)
        model.set_objective(x + 0.0)
        assert solve(model, backend).status is SolutionStatus.INFEASIBLE

    def test_solution_is_feasible(self, backend):
        model = knapsack_model()
        solution = solve(model, backend)
        assert model.is_feasible(solution.values)

    def test_mixed_integer_continuous(self, backend):
        # max 3x + z st 2x + z <= 3, z <= 1.5: x=1 (int), z=1 -> 4
        model = MilpModel()
        x = model.integer("x", 0, 5)
        z = model.continuous("z", 0, 1.5)
        model.add_constraint(2 * x + z <= 3)
        model.set_objective(3 * x + z)
        solution = solve(model, backend)
        assert solution.objective == pytest.approx(4.0)
        assert solution.value(x) == pytest.approx(1.0)

    def test_minimization_with_constant(self, backend):
        model = MilpModel(sense=ObjectiveSense.MINIMIZE)
        x = model.binary("x")
        model.add_constraint(x >= 1)
        model.set_objective(2 * x + 10)
        assert solve(model, backend).objective == pytest.approx(12.0)


class TestBackendSpecifics:
    def test_unknown_backend(self):
        with pytest.raises(SolverError, match="unknown backend"):
            solve(knapsack_model(), "cplex")

    def test_unbounded_raises(self):
        model = MilpModel(sense=ObjectiveSense.MAXIMIZE)
        z = model.continuous("z", 0, float("inf"))
        model.set_objective(z + 0.0)
        with pytest.raises(UnboundedError):
            solve(model, "scipy")
        with pytest.raises(UnboundedError):
            solve(model, "branch-and-bound")

    def test_enumeration_refuses_large_models(self):
        model = MilpModel()
        x = [model.binary(f"x{i}") for i in range(MAX_INTEGER_VARIABLES + 1)]
        model.set_objective(sum(x, start=x[0] * 0))
        with pytest.raises(SolverError, match="at most"):
            solve_by_enumeration(model)

    def test_enumeration_refuses_unbounded_integers(self):
        model = MilpModel()
        x = model.integer("x", 0, float("inf"))
        model.set_objective(-1 * x)
        with pytest.raises(SolverError, match="finite bounds"):
            solve_by_enumeration(model)

    def test_bnb_reports_nodes(self):
        solution = solve(knapsack_model(), "branch-and-bound")
        assert solution.nodes_explored >= 1

    def test_bnb_time_limit_returns_incumbent_or_infeasible(self):
        solution = solve(knapsack_model(), "branch-and-bound", time_limit=1e-9)
        assert solution.status in (
            SolutionStatus.OPTIMAL,  # may finish within the first node
            SolutionStatus.FEASIBLE,
            SolutionStatus.INFEASIBLE,
        )

    def test_empty_model_solves(self):
        model = MilpModel()
        x = model.binary("x")
        model.set_objective(x * 0)
        solution = solve(model, "scipy")
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(0.0)
