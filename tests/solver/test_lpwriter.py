"""Tests for LP-format model export."""

import pytest

from repro.solver import MilpModel, ObjectiveSense, model_to_lp_string


@pytest.fixture()
def model():
    m = MilpModel("demo")
    x = m.binary("x[nids@fw]")
    y = m.integer("y", 0, 5)
    z = m.continuous("z", 0, 1.5)
    m.add_constraint(2 * x + y + 0.5 * z <= 4, name="budget[cpu]")
    m.add_constraint(x + y >= 1)
    m.add_constraint(z + 0.0 == 0.5, name="fix z")
    m.set_objective(3 * x + y + z)
    return m


class TestStructure:
    def test_sections_in_order(self, model):
        text = model_to_lp_string(model)
        positions = [text.index(section) for section in
                     ("Maximize", "Subject To", "Bounds", "General", "Binary", "End")]
        assert positions == sorted(positions)

    def test_minimize_header(self):
        m = MilpModel("min", ObjectiveSense.MINIMIZE)
        x = m.binary("x")
        m.set_objective(x + 0.0)
        assert "Minimize" in model_to_lp_string(m)

    def test_constraint_senses(self, model):
        text = model_to_lp_string(model)
        assert "<= 4" in text
        assert ">= 1" in text
        assert "= 0.5" in text

    def test_named_and_default_labels(self, model):
        text = model_to_lp_string(model)
        assert "budget_cpu_:" in text
        assert "c1:" in text  # unnamed constraint gets an index label

    def test_binary_not_in_bounds(self, model):
        text = model_to_lp_string(model)
        bounds = text.split("Bounds")[1].split("General")[0]
        assert "x_nids" not in bounds
        assert "0 <= y <= 5" in bounds
        assert "0 <= z <= 1.5" in bounds

    def test_objective_offset_comment(self):
        m = MilpModel("offset")
        x = m.binary("x")
        m.set_objective(x + 7.0)
        assert "objective offset" in model_to_lp_string(m)
        assert "7" in model_to_lp_string(m)

    def test_ends_with_end(self, model):
        assert model_to_lp_string(model).rstrip().endswith("End")


class TestNameSanitization:
    def test_invalid_characters_replaced(self, model):
        text = model_to_lp_string(model)
        assert "x[nids@fw]" not in text
        assert "x_nids_fw_" in text

    def test_collisions_get_suffixes(self):
        m = MilpModel("collide")
        a = m.binary("x@1")
        b = m.binary("x 1")  # sanitizes to the same "x_1"
        m.add_constraint(a + b <= 1)
        m.set_objective(a + b)
        text = model_to_lp_string(m)
        assert "x_1 " in text or "x_1\n" in text
        assert "x_1_2" in text

    def test_leading_digit_prefixed(self):
        m = MilpModel("digit")
        x = m.binary("1st")
        m.set_objective(x + 0.0)
        assert "v_1st" in model_to_lp_string(m)


class TestRealFormulation:
    def test_case_study_exports(self, web_model):
        from repro.metrics.cost import Budget
        from repro.optimize.problem import MaxUtilityProblem

        milp, _ = MaxUtilityProblem(
            web_model, Budget.fraction_of_total(web_model, 0.2)
        ).build()
        text = model_to_lp_string(milp)
        assert text.count("\n") > milp.num_constraints  # every row emitted
        assert "Binary" in text
        assert "budget_cpu_" in text.replace("budget_cpu_:", "budget_cpu_:")
