"""Structural tests for the SCADA substation case study."""

import pytest

from repro.casestudy import scada_substation
from repro.core import MonitorScope, audit_model, model_to_dict
from repro.metrics.coverage import fully_covered_attacks
from repro.metrics.cost import Budget
from repro.optimize.problem import MaxUtilityProblem


@pytest.fixture(scope="module")
def scada_model():
    return scada_substation()


class TestStructure:
    def test_counts(self, scada_model):
        stats = scada_model.stats()
        assert stats["assets"] == 12
        assert stats["attacks"] == 7
        assert stats["monitors"] >= 20

    def test_topology_connected(self, scada_model):
        assert len(scada_model.topology.connected_components()) == 1

    def test_deterministic(self, scada_model):
        assert model_to_dict(scada_substation()) == model_to_dict(scada_model)

    def test_every_attack_fully_coverable(self, scada_model):
        everything = frozenset(scada_model.monitors)
        assert fully_covered_attacks(scada_model, everything) == frozenset(
            scada_model.attacks
        )

    def test_no_uncoverable_events(self, scada_model):
        codes = {f.code for f in audit_model(scada_model)}
        assert "uncoverable-event" not in codes
        assert "uncoverable-attack" not in codes

    def test_zones_partition_it_ot(self, scada_model):
        field = {a.asset_id for a in scada_model.topology.assets_in_zone("field")}
        assert {"wan-gw", "rtu-1", "rtu-2", "plc-1", "relay-1"} == field


class TestSharedKillChains:
    def test_rtu_compromise_shared(self, scada_model):
        users = scada_model.attacks_using_event("rtu-compromise@rtu-1")
        assert users == frozenset({"false-data-injection", "it-ot-lateral"})

    def test_rogue_command_shared(self, scada_model):
        users = scada_model.attacks_using_event("rogue-control-cmd@scada-fe")
        assert users == frozenset({"unauthorized-control", "insider-misuse"})


class TestScopeSemantics:
    def test_field_events_invisible_to_control_host_monitors(self, scada_model):
        providers = scada_model.monitors_for_event("breaker-trip@relay-1")
        for monitor_id in providers:
            monitor = scada_model.monitor(monitor_id)
            mtype = scada_model.monitor_type(monitor.monitor_type_id)
            if mtype.scope is MonitorScope.HOST:
                assert monitor.asset_id in ("relay-1", "rtu-1")

    def test_wan_gateway_nids_sees_field_devices(self, scada_model):
        providers = scada_model.monitors_for_event("falsified-telemetry@wan-gw")
        assert "ics_nids@wan-gw" in providers


class TestOptimization:
    def test_optimal_deployment_within_budget(self, scada_model):
        budget = Budget.fraction_of_total(scada_model, 0.3)
        result = MaxUtilityProblem(scada_model, budget).solve()
        assert result.optimal
        assert budget.allows(result.deployment.cost())
        assert result.utility > 0.4

    def test_relay_logger_selected_for_control_attacks(self, scada_model):
        # The relay event log is the only strong evidence for breaker
        # trips; any reasonable budget should buy it.
        budget = Budget.fraction_of_total(scada_model, 0.4)
        result = MaxUtilityProblem(scada_model, budget).solve()
        assert "relay_logger@relay-1" in result.monitor_ids
