"""Tests for the synthetic scaling-model generator."""

import pytest

from repro.casestudy import ScalingConfig, synthetic_model
from repro.core import model_to_dict
from repro.errors import ModelError


class TestDeterminism:
    def test_same_seed_same_model(self):
        a = synthetic_model(monitors=20, attacks=10, seed=42)
        b = synthetic_model(monitors=20, attacks=10, seed=42)
        assert model_to_dict(a) == model_to_dict(b)

    def test_different_seed_different_model(self):
        a = synthetic_model(monitors=20, attacks=10, seed=1)
        b = synthetic_model(monitors=20, attacks=10, seed=2)
        assert model_to_dict(a) != model_to_dict(b)

    def test_config_object_equivalent_to_kwargs(self):
        config = ScalingConfig(monitors=15, attacks=5, seed=9)
        assert model_to_dict(synthetic_model(config)) == model_to_dict(
            synthetic_model(monitors=15, attacks=5, seed=9)
        )

    def test_config_and_overrides_mutually_exclusive(self):
        with pytest.raises(ModelError):
            synthetic_model(ScalingConfig(), monitors=5)


class TestSizeControl:
    @pytest.mark.parametrize("monitors", [5, 50, 150])
    def test_monitor_count_exact(self, monitors):
        model = synthetic_model(monitors=monitors, attacks=10, seed=0)
        assert model.stats()["monitors"] == monitors

    @pytest.mark.parametrize("attacks", [1, 25, 100])
    def test_attack_count_exact(self, attacks):
        model = synthetic_model(monitors=20, attacks=attacks, seed=0)
        assert model.stats()["attacks"] == attacks

    def test_default_event_pool_is_twice_attacks(self):
        model = synthetic_model(monitors=20, attacks=10, seed=0)
        assert model.stats()["events"] == 20

    def test_explicit_event_pool(self):
        model = synthetic_model(monitors=20, attacks=10, events=7, seed=0)
        assert model.stats()["events"] == 7

    def test_too_many_monitors_rejected(self):
        with pytest.raises(ModelError, match="cannot place"):
            synthetic_model(assets=3, monitor_types=2, monitors=7, attacks=2, seed=0)


class TestStructure:
    def test_topology_connected(self):
        model = synthetic_model(monitors=30, attacks=10, seed=3)
        assert len(model.topology.connected_components()) == 1

    def test_monitors_are_distinct_placements(self):
        model = synthetic_model(monitors=40, attacks=10, seed=4)
        placements = {
            (m.monitor_type_id, m.asset_id) for m in model.monitors.values()
        }
        assert len(placements) == 40

    def test_attack_steps_reference_pool_events(self):
        model = synthetic_model(monitors=20, attacks=15, seed=5)
        for attack in model.attacks.values():
            for step in attack.steps:
                assert step.event_id in model.events

    def test_validates_cleanly(self):
        # Construction itself runs SystemModel integrity checks; reaching
        # here without ValidationError is the assertion.
        model = synthetic_model(monitors=60, attacks=40, seed=6)
        assert model.stats()["monitors"] == 60

    @pytest.mark.parametrize("bad_kwargs", [
        {"assets": 1},
        {"monitors": 0},
        {"attacks": 0},
        {"min_steps": 0},
        {"min_steps": 4, "max_steps": 2},
        {"network_monitor_fraction": 1.5},
    ])
    def test_invalid_configs_rejected(self, bad_kwargs):
        with pytest.raises(ModelError):
            synthetic_model(**bad_kwargs)
