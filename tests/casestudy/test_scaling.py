"""Tests for the synthetic scaling-model generator."""

import pytest

from repro.casestudy import ScalingConfig, synthetic_model
from repro.core import model_to_dict
from repro.errors import ModelError


class TestDeterminism:
    def test_same_seed_same_model(self):
        a = synthetic_model(monitors=20, attacks=10, seed=42)
        b = synthetic_model(monitors=20, attacks=10, seed=42)
        assert model_to_dict(a) == model_to_dict(b)

    def test_different_seed_different_model(self):
        a = synthetic_model(monitors=20, attacks=10, seed=1)
        b = synthetic_model(monitors=20, attacks=10, seed=2)
        assert model_to_dict(a) != model_to_dict(b)

    def test_config_object_equivalent_to_kwargs(self):
        config = ScalingConfig(monitors=15, attacks=5, seed=9)
        assert model_to_dict(synthetic_model(config)) == model_to_dict(
            synthetic_model(monitors=15, attacks=5, seed=9)
        )

    def test_config_and_overrides_mutually_exclusive(self):
        with pytest.raises(ModelError):
            synthetic_model(ScalingConfig(), monitors=5)


class TestSizeControl:
    @pytest.mark.parametrize("monitors", [5, 50, 150])
    def test_monitor_count_exact(self, monitors):
        model = synthetic_model(monitors=monitors, attacks=10, seed=0)
        assert model.stats()["monitors"] == monitors

    @pytest.mark.parametrize("attacks", [1, 25, 100])
    def test_attack_count_exact(self, attacks):
        model = synthetic_model(monitors=20, attacks=attacks, seed=0)
        assert model.stats()["attacks"] == attacks

    def test_default_event_pool_is_twice_attacks(self):
        model = synthetic_model(monitors=20, attacks=10, seed=0)
        assert model.stats()["events"] == 20

    def test_explicit_event_pool(self):
        model = synthetic_model(monitors=20, attacks=10, events=7, seed=0)
        assert model.stats()["events"] == 7

    def test_too_many_monitors_rejected(self):
        with pytest.raises(ModelError, match="cannot place"):
            synthetic_model(assets=3, monitor_types=2, monitors=7, attacks=2, seed=0)


class TestStructure:
    def test_topology_connected(self):
        model = synthetic_model(monitors=30, attacks=10, seed=3)
        assert len(model.topology.connected_components()) == 1

    def test_monitors_are_distinct_placements(self):
        model = synthetic_model(monitors=40, attacks=10, seed=4)
        placements = {
            (m.monitor_type_id, m.asset_id) for m in model.monitors.values()
        }
        assert len(placements) == 40

    def test_attack_steps_reference_pool_events(self):
        model = synthetic_model(monitors=20, attacks=15, seed=5)
        for attack in model.attacks.values():
            for step in attack.steps:
                assert step.event_id in model.events

    def test_validates_cleanly(self):
        # Construction itself runs SystemModel integrity checks; reaching
        # here without ValidationError is the assertion.
        model = synthetic_model(monitors=60, attacks=40, seed=6)
        assert model.stats()["monitors"] == 60

    @pytest.mark.parametrize("bad_kwargs", [
        {"assets": 1},
        {"monitors": 0},
        {"attacks": 0},
        {"min_steps": 0},
        {"min_steps": 4, "max_steps": 2},
        {"network_monitor_fraction": 1.5},
    ])
    def test_invalid_configs_rejected(self, bad_kwargs):
        with pytest.raises(ModelError):
            synthetic_model(**bad_kwargs)


class TestMultizoneTopology:
    def multizone(self, **overrides):
        kwargs = dict(
            assets=24,
            monitor_types=10,
            monitors=80,
            attacks=12,
            seed=7,
            topology="multizone",
            zones=4,
        )
        kwargs.update(overrides)
        return synthetic_model(**kwargs)

    def test_deterministic_and_seed_sensitive(self):
        assert model_to_dict(self.multizone()) == model_to_dict(self.multizone())
        assert model_to_dict(self.multizone()) != model_to_dict(self.multizone(seed=8))

    def test_flat_default_is_unchanged_by_the_topology_knob(self):
        # topology="flat" is the default; spelling it out must be a no-op
        # (the multizone branch never perturbs the historical generator).
        implicit = synthetic_model(monitors=20, attacks=10, seed=42)
        explicit = synthetic_model(monitors=20, attacks=10, seed=42, topology="flat")
        assert model_to_dict(implicit) == model_to_dict(explicit)

    def test_zone_graph_stays_connected(self):
        model = self.multizone()
        assert len(model.topology.connected_components()) == 1

    def test_each_zone_offers_a_strict_type_subset(self):
        config = ScalingConfig(
            assets=24, monitor_types=10, monitors=80, attacks=12,
            seed=7, topology="multizone", zones=4,
        )
        model = synthetic_model(config)
        zone_of = [i * config.zones // config.assets for i in range(config.assets)]
        types_by_zone: dict[int, set[str]] = {}
        for monitor in model.monitors.values():
            asset_index = int(monitor.asset_id.split("-")[1])
            types_by_zone.setdefault(zone_of[asset_index], set()).add(
                monitor.monitor_type_id
            )
        assert config.types_per_zone < config.monitor_types
        for placed_types in types_by_zone.values():
            assert len(placed_types) <= config.types_per_zone

    def test_monitor_count_exact_and_placements_distinct(self):
        model = self.multizone(monitors=100)
        assert model.stats()["monitors"] == 100
        placements = {
            (m.monitor_type_id, m.asset_id) for m in model.monitors.values()
        }
        assert len(placements) == 100

    def test_overfull_catalog_rejected_with_placement_arithmetic(self):
        # 24 assets x 7 zone-offered types = 168 placements; asking for
        # more must fail at config time with the arithmetic spelled out.
        with pytest.raises(ModelError, match="168 zone-compatible"):
            self.multizone(monitors=169)

    @pytest.mark.parametrize("zones", [1, 25])
    def test_degenerate_zone_counts_rejected(self, zones):
        with pytest.raises(ModelError, match="2 <= zones <= assets"):
            self.multizone(zones=zones)
