"""Structural tests for the enterprise Web service case study."""

import pytest

from repro.casestudy import ATTACK_CLASSES, enterprise_web_service
from repro.core import MonitorScope
from repro.errors import ModelError
from repro.metrics.coverage import fully_covered_attacks


class TestStructure:
    def test_default_scale(self, web_model):
        stats = web_model.stats()
        assert stats["assets"] == 12
        assert stats["monitor_types"] == 12
        assert stats["data_types"] == 15
        assert stats["monitors"] > 40
        assert stats["attacks"] == 26

    def test_attack_count_matches_catalog(self, web_model):
        per_web = sum(1 for _, _, per in ATTACK_CLASSES if per)
        global_attacks = sum(1 for _, _, per in ATTACK_CLASSES if not per)
        assert len(web_model.attacks) == 2 * per_web + global_attacks

    def test_topology_connected(self, web_model):
        assert len(web_model.topology.connected_components()) == 1

    def test_zones(self, web_model):
        dmz = {a.asset_id for a in web_model.topology.assets_in_zone("dmz")}
        assert dmz == {"lb-1", "web-1", "web-2"}

    def test_every_attack_fully_coverable(self, web_model):
        everything = frozenset(web_model.monitors)
        assert fully_covered_attacks(web_model, everything) == frozenset(web_model.attacks)

    def test_every_event_belongs_to_an_attack(self, web_model):
        for event_id in web_model.events:
            assert web_model.attacks_using_event(event_id), event_id

    def test_every_monitor_cost_positive(self, web_model):
        for monitor_id in web_model.monitors:
            assert web_model.monitor_cost(monitor_id).scalarize() > 0, monitor_id

    def test_network_monitors_on_fabric_only(self, web_model):
        for monitor in web_model.monitors.values():
            mtype = web_model.monitor_type(monitor.monitor_type_id)
            if mtype.scope is MonitorScope.NETWORK:
                kind = web_model.topology.asset(monitor.asset_id).kind
                assert kind.is_network_fabric(), monitor.monitor_id

    def test_ldap_logger_only_on_directory_server(self, web_model):
        placements = [
            m.asset_id
            for m in web_model.monitors.values()
            if m.monitor_type_id == "ldap_logger"
        ]
        assert placements == ["auth-1"]

    def test_shared_recon_events(self, web_model):
        # The perimeter port scan is shared by both per-web SQL injections.
        users = web_model.attacks_using_event("port-scan@fw-edge")
        assert {"sql-injection@web-1", "sql-injection@web-2"} <= users


class TestParameterization:
    def test_single_web_server(self):
        model = enterprise_web_service(web_servers=1)
        assert "web-1" in model.assets
        assert "web-2" not in model.assets
        per_web = sum(1 for _, _, per in ATTACK_CLASSES if per)
        global_attacks = len(ATTACK_CLASSES) - per_web
        assert len(model.attacks) == per_web + global_attacks

    def test_three_web_servers_scale_attacks(self):
        model = enterprise_web_service(web_servers=3)
        assert "sql-injection@web-3" in model.attacks

    def test_app_server_count(self):
        model = enterprise_web_service(app_servers=3)
        assert "app-3" in model.assets

    def test_invalid_counts_rejected(self):
        with pytest.raises(ModelError):
            enterprise_web_service(web_servers=0)
        with pytest.raises(ModelError):
            enterprise_web_service(app_servers=0)

    def test_deterministic_construction(self, web_model):
        from repro.core import model_to_dict

        again = enterprise_web_service()
        assert model_to_dict(again) == model_to_dict(web_model)


class TestEvidenceSemantics:
    def test_db_events_only_visible_to_db_and_network_monitors(self, web_model):
        providers = web_model.monitors_for_event("db-query-anomaly@db-1")
        for monitor_id in providers:
            monitor = web_model.monitor(monitor_id)
            mtype = web_model.monitor_type(monitor.monitor_type_id)
            if mtype.scope is MonitorScope.HOST:
                assert monitor.asset_id == "db-1", monitor_id

    def test_web_host_events_not_visible_from_other_web_host(self, web_model):
        providers = web_model.monitors_for_event("webshell-exec@web-1")
        host_monitors = [
            m for m in providers if web_model.monitor(m).asset_id not in ("web-1",)
        ]
        # webshell-exec is evidenced by host-level data only.
        assert not host_monitors

    def test_waf_sees_both_web_servers(self, web_model):
        # waf@lb-1 is network-scoped; lb-1 links to web-1 and web-2.
        assert "waf@lb-1" in web_model.monitors_for_event("sqli-request@web-1")
        assert "waf@lb-1" in web_model.monitors_for_event("sqli-request@web-2")

    def test_firewall_logger_at_edge_sees_perimeter_events(self, web_model):
        assert "firewall_logger@fw-edge" in web_model.monitors_for_event("port-scan@fw-edge")
