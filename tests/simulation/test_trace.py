"""Tests for campaign trace export/import."""

import pytest

from repro.errors import SerializationError
from repro.optimize.deployment import Deployment
from repro.simulation.campaign import run_campaign
from repro.simulation.forensics import reconstruct
from repro.simulation.trace import (
    jsonl_to_observations,
    load_trace,
    observations_to_jsonl,
    save_trace,
)


@pytest.fixture()
def campaign(toy_model):
    return run_campaign(
        toy_model,
        Deployment.full(toy_model),
        repetitions=3,
        seed=5,
        keep_observations=True,
    )


class TestRoundTrip:
    def test_jsonl_round_trip(self, campaign):
        text = observations_to_jsonl(campaign.records)
        loaded = jsonl_to_observations(text)
        assert sorted(loaded, key=lambda o: (o.time, o.run_id, o.monitor_id)) == sorted(
            campaign.records, key=lambda o: (o.time, o.run_id, o.monitor_id)
        )

    def test_file_round_trip(self, campaign, tmp_path):
        path = tmp_path / "trace.jsonl"
        written = save_trace(campaign, path)
        assert written == len(campaign.records) == campaign.observations
        assert len(load_trace(path)) == written

    def test_trace_is_time_ordered(self, campaign):
        loaded = jsonl_to_observations(observations_to_jsonl(campaign.records))
        times = [o.time for o in loaded]
        assert times == sorted(times)

    def test_empty_trace(self):
        assert observations_to_jsonl([]) == ""
        assert jsonl_to_observations("") == []


class TestRescoring:
    def test_loaded_trace_rescoreable(self, toy_model, campaign, tmp_path):
        """Forensic reconstruction from a saved trace matches the live one."""
        path = tmp_path / "trace.jsonl"
        save_trace(campaign, path)
        loaded = load_trace(path)
        for run in campaign.runs:
            report = reconstruct(toy_model, run.run_id, run.attack_id, loaded)
            assert report.step_completeness == pytest.approx(
                run.forensics.step_completeness
            )
            assert report.field_completeness == pytest.approx(
                run.forensics.field_completeness
            )


class TestErrors:
    def test_campaign_without_records_refused(self, toy_model, tmp_path):
        campaign = run_campaign(
            toy_model, Deployment.full(toy_model), repetitions=1, seed=0
        )
        with pytest.raises(SerializationError, match="keep_observations"):
            save_trace(campaign, tmp_path / "trace.jsonl")

    def test_malformed_line_reports_number(self):
        text = '{"time": 1.0}\nnot json\n'
        with pytest.raises(SerializationError, match="line 1"):
            jsonl_to_observations(text)

    def test_blank_lines_skipped(self, campaign):
        text = "\n" + observations_to_jsonl(campaign.records) + "\n\n"
        assert len(jsonl_to_observations(text)) == len(campaign.records)


class TestDefaultBehaviour:
    def test_records_empty_by_default(self, toy_model):
        campaign = run_campaign(
            toy_model, Deployment.full(toy_model), repetitions=1, seed=0
        )
        assert campaign.records == ()
        assert campaign.observations > 0  # the count is still reported
