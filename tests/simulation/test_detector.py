"""Tests for the evidence-accumulation detector."""

import pytest

from repro.simulation.detector import EvidenceAccumulationDetector
from repro.simulation.records import Observation


def obs(event_id, weight, *, run_id=0, attack_id="A", monitor_id="m1", time=1.0):
    return Observation(
        run_id=run_id,
        monitor_id=monitor_id,
        data_type_id="dt",
        event_id=event_id,
        attack_id=attack_id,
        time=time,
        weight=weight,
    )


class TestScoring:
    def test_score_is_weighted_realized_coverage(self, toy_model):
        detector = EvidenceAccumulationDetector(toy_model, threshold=0.99)
        detector.consume(obs("e1", 0.5))
        # A = (e1, e2) equal weights: score = 0.5 / 2
        assert detector.score_of(0, "A") == pytest.approx(0.25)

    def test_best_weight_per_event_kept(self, toy_model):
        detector = EvidenceAccumulationDetector(toy_model, threshold=0.99)
        detector.consume(obs("e1", 0.5, monitor_id="weak"))
        detector.consume(obs("e1", 1.0, monitor_id="strong"))
        detector.consume(obs("e1", 0.3, monitor_id="weaker"))
        assert detector.score_of(0, "A") == pytest.approx(0.5)

    def test_unseen_run_scores_zero(self, toy_model):
        detector = EvidenceAccumulationDetector(toy_model)
        assert detector.score_of(99, "A") == 0.0


class TestDetection:
    def test_threshold_crossing_emits_once(self, toy_model):
        detector = EvidenceAccumulationDetector(toy_model, threshold=0.5)
        assert detector.consume(obs("e1", 0.6, time=5.0)) is None  # 0.3 < 0.5
        verdict = detector.consume(obs("e2", 0.8, time=9.0))  # 0.7 >= 0.5
        assert verdict is not None
        assert verdict.time == 9.0
        assert verdict.score >= 0.5
        # further evidence does not re-trigger
        assert detector.consume(obs("e2", 1.0, time=10.0)) is None
        assert len(detector.detections) == 1

    def test_contributing_monitors_recorded(self, toy_model):
        detector = EvidenceAccumulationDetector(toy_model, threshold=0.5)
        detector.consume(obs("e1", 0.6, monitor_id="alpha"))
        verdict = detector.consume(obs("e2", 0.8, monitor_id="beta"))
        assert verdict.contributing_monitors == frozenset({"alpha", "beta"})

    def test_runs_tracked_independently(self, toy_model):
        detector = EvidenceAccumulationDetector(toy_model, threshold=0.4)
        detector.consume(obs("e1", 1.0, run_id=1))
        assert detector.was_detected(1, "A")
        assert not detector.was_detected(2, "A")

    def test_step_weights_respected(self, toy_model):
        # B = (e2 weight 2, e3 weight 1): e3 alone scores 1/3.
        detector = EvidenceAccumulationDetector(toy_model, threshold=0.5)
        detector.consume(obs("e3", 1.0, attack_id="B"))
        assert detector.score_of(0, "B") == pytest.approx(1 / 3)
        assert not detector.was_detected(0, "B")
        detector.consume(obs("e2", 1.0, attack_id="B"))
        assert detector.was_detected(0, "B")

    @pytest.mark.parametrize("threshold", [0.0, -0.5, 1.01])
    def test_invalid_threshold_rejected(self, toy_model, threshold):
        with pytest.raises(ValueError):
            EvidenceAccumulationDetector(toy_model, threshold)


class TestSequencedDetector:
    def _detector(self, toy_model, threshold=0.99):
        from repro.simulation.detector import SequencedEvidenceDetector

        return SequencedEvidenceDetector(toy_model, threshold)

    def test_out_of_chain_evidence_not_credited(self, toy_model):
        # A = (e1 required, e2 required): e2 alone scores 0 — the chain
        # is not established without e1.
        detector = self._detector(toy_model)
        detector.consume(obs("e2", 1.0))
        assert detector.score_of(0, "A") == 0.0

    def test_in_order_evidence_credited(self, toy_model):
        detector = self._detector(toy_model)
        detector.consume(obs("e1", 1.0))
        assert detector.score_of(0, "A") == pytest.approx(0.5)
        detector.consume(obs("e2", 0.8))
        assert detector.score_of(0, "A") == pytest.approx(0.9)

    def test_late_early_step_restores_chain(self, toy_model):
        """Observation order doesn't matter — only what has been seen."""
        detector = self._detector(toy_model)
        detector.consume(obs("e2", 0.8))
        detector.consume(obs("e1", 1.0))
        assert detector.score_of(0, "A") == pytest.approx(0.9)

    def test_optional_step_does_not_block(self, toy_model):
        # B = (e2 required w2, e3 optional w1): e2 alone scores 2/3;
        # a missing optional step never breaks the chain.
        detector = self._detector(toy_model)
        detector.consume(obs("e2", 1.0, attack_id="B"))
        assert detector.score_of(0, "B") == pytest.approx(2 / 3)

    def test_never_more_sensitive_than_plain(self, toy_model):
        from repro.simulation.detector import EvidenceAccumulationDetector

        plain = EvidenceAccumulationDetector(toy_model, 0.99)
        sequenced = self._detector(toy_model)
        for event_id, weight in (("e2", 1.0), ("e1", 0.5), ("e3", 0.6)):
            for attack_id in ("A", "B"):
                observation = obs(event_id, weight, attack_id=attack_id)
                plain.consume(observation)
                sequenced.consume(observation)
        for attack_id in ("A", "B"):
            assert sequenced.score_of(0, attack_id) <= plain.score_of(0, attack_id) + 1e-12


class TestSequencedCampaign:
    def test_sequenced_flag_never_detects_more(self, toy_model):
        from repro.optimize.deployment import Deployment
        from repro.simulation.campaign import run_campaign

        deployment = Deployment.full(toy_model)
        plain = run_campaign(toy_model, deployment, repetitions=10, seed=3)
        sequenced = run_campaign(
            toy_model, deployment, repetitions=10, seed=3, sequenced=True
        )
        assert sequenced.detection_rate <= plain.detection_rate + 1e-12

    def test_early_blind_spot_hurts_sequenced_more(self, toy_model):
        from repro.optimize.deployment import Deployment
        from repro.simulation.campaign import run_campaign

        # Deploy only mdb@h2: sees e2 but never e1 — attack A's chain is
        # never established for the sequenced detector.
        deployment = Deployment.of(toy_model, ["mdb@h2"])
        plain = run_campaign(
            toy_model, deployment, repetitions=10, seed=3, threshold=0.3
        )
        sequenced = run_campaign(
            toy_model, deployment, repetitions=10, seed=3, threshold=0.3, sequenced=True
        )
        assert plain.per_attack_detection["A"] > 0
        assert sequenced.per_attack_detection["A"] == 0.0
