"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.simulation.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda s, p: order.append(p), "late")
        sim.schedule(1.0, lambda s, p: order.append(p), "early")
        sim.schedule(2.0, lambda s, p: order.append(p), "middle")
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, lambda s, p: order.append(p), tag)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda s, p: times.append(s.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_handlers_can_schedule_more(self):
        sim = Simulator()
        seen = []

        def chain(s, depth):
            seen.append(s.now)
            if depth < 3:
                s.schedule(1.0, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda s, p: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda s, p: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda s, p: None)


class TestRunControl:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda s, p: seen.append(1))
        sim.schedule(10.0, lambda s, p: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_resume_after_until(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda s, p: seen.append(1))
        sim.schedule(10.0, lambda s, p: seen.append(10))
        sim.run(until=5.0)
        sim.run()
        assert seen == [1, 10]

    def test_until_advances_clock_even_when_idle(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_max_events_cap(self):
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.schedule(float(i), lambda s, p: seen.append(p), i)
        sim.run(max_events=2)
        assert seen == [0, 1]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda s, p: None)
        sim.run()
        assert sim.events_processed == 3
