"""Tests for end-to-end attack campaigns."""

import pytest

from repro.errors import SimulationError
from repro.optimize.deployment import Deployment
from repro.simulation.campaign import run_campaign


class TestCampaign:
    def test_deterministic_per_seed(self, toy_model):
        deployment = Deployment.full(toy_model)
        a = run_campaign(toy_model, deployment, repetitions=3, seed=11)
        b = run_campaign(toy_model, deployment, repetitions=3, seed=11)
        assert a.detection_rate == b.detection_rate
        assert a.observations == b.observations
        assert [r.final_score for r in a.runs] == [r.final_score for r in b.runs]

    def test_different_seeds_vary(self, toy_model):
        deployment = Deployment.full(toy_model)
        a = run_campaign(toy_model, deployment, repetitions=5, seed=1)
        b = run_campaign(toy_model, deployment, repetitions=5, seed=2)
        # Continuous step timing almost surely differs between seeds.
        assert a.duration != b.duration

    def test_empty_deployment_detects_nothing(self, toy_model):
        result = run_campaign(toy_model, Deployment.empty(toy_model), repetitions=3, seed=0)
        assert result.detection_rate == 0.0
        assert result.observations == 0
        assert result.mean_step_completeness == 0.0

    def test_full_deployment_detects_most(self, toy_model):
        result = run_campaign(
            toy_model, Deployment.full(toy_model), repetitions=20, seed=0
        )
        assert result.detection_rate > 0.8
        assert result.mean_step_completeness > 0.7

    def test_run_count(self, toy_model):
        result = run_campaign(toy_model, Deployment.full(toy_model), repetitions=4, seed=0)
        assert len(result.runs) == 4 * len(toy_model.attacks)

    def test_per_attack_rates_cover_all_attacks(self, toy_model):
        result = run_campaign(toy_model, Deployment.full(toy_model), repetitions=3, seed=0)
        assert set(result.per_attack_detection) == set(toy_model.attacks)
        for rate in result.per_attack_detection.values():
            assert 0.0 <= rate <= 1.0

    def test_detection_latency_positive(self, toy_model):
        result = run_campaign(toy_model, Deployment.full(toy_model), repetitions=10, seed=0)
        detected = [r for r in result.runs if r.detected]
        assert detected
        for run in detected:
            assert run.detection_time is not None and run.detection_time > 0

    def test_better_deployment_detects_more(self, web_model):
        from repro.metrics.cost import Budget
        from repro.optimize.problem import MaxUtilityProblem

        weak = MaxUtilityProblem(web_model, Budget.fraction_of_total(web_model, 0.05)).solve()
        strong = MaxUtilityProblem(web_model, Budget.fraction_of_total(web_model, 0.6)).solve()
        weak_rate = run_campaign(web_model, weak.deployment, repetitions=3, seed=0).detection_rate
        strong_rate = run_campaign(
            web_model, strong.deployment, repetitions=3, seed=0
        ).detection_rate
        assert strong_rate >= weak_rate

    def test_threshold_monotone(self, toy_model):
        deployment = Deployment.full(toy_model)
        lax = run_campaign(toy_model, deployment, repetitions=10, seed=0, threshold=0.2)
        strict = run_campaign(toy_model, deployment, repetitions=10, seed=0, threshold=0.9)
        assert lax.detection_rate >= strict.detection_rate

    def test_noise_volume_positive_for_nonempty(self, toy_model):
        result = run_campaign(toy_model, Deployment.full(toy_model), repetitions=2, seed=0)
        assert result.benign_noise_volume > 0

    def test_invalid_repetitions(self, toy_model):
        with pytest.raises(SimulationError):
            run_campaign(toy_model, Deployment.full(toy_model), repetitions=0)

    def test_foreign_deployment_rejected(self, toy_model):
        from tests.conftest import build_toy_builder

        other = build_toy_builder().build()
        with pytest.raises(SimulationError, match="different model"):
            run_campaign(toy_model, Deployment.full(other), repetitions=1)


class TestFailureInjection:
    def test_zero_rate_equals_default(self, toy_model):
        deployment = Deployment.full(toy_model)
        base = run_campaign(toy_model, deployment, repetitions=5, seed=4)
        explicit = run_campaign(
            toy_model, deployment, repetitions=5, seed=4, monitor_failure_rate=0.0
        )
        assert base.detection_rate == explicit.detection_rate
        assert base.observations == explicit.observations

    def test_rate_one_observes_nothing(self, toy_model):
        deployment = Deployment.full(toy_model)
        result = run_campaign(
            toy_model, deployment, repetitions=5, seed=4, monitor_failure_rate=1.0
        )
        assert result.observations == 0
        assert result.detection_rate == 0.0

    def test_failures_degrade_detection(self, toy_model):
        deployment = Deployment.full(toy_model)
        healthy = run_campaign(toy_model, deployment, repetitions=20, seed=4)
        degraded = run_campaign(
            toy_model, deployment, repetitions=20, seed=4, monitor_failure_rate=0.6
        )
        assert degraded.detection_rate < healthy.detection_rate
        assert degraded.observations < healthy.observations

    def test_deterministic_with_failures(self, toy_model):
        deployment = Deployment.full(toy_model)
        kwargs = dict(repetitions=5, seed=4, monitor_failure_rate=0.3)
        a = run_campaign(toy_model, deployment, **kwargs)
        b = run_campaign(toy_model, deployment, **kwargs)
        assert a.detection_rate == b.detection_rate
        assert a.observations == b.observations

    def test_invalid_rate_rejected(self, toy_model):
        with pytest.raises(SimulationError):
            run_campaign(
                toy_model, Deployment.full(toy_model), repetitions=1,
                monitor_failure_rate=1.5,
            )
