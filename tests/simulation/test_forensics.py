"""Tests for forensic reconstruction scoring."""

import pytest

from repro.simulation.forensics import reconstruct
from repro.simulation.records import Observation


def obs(event_id, fields, *, run_id=0, attack_id="A"):
    return Observation(
        run_id=run_id,
        monitor_id="m",
        data_type_id="dt",
        event_id=event_id,
        attack_id=attack_id,
        time=1.0,
        weight=1.0,
        fields=frozenset(fields),
    )


class TestReconstruct:
    def test_no_observations(self, toy_model):
        report = reconstruct(toy_model, 0, "A", [])
        assert report.steps_observed == 0
        assert report.step_completeness == 0.0
        assert report.field_completeness == 0.0
        assert not report.is_complete

    def test_full_reconstruction(self, toy_model):
        observations = [
            obs("e1", {"f1", "f2", "f3"}),
            obs("e2", {"f2", "f3", "f4"}),
        ]
        report = reconstruct(toy_model, 0, "A", observations)
        assert report.is_complete
        assert report.step_completeness == 1.0
        assert report.field_completeness == 1.0
        assert report.observations == 2

    def test_partial_steps(self, toy_model):
        report = reconstruct(toy_model, 0, "A", [obs("e1", {"f1"})])
        assert report.steps_observed == 1
        assert report.steps_total == 2
        assert report.step_completeness == pytest.approx(0.5)

    def test_step_weights_in_completeness(self, toy_model):
        # B = (e2 weight 2, e3 weight 1); observing only e3 -> 1/3.
        report = reconstruct(toy_model, 0, "B", [obs("e3", set(), attack_id="B")])
        assert report.step_completeness == pytest.approx(1 / 3)

    def test_field_completeness_counts_capturable_only(self, toy_model):
        # e1 capturable fields: {f1, f2, f3}; e2: {f2, f3, f4} -> 6 total.
        report = reconstruct(toy_model, 0, "A", [obs("e1", {"f1", "bogus"})])
        assert report.field_completeness == pytest.approx(1 / 6)

    def test_filters_other_runs_and_attacks(self, toy_model):
        observations = [
            obs("e1", {"f1"}, run_id=1),
            obs("e1", {"f1"}, attack_id="B"),
        ]
        report = reconstruct(toy_model, 0, "A", observations)
        assert report.observations == 0

    def test_fields_union_across_observations(self, toy_model):
        observations = [obs("e1", {"f1"}), obs("e1", {"f2", "f3"})]
        report = reconstruct(toy_model, 0, "A", observations)
        assert report.field_completeness == pytest.approx(3 / 6)
