"""Property-based tests of simulation invariants on random models."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.casestudy import synthetic_model
from repro.metrics.coverage import overall_coverage
from repro.optimize.deployment import Deployment
from repro.simulation.campaign import run_campaign

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def campaign_case(draw):
    seed = draw(st.integers(0, 2_000))
    model = synthetic_model(
        assets=5,
        data_types=4,
        monitor_types=3,
        monitors=draw(st.integers(3, 10)),
        attacks=draw(st.integers(1, 4)),
        events=draw(st.integers(2, 6)),
        seed=seed,
    )
    monitor_ids = sorted(model.monitors)
    deployed = frozenset(m for m in monitor_ids if draw(st.booleans()))
    campaign_seed = draw(st.integers(0, 1_000))
    return model, Deployment.of(model, deployed), campaign_seed


@given(campaign_case())
@settings(**SETTINGS)
def test_rates_and_scores_bounded(case):
    model, deployment, seed = case
    result = run_campaign(model, deployment, repetitions=2, seed=seed)
    assert 0.0 <= result.detection_rate <= 1.0
    assert 0.0 <= result.mean_step_completeness <= 1.0
    assert 0.0 <= result.mean_field_completeness <= 1.0
    for run in result.runs:
        assert 0.0 <= run.final_score <= 1.0 + 1e-9


@given(campaign_case())
@settings(**SETTINGS)
def test_realized_score_never_exceeds_static_coverage_potential(case):
    """A monitor can only record events the coverage relation allows, so
    a run's realized score is bounded by the attack's static coverage."""
    from repro.metrics.coverage import attack_coverage

    model, deployment, seed = case
    result = run_campaign(model, deployment, repetitions=2, seed=seed)
    for run in result.runs:
        ceiling = attack_coverage(model, deployment.monitor_ids, run.attack_id)
        assert run.final_score <= ceiling + 1e-9


@given(campaign_case())
@settings(**SETTINGS)
def test_campaign_deterministic(case):
    model, deployment, seed = case
    a = run_campaign(model, deployment, repetitions=2, seed=seed)
    b = run_campaign(model, deployment, repetitions=2, seed=seed)
    assert [r.final_score for r in a.runs] == [r.final_score for r in b.runs]
    assert a.observations == b.observations


@given(campaign_case())
@settings(**SETTINGS)
def test_empty_deployment_sees_nothing(case):
    model, _, seed = case
    result = run_campaign(model, Deployment.empty(model), repetitions=1, seed=seed)
    assert result.observations == 0
    assert result.detection_rate == 0.0


@given(campaign_case())
@settings(**SETTINGS)
def test_zero_coverage_means_zero_detection(case):
    """If the deployment's static coverage is zero, no campaign can
    detect anything — the simulation must respect the model."""
    model, deployment, seed = case
    if overall_coverage(model, deployment.monitor_ids) > 0:
        return
    result = run_campaign(model, deployment, repetitions=3, seed=seed)
    assert result.detection_rate == 0.0
