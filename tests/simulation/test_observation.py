"""Tests for the observation model."""

import numpy as np
import pytest

from repro.simulation.observation import ObservationModel
from repro.simulation.records import StepOccurrence

from tests.conftest import build_toy_builder


def make_step(event_id="e1", asset_id="h1", time=10.0):
    return StepOccurrence(
        run_id=0, attack_id="A", event_id=event_id, asset_id=asset_id, time=time, step_index=0
    )


def perfect_toy_model():
    """Toy model variant whose monitors never miss (quality 1)."""
    builder = build_toy_builder()
    model = builder.build()
    from repro.core import model_from_dict, model_to_dict

    document = model_to_dict(model)
    for mt in document["monitor_types"]:
        mt["quality"] = 1.0
    return model_from_dict(document)


class TestObserve:
    def test_perfect_monitors_always_record(self):
        model = perfect_toy_model()
        observer = ObservationModel(
            model, frozenset(model.monitors), np.random.default_rng(0)
        )
        observations = observer.observe(make_step())
        assert {o.monitor_id for o in observations} == {"mlog@h1", "mnet@n1"}

    def test_only_deployed_monitors_record(self):
        model = perfect_toy_model()
        observer = ObservationModel(model, frozenset({"mnet@n1"}), np.random.default_rng(0))
        observations = observer.observe(make_step())
        assert {o.monitor_id for o in observations} == {"mnet@n1"}

    def test_unwatched_event_yields_nothing(self):
        model = perfect_toy_model()
        observer = ObservationModel(model, frozenset({"mdb@h2"}), np.random.default_rng(0))
        assert observer.observe(make_step("e1", "h1")) == []

    def test_observation_carries_weight_and_fields(self):
        model = perfect_toy_model()
        observer = ObservationModel(model, frozenset({"mnet@n1"}), np.random.default_rng(0))
        (obs,) = observer.observe(make_step())
        assert obs.weight == 0.5
        assert obs.fields == frozenset({"f2", "f3"})
        assert obs.data_type_id == "dnet"

    def test_latency_added(self):
        model = perfect_toy_model()
        observer = ObservationModel(
            model, frozenset({"mlog@h1"}), np.random.default_rng(0), mean_latency=1.0
        )
        (obs,) = observer.observe(make_step(time=100.0))
        assert obs.time >= 100.0

    def test_quality_controls_miss_rate(self, toy_model):
        # mnet has quality 0.8: over many trials ~20% misses.
        observer = ObservationModel(
            toy_model, frozenset({"mnet@n1"}), np.random.default_rng(123)
        )
        recorded = sum(bool(observer.observe(make_step())) for _ in range(1000))
        assert 700 < recorded < 900

    def test_deterministic_given_rng_seed(self, toy_model):
        def trace(seed):
            observer = ObservationModel(
                toy_model, frozenset(toy_model.monitors), np.random.default_rng(seed)
            )
            return [
                (o.monitor_id, round(o.time, 9))
                for _ in range(20)
                for o in observer.observe(make_step())
            ]

        assert trace(7) == trace(7)


class TestNoiseVolume:
    def test_scales_with_duration(self, toy_model):
        observer = ObservationModel(
            toy_model, frozenset(toy_model.monitors), np.random.default_rng(0)
        )
        assert observer.benign_noise_volume(7200.0) == pytest.approx(
            2 * observer.benign_noise_volume(3600.0)
        )

    def test_empty_deployment_no_noise(self, toy_model):
        observer = ObservationModel(toy_model, frozenset(), np.random.default_rng(0))
        assert observer.benign_noise_volume(3600.0) == 0.0

    def test_volume_matches_hints(self, toy_model):
        observer = ObservationModel(
            toy_model, frozenset({"mlog@h1"}), np.random.default_rng(0)
        )
        expected = toy_model.data_type("dlog").volume_hint
        assert observer.benign_noise_volume(3600.0) == pytest.approx(expected)
