"""Strict JSON export: no NaN/Infinity token ever reaches a file."""

from __future__ import annotations

import json
import math

import pytest

from repro import obs
from repro.export.jsonsafe import dumps, sanitize
from repro.obs import write_trace


class TestSanitize:
    def test_non_finite_floats_become_null(self):
        assert sanitize(float("nan")) is None
        assert sanitize(float("inf")) is None
        assert sanitize(float("-inf")) is None

    def test_finite_values_pass_through(self):
        assert sanitize(1.5) == 1.5
        assert sanitize(0) == 0
        assert sanitize("NaN") == "NaN"
        assert sanitize(True) is True
        assert sanitize(None) is None

    def test_recursion_through_containers(self):
        payload = {
            "latency": float("nan"),
            "points": [1.0, float("inf"), (2.0, float("-inf"))],
            "nested": {"ok": 3.0},
        }
        assert sanitize(payload) == {
            "latency": None,
            "points": [1.0, None, [2.0, None]],
            "nested": {"ok": 3.0},
        }


class TestDumps:
    def test_round_trips_through_strict_loads(self):
        payload = {"mean_latency": float("nan"), "utilization": float("inf"), "runs": 10}
        text = dumps(payload, sort_keys=True)
        loaded = json.loads(text)
        assert loaded == {"mean_latency": None, "utilization": None, "runs": 10}
        assert "NaN" not in text and "Infinity" not in text

    def test_allow_nan_cannot_be_reenabled(self):
        text = dumps([float("nan")], allow_nan=True)
        assert text == "[null]"

    def test_unswept_non_finite_is_a_hard_error(self):
        class Sneaky:
            pass

        with pytest.raises(TypeError):
            # Not JSON-serializable at all: proves dumps stays strict
            # instead of silently stringifying unknown objects.
            dumps(Sneaky())


class TestTraceExport:
    def test_trace_with_nan_metrics_loads_everywhere(self, tmp_path):
        """A gauge holding NaN must not corrupt the --trace artifact."""
        with obs.capture() as cap:
            obs.gauge("campaign.mean_latency").set(float("nan"))
            obs.gauge("budget.utilization").set(float("inf"))
            with obs.span("work"):
                pass
        path = write_trace(tmp_path / "trace.json", cap.tracer, cap.registry)
        text = path.read_text()
        assert "NaN" not in text and "Infinity" not in text
        payload = json.loads(text)
        gauges = payload["metrics"]["gauges"]
        assert gauges["campaign.mean_latency"] is None
        assert gauges["budget.utilization"] is None
        # The span forest is intact alongside the sanitized metrics.
        assert any(e["name"] == "work" for e in payload["traceEvents"])

    def test_finite_metrics_survive_unchanged(self, tmp_path):
        with obs.capture() as cap:
            obs.counter("runs").inc(3)
        path = write_trace(tmp_path / "trace.json", cap.tracer, cap.registry)
        payload = json.loads(path.read_text())
        assert payload["metrics"]["counters"]["runs"] == 3.0
        assert math.isfinite(payload["metrics"]["counters"]["runs"])
