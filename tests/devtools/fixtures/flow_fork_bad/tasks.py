"""Worker tasks that capture locks and construct nested pools."""

import threading

from repro.runtime.parallel import parallel_map
from repro.runtime.pool import PersistentPool

_LOCK = threading.Lock()


def scale(item):
    with _LOCK:
        return item * 2


def nested(item):
    pool = PersistentPool(workers=2)
    return pool


def indirect(item):
    return _spawn_helper(item)


def _spawn_helper(item):
    return PersistentPool(workers=1)


def run(items):
    doubled = parallel_map(scale, items)
    spawned = parallel_map(nested, items)
    chained = parallel_map(indirect, items)
    return doubled, spawned, chained
