"""Golden-bad fixture: fork-unsafe state crossing into worker tasks."""
