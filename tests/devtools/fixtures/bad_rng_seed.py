"""Golden bad fixture: RNG-SEED violations, one per line below."""

import random

import numpy as np


def fresh_entropy():
    rng = np.random.default_rng()
    value = random.random()
    other = random.Random()
    np.random.seed(7)
    return rng, value, other
