"""Golden bad fixture: registered hot path without an obs span."""


def parallel_map(fn, items):
    return [fn(item) for item in items]
