"""Golden good fixture: every stream is built from an explicit seed."""

import random

import numpy as np


def seeded(seed):
    rng = np.random.default_rng(seed)
    other = random.Random(seed)
    return rng.standard_normal() + other.random()
