"""Golden good fixture: upper layers behind TYPE_CHECKING or lazy."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.contribution import ContributionReport


def render(report: ContributionReport) -> str:
    from repro.analysis.contribution import contribution_report

    return str((contribution_report, report))
