"""Golden-bad fixture: writes racing the shared-memory contract."""
