"""Stores through attached views and mutation after publish."""

from repro.runtime.pool import attach_arrays


def scale(handle) -> None:
    views = attach_arrays(handle)
    views["alpha"][0] = 2.0


def fill_view(handle) -> None:
    views = attach_arrays(handle)
    beta = views["beta"]
    beta.fill(0.0)


def publish_then_mutate(pool, alpha) -> None:
    pool.share({"alpha": alpha})
    alpha[0] = 0.5
