"""Golden good fixture: None defaults, filled in the body."""


def collect(item, acc=None):
    acc = [] if acc is None else acc
    acc.append(item)
    return acc


def label(tags, *, seen=frozenset()):
    return seen | set(tags)
