"""Golden good fixture: readers are fine; writers go through jsonsafe."""

import json

from repro.export.jsonsafe import dumps


def roundtrip(payload):
    return json.loads(dumps(payload))
