"""Golden bad fixture: EXC-SILENT violations on the except lines."""


def swallow(task):
    try:
        task()
    except Exception:
        pass


def swallow_bare(task):
    try:
        task()
    except:  # noqa: E722 (stdlib-style noqa is not ours and suppresses nothing)
        return None
