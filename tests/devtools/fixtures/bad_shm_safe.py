"""Golden bad fixture: SHM-SAFE violations (unpinned segment creation)."""

from multiprocessing import shared_memory


def publish(payload):
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    return shared_memory.ShareableList([1, 2, 3]), segment
