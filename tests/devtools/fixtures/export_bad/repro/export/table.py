"""Golden bad fixture: TYPECHECK-IMPORT violation (eager upper-layer import)."""

from repro.analysis.contribution import contribution_report


def render(report):
    return contribution_report, report
