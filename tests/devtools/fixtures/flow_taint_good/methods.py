"""Receiver-typed method dispatch via a parameter annotation."""


class Engine:
    def utility(self, value: float) -> float:
        return value * 0.5


def drive(engine: Engine) -> float:
    return engine.utility(2.0)
