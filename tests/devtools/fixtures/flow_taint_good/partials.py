"""A functools.partial edge the call graph must resolve."""

import functools


def scale(factor: float, value: float) -> float:
    return factor * value


def build() -> float:
    doubler = functools.partial(scale, 2.0)
    return doubler(3.0)
