"""Golden-good fixture: the same shapes with the taint cut or exempt."""
