"""Deterministic stand-in for the wall clock: derived from inputs."""


def fixed_stamp(seed: int) -> float:
    return float(seed)
