"""Wall-clock time into an *exempt* result field is not a finding."""

import time


class OptimizationResult:
    def __init__(self, chosen: tuple, solve_seconds: float) -> None:
        self.chosen = chosen
        self.solve_seconds = solve_seconds


def build() -> OptimizationResult:
    return OptimizationResult(chosen=("m1",), solve_seconds=time.time())
