"""Sinks fed only from injected, deterministic inputs."""

from flow_taint_good.clock import fixed_stamp

from repro.export.jsonsafe import dumps


def publish(seed: int) -> str:
    payload = {"stamp": fixed_stamp(seed)}
    return dumps(payload)
