"""Golden bad fixture: PICKLE-SAFE violations (unpicklable callables)."""

from repro.runtime.parallel import parallel_map


def run(items):
    doubled = parallel_map(lambda x: 2 * x, items)

    def local(x):
        return x + 1

    return parallel_map(local, items), doubled
