"""Golden bad fixture: CLOCK-INJECT violations, one per line below."""

import time
from datetime import datetime


def stamp():
    started = time.perf_counter()
    wall = time.time()
    when = datetime.now()
    return started, wall, when
