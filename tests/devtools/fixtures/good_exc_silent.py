"""Golden good fixture: broad handlers that account for the failure."""

from repro import obs


def translate(task):
    try:
        return task()
    except Exception as exc:
        raise RuntimeError("task failed") from exc


def count(task):
    try:
        return task()
    except Exception:
        obs.counter("fixtures.failures").inc()
        return None


def narrow(fh):
    try:
        return fh.read()
    except OSError:
        return ""
