"""Golden-good fixture: set order canonicalized before it escapes."""
