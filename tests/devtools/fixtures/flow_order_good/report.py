"""The same digest with ``sorted()`` cutting the ORDER taint."""

import hashlib


def collect() -> set:
    return {"m1", "m2", "m3"}


def digest() -> bytes:
    h = hashlib.blake2b()
    for monitor in sorted(collect()):
        h.update(monitor)
    return h.digest()
