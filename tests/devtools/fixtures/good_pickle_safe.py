"""Golden good fixture: module-level functions pickle into the pool."""

from repro.runtime.parallel import parallel_map


def double(x):
    return 2 * x


def run(items):
    return parallel_map(double, items)
