"""Two unresolved edges, one known-safe method, one direct call."""


def helper(payload) -> int:
    return len(payload)


def dispatch(hooks, payload):
    for hook in hooks:
        hook(payload)
    handler = hooks[0]
    handler.frobnicate(payload)
    payload.items()
    return helper(payload)
