"""Fixture with deliberately unresolvable call edges."""
