"""Golden-bad fixture: wall-clock taint reaching sinks across calls."""
