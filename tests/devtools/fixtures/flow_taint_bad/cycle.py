"""A cyclic SCC whose converged summary carries the taint out."""

import hashlib
import time


def ping(depth: int) -> float:
    if depth <= 0:
        return time.time()
    return pong(depth - 1)


def pong(depth: int) -> float:
    return ping(depth)


def digest(depth: int) -> bytes:
    h = hashlib.blake2b()
    h.update(ping(depth))
    return h.digest()
