"""The sink frame: tainted payload into a jsonsafe export."""

from flow_taint_bad.relay import tagged

from repro.export.jsonsafe import dumps


def publish() -> str:
    payload = tagged()
    return dumps(payload)
