"""The source, three frames above the sink."""

import time


def wall_stamp() -> float:
    return time.time()
