"""The middle frame: launders the source through a dict literal."""

from flow_taint_bad.clock import wall_stamp


def tagged() -> dict:
    return {"stamp": wall_stamp()}
