"""Unsorted set iteration feeding a digest and a result record."""

import hashlib


def collect() -> set:
    return {"m1", "m2", "m3"}


def digest() -> bytes:
    h = hashlib.blake2b()
    for monitor in collect():
        h.update(monitor)
    return h.digest()
