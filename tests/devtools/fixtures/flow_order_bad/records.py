"""Set order into a compared field of a result record."""

from flow_order_bad.report import collect


class OptimizationResult:
    def __init__(self, chosen: list, solve_seconds: float) -> None:
        self.chosen = chosen
        self.solve_seconds = solve_seconds


def build() -> OptimizationResult:
    chosen = [monitor for monitor in collect()]
    return OptimizationResult(chosen=chosen, solve_seconds=0.0)
