"""Golden-bad fixture: set-iteration order escaping into artifacts."""
