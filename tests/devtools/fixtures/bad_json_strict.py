"""Golden bad fixture: JSON-STRICT violations, one per line below."""

import json


def write(payload, fh):
    text = json.dumps(payload)
    json.dump(payload, fh)
    return text
