"""Golden bad fixture: MUT-DEFAULT violations at each default site."""

from collections import defaultdict


def collect(item, acc=[]):
    acc.append(item)
    return acc


def index(pairs, table=defaultdict(list)):
    for key, value in pairs:
        table[key].append(value)
    return table


def label(tags, *, seen=set()):
    seen.update(tags)
    return seen
