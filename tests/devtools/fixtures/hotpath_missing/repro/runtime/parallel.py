"""Golden bad fixture: the registry names a function that is gone."""


def renamed_parallel_map(fn, items):
    return [fn(item) for item in items]
