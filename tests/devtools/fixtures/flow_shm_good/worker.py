"""Reads through views, writes only to private arrays."""

from repro.runtime.pool import attach_arrays


def snapshot(handle) -> float:
    views = attach_arrays(handle)
    return float(views["alpha"][0])


def publish_then_read(pool, alpha) -> float:
    pool.share({"alpha": alpha})
    return float(alpha[0])


def local_write(scratch) -> None:
    scratch[0] = 1.0
