"""Golden-good fixture: read-only use of attached segments."""
