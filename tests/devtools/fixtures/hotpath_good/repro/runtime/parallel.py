"""Golden good fixture: registered hot path opening its span."""

from repro import obs


def parallel_map(fn, items):
    with obs.span("parallel.map"):
        return [fn(item) for item in items]
