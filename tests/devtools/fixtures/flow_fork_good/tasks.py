"""A pure worker task dispatched by the parent."""

from repro.runtime.parallel import parallel_map


def scale(item):
    return item * 2


def run(items):
    return parallel_map(scale, items)
