"""Golden-good fixture: worker tasks touching only their arguments."""
