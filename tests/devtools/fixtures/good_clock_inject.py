"""Golden good fixture: time comes from an injected Clock."""

import time


def stamp(clock):
    time.sleep(0.0)  # sleeping is a delay, not a measurement
    return clock.now()
