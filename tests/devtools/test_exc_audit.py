"""Audit pin: every broad handler in the fault-tolerant paths accounts.

The runtime (``repro.runtime.parallel``) and the solver fallback chain
(``repro.solver.fallback``) are the only places in the tree allowed to
catch ``Exception`` broadly — and each such handler must re-raise,
record a structured ``TaskFailure``, or bump an obs counter.  These
tests keep that audit from regressing silently: the first proves the
files still *have* broad handlers (so the second cannot pass
vacuously), the second runs EXC-SILENT over them for real.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.devtools.lint import lint_file
from repro.devtools.rules.exc_silent import ExcSilentRule, _is_broad

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
AUDITED = (
    SRC / "runtime" / "parallel.py",
    SRC / "solver" / "fallback.py",
)


def _broad_handlers(path: Path) -> list[int]:
    tree = ast.parse(path.read_text())
    return sorted(
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.ExceptHandler) and _is_broad(node)
    )


def test_audited_files_still_contain_broad_handlers():
    counts = {path.name: len(_broad_handlers(path)) for path in AUDITED}
    assert counts["parallel.py"] >= 4
    assert counts["fallback.py"] >= 1


def test_every_broad_handler_accounts_for_its_failure():
    for path in AUDITED:
        findings = lint_file(path, [ExcSilentRule()])
        assert findings == [], (
            f"{path}: broad handler(s) swallow failures silently: "
            + "; ".join(f"line {f.line}" for f in findings)
        )


def test_whole_tree_has_no_exc_silent_findings():
    from repro.devtools.lint import lint_paths

    assert [f for f in lint_paths([SRC], ["EXC-SILENT"])] == []
