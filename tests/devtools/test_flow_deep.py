"""The deep driver end to end: baselines, budget, CLI, self-analysis.

The self-analysis tests are the contract the ISSUE pins: the committed
``deep-baseline.json`` matches the tree exactly (no new findings, no
stale entries), two runs render byte-identical JSON, and seeded
mutations of the real sources surface the expected finding at the
expected location.
"""

from __future__ import annotations

import json
import shutil
import time
from pathlib import Path

import pytest

from repro.devtools import lint
from repro.devtools.flow import contract as fc
from repro.devtools.flow.deep import (
    UNRESOLVED_RULE_ID,
    analyze_deep,
    render_deep_json,
)
from repro.devtools.flow.races import SHM_RULE_ID
from repro.devtools.flow.taint import ORDER_RULE_ID
from repro.errors import ReproError

FIXTURES = Path(__file__).parent / "fixtures"
ROOT = Path(__file__).parents[2]
SRC_REPRO = ROOT / "src" / "repro"


# ---------------------------------------------------------------------
# baseline workflow over the golden fixtures
# ---------------------------------------------------------------------

def test_findings_fail_without_a_baseline():
    report = analyze_deep([FIXTURES / "flow_shm_bad"], baseline="none")
    assert report.failed
    assert [f.rule for f in report.findings] == [SHM_RULE_ID] * 3
    assert report.baseline_path is None


def test_write_baseline_then_rerun_accepts_everything(tmp_path):
    baseline = tmp_path / "baseline.json"
    written = analyze_deep(
        [FIXTURES / "flow_shm_bad"], baseline="none", write_baseline=baseline
    )
    assert not written.failed
    assert len(written.accepted) == 3
    entries = json.loads(baseline.read_text())["entries"]
    assert all("TODO" in e["justification"] for e in entries)

    rerun = analyze_deep([FIXTURES / "flow_shm_bad"], baseline=baseline)
    assert not rerun.failed
    assert len(rerun.accepted) == 3
    assert rerun.stale == []


def test_rewriting_a_baseline_preserves_justifications(tmp_path):
    baseline = tmp_path / "baseline.json"
    analyze_deep(
        [FIXTURES / "flow_shm_bad"], baseline="none", write_baseline=baseline
    )
    payload = json.loads(baseline.read_text())
    payload["entries"][0]["justification"] = "reviewed: scratch segment"
    baseline.write_text(json.dumps(payload))
    analyze_deep(
        [FIXTURES / "flow_shm_bad"], baseline=baseline, write_baseline=baseline
    )
    rewritten = json.loads(baseline.read_text())["entries"]
    assert any(
        e["justification"] == "reviewed: scratch segment" for e in rewritten
    )


def test_stale_baseline_entries_are_reported_but_non_fatal(tmp_path):
    baseline = tmp_path / "baseline.json"
    analyze_deep(
        [FIXTURES / "flow_shm_bad"], baseline="none", write_baseline=baseline
    )
    report = analyze_deep([FIXTURES / "flow_shm_good"], baseline=baseline)
    assert not report.failed
    assert len(report.stale) == 3
    assert {entry["rule"] for entry in report.stale} == {SHM_RULE_ID}


def test_missing_explicit_baseline_raises():
    with pytest.raises(ReproError, match="no such baseline"):
        analyze_deep([FIXTURES / "flow_shm_good"], baseline="/no/such/file.json")


def test_deep_findings_respect_noqa(tmp_path):
    package = tmp_path / "shmpkg"
    package.mkdir()
    (package / "__init__.py").write_text('"""Suppression fixture."""\n')
    (package / "mod.py").write_text(
        "from repro.runtime.pool import attach_arrays\n"
        "\n"
        "\n"
        "def scale(handle):\n"
        "    views = attach_arrays(handle)\n"
        "    views['alpha'][0] = 2.0  # repro: noqa[SHM-WRITE] scratch segment\n"
    )
    report = analyze_deep([package], baseline="none")
    assert report.findings == []


# ---------------------------------------------------------------------
# the UNRESOLVED budget gate
# ---------------------------------------------------------------------

def test_unresolved_edges_are_counted_in_stats():
    report = analyze_deep([FIXTURES / "flow_unresolved"], baseline="none")
    assert report.stats["unresolved"] == 2
    assert report.stats["unresolved_budget"] == fc.UNRESOLVED_CALL_BUDGET
    assert not report.failed


def test_budget_overrun_anchors_at_the_first_site_past_it(monkeypatch):
    monkeypatch.setattr(fc, "UNRESOLVED_CALL_BUDGET", 1)
    report = analyze_deep([FIXTURES / "flow_unresolved"], baseline="none")
    assert report.failed
    (finding,) = report.findings
    assert finding.rule == UNRESOLVED_RULE_ID
    assert finding.path.endswith("dynamic.py")
    assert finding.line == 12
    assert "2 unresolved call edges exceed the budget of 1" in finding.message
    assert "flow_unresolved.dynamic" in finding.message


# ---------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------

def test_cli_deep_clean_fixture_exits_zero(capsys):
    code = lint.main(
        ["--deep", str(FIXTURES / "flow_taint_good"), "--baseline", "none"]
    )
    assert code == 0
    assert "deep: no new findings" in capsys.readouterr().out


def test_cli_deep_bad_fixture_exits_one(capsys):
    code = lint.main(
        ["--deep", str(FIXTURES / "flow_shm_bad"), "--baseline", "none"]
    )
    assert code == 1
    assert "3 new finding(s)" in capsys.readouterr().out


def test_cli_baseline_without_deep_is_usage_error(capsys):
    assert lint.main(["--baseline", "none", str(SRC_REPRO)]) == 2


def test_cli_json_output_artifact(tmp_path, capsys):
    artifact = tmp_path / "deep-findings.json"
    code = lint.main(
        [
            "--deep",
            str(FIXTURES / "flow_shm_bad"),
            "--baseline",
            "none",
            "--format",
            "json",
            "--output",
            str(artifact),
        ]
    )
    assert code == 1
    payload = json.loads(artifact.read_text())
    assert payload["mode"] == "deep"
    assert payload["count"] == 3
    assert set(payload["rules"]) >= {SHM_RULE_ID, ORDER_RULE_ID, UNRESOLVED_RULE_ID}
    assert payload == json.loads(capsys.readouterr().out)


# ---------------------------------------------------------------------
# self-analysis over src/repro (the meta-test) + determinism + perf
# ---------------------------------------------------------------------

@pytest.fixture(scope="module")
def self_analysis():
    start = time.monotonic()
    report = analyze_deep([SRC_REPRO])
    duration = time.monotonic() - start
    return report, duration


def test_self_analysis_matches_committed_baseline(self_analysis):
    report, _ = self_analysis
    assert not report.failed, [f.render() for f in report.findings]
    assert report.stale == [], report.stale
    assert report.baseline_path is not None
    assert report.baseline_path.endswith("deep-baseline.json")
    entries = json.loads((ROOT / "deep-baseline.json").read_text())["entries"]
    assert len(report.accepted) == len(entries)
    assert all(e["justification"].strip() for e in entries)
    assert all("TODO" not in e["justification"] for e in entries)


def test_self_analysis_stats_are_sane(self_analysis):
    report, _ = self_analysis
    stats = report.stats
    assert stats["functions"] > 500
    assert stats["resolved"] > stats["unresolved"]
    assert stats["unresolved"] <= stats["unresolved_budget"]
    assert stats["parse_errors"] == 0


def test_deep_json_is_byte_identical_across_runs(self_analysis):
    report, _ = self_analysis
    again = analyze_deep([SRC_REPRO])
    assert render_deep_json(report) == render_deep_json(again)


def test_deep_analysis_stays_under_the_ci_wall_clock_guard(self_analysis):
    _, duration = self_analysis
    assert duration < 30.0, f"deep analysis took {duration:.1f}s"


# ---------------------------------------------------------------------
# seeded mutations of the real tree
# ---------------------------------------------------------------------

def _mutated_tree(tmp_path, relative, snippet, needle):
    """Copy src/repro, append ``snippet`` to one file, return the
    mutated root and the 1-based line of ``needle`` in that file."""
    mutated = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, mutated)
    target = mutated / relative
    text = target.read_text() + snippet
    target.write_text(text)
    line = text[: text.index(needle)].count("\n") + 1
    return mutated, target, line


def test_seeded_order_mutation_in_the_frontier_hot_path(tmp_path):
    snippet = (
        "\n"
        "\n"
        "def _mutated_frontier_order(frontier: set) -> bytes:\n"
        "    digest = hashlib.blake2b()\n"
        "    for node in frontier:\n"
        "        digest.update(node)\n"
        "    return digest.digest()\n"
    )
    mutated, target, line = _mutated_tree(
        tmp_path, "solver/parallel_bb.py", snippet, "digest.update(node)"
    )
    report = analyze_deep([mutated], baseline="none")
    hits = [f for f in report.findings if f.rule == ORDER_RULE_ID]
    assert [(Path(f.path).name, f.line) for f in hits] == [("parallel_bb.py", line)]
    assert "digest input" in hits[0].message


def test_seeded_shm_write_mutation(tmp_path):
    snippet = (
        "\n"
        "\n"
        "def _mutated_worker_write(handle):\n"
        "    views = attach_arrays(handle)\n"
        "    views['alpha'][0] = -1.0\n"
    )
    mutated, target, line = _mutated_tree(
        tmp_path, "runtime/resilience.py", snippet, "views['alpha'][0]"
    )
    report = analyze_deep([mutated], baseline="none")
    hits = [f for f in report.findings if f.rule == SHM_RULE_ID]
    assert [(Path(f.path).name, f.line) for f in hits] == [("resilience.py", line)]
    assert "attached segments are read-only" in hits[0].message
