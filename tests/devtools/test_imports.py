"""Import-graph analysis on synthetic packages: cycles, layering, lazy edges."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.imports import (
    build_graph,
    cycle_findings,
    find_cycles,
    layering_findings,
    package_dependencies,
)
from repro.devtools.lint import lint_paths

#: A three-module eager cycle: pkg.a -> pkg.a.one -> pkg.b.two -> pkg.a.
CYCLE_FILES = {
    "pkg/__init__.py": "",
    "pkg/a/__init__.py": "from pkg.a.one import f\n",
    "pkg/a/one.py": "from pkg.b.two import g\n\n\ndef f():\n    return g()\n",
    "pkg/b/__init__.py": "",
    "pkg/b/two.py": "from pkg.a import f\n\n\ndef g():\n    return f\n",
}


def _write(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    return tmp_path / "pkg"


def test_eager_cycle_is_detected(tmp_path):
    graph = build_graph(_write(tmp_path, CYCLE_FILES))
    assert find_cycles(graph) == [["pkg.a", "pkg.a.one", "pkg.b.two"]]


def test_cycle_finding_renders_the_full_path(tmp_path):
    root = _write(tmp_path, CYCLE_FILES)
    findings = cycle_findings(build_graph(root))
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "IMPORT-CYCLE"
    assert "pkg.a -> pkg.a.one -> pkg.b.two -> pkg.a" in finding.message
    # Anchored at the cycle's first module's offending import line.
    assert finding.path == str(root / "a" / "__init__.py")
    assert finding.line == 1


def test_type_checking_import_breaks_the_cycle(tmp_path):
    files = dict(CYCLE_FILES)
    files["pkg/b/two.py"] = (
        "from typing import TYPE_CHECKING\n"
        "\n"
        "if TYPE_CHECKING:\n"
        "    from pkg.a import f\n"
        "\n"
        "\n"
        "def g():\n"
        "    return None\n"
    )
    graph = build_graph(_write(tmp_path, files))
    assert find_cycles(graph) == []


def test_lazy_function_local_import_breaks_the_cycle(tmp_path):
    files = dict(CYCLE_FILES)
    files["pkg/b/two.py"] = "def g():\n    from pkg.a import f\n    return f\n"
    graph = build_graph(_write(tmp_path, files))
    assert find_cycles(graph) == []


def test_importing_a_submodule_initializes_its_package(tmp_path):
    # pkg.x imports pkg.y.inner; pkg.y's __init__ imports pkg.x back.
    # Neither imports the other *directly*, but init order still cycles.
    files = {
        "pkg/__init__.py": "",
        "pkg/x.py": "import pkg.y.inner\n",
        "pkg/y/__init__.py": "import pkg.x\n",
        "pkg/y/inner.py": "",
    }
    graph = build_graph(_write(tmp_path, files))
    assert find_cycles(graph) == [["pkg.x", "pkg.y"]]


def test_package_dependencies_aggregation(tmp_path):
    graph = build_graph(_write(tmp_path, CYCLE_FILES))
    deps = package_dependencies(graph, leaf_modules=frozenset())
    assert deps == {"pkg": set(), "a": {"b"}, "b": {"a"}}


def test_layering_violation_is_flagged(tmp_path):
    graph = build_graph(_write(tmp_path, CYCLE_FILES))
    allowed = {"pkg": frozenset(), "a": frozenset({"b"}), "b": frozenset()}
    findings = layering_findings(graph, allowed=allowed, leaf_modules=frozenset())
    assert [f.rule for f in findings] == ["LAYER-CONTRACT"]
    assert "layer 'b' may not depend on 'a'" in findings[0].message


def test_leaf_modules_are_exempt_from_layering(tmp_path):
    graph = build_graph(_write(tmp_path, CYCLE_FILES))
    allowed = {"pkg": frozenset(), "a": frozenset({"b"}), "b": frozenset()}
    findings = layering_findings(
        graph, allowed=allowed, leaf_modules=frozenset({"pkg.a"})
    )
    assert findings == []


def test_undeclared_package_is_flagged(tmp_path):
    graph = build_graph(_write(tmp_path, CYCLE_FILES))
    allowed = {"pkg": frozenset(), "a": frozenset({"b"})}  # "b" missing
    findings = layering_findings(graph, allowed=allowed, leaf_modules=frozenset())
    assert any("not declared in the layering contract" in f.message for f in findings)


def test_lint_paths_runs_graph_rules_and_finds_the_cycle(tmp_path):
    _write(tmp_path, CYCLE_FILES)
    # Passing the *parent* directory: package-root discovery must find pkg.
    findings = lint_paths([tmp_path], ["IMPORT-CYCLE"])
    assert [f.rule for f in findings] == ["IMPORT-CYCLE"]


def test_import_cycle_respects_noqa_on_the_anchor_line(tmp_path):
    files = dict(CYCLE_FILES)
    files["pkg/a/__init__.py"] = (
        "from pkg.a.one import f  # repro: noqa[IMPORT-CYCLE] split tracked elsewhere\n"
    )
    root = _write(tmp_path, files)
    assert lint_paths([root], ["IMPORT-CYCLE"]) == []
