"""The declared layering contract must match the code, exactly.

``contract.ALLOWED_PACKAGE_DEPS`` is a record, not an upper bound: a
dependency that exists but is undeclared fails here, and so does a
declared dependency nothing uses anymore.  The assertion message lists
every mismatch so the fix (amend the contract, or remove the import)
is obvious from the test output alone.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools import contract
from repro.devtools.imports import build_graph, find_cycles, package_dependencies

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_declared_layering_matches_observed_imports():
    observed = package_dependencies(build_graph(SRC))
    declared = {pkg: set(deps) for pkg, deps in contract.ALLOWED_PACKAGE_DEPS.items()}
    problems = []
    for pkg in sorted(set(observed) | set(declared)):
        extra = sorted(observed.get(pkg, set()) - declared.get(pkg, set()))
        stale = sorted(declared.get(pkg, set()) - observed.get(pkg, set()))
        for dep in extra:
            problems.append(
                f"undeclared: {pkg} -> {dep} "
                "(declare it in contract.ALLOWED_PACKAGE_DEPS or remove the import)"
            )
        for dep in stale:
            problems.append(
                f"stale: {pkg} -> {dep} is declared but no longer imported "
                "(drop it from contract.ALLOWED_PACKAGE_DEPS)"
            )
    assert not problems, "layering contract drift:\n" + "\n".join(problems)


def test_eager_import_graph_of_src_is_acyclic():
    assert find_cycles(build_graph(SRC)) == []


def test_hot_path_registry_modules_exist_on_disk():
    for module in contract.HOT_PATHS:
        relative = Path(*module.split(".")[1:])
        assert (SRC / relative.with_suffix(".py")).exists() or (
            SRC / relative / "__init__.py"
        ).exists(), f"contract.HOT_PATHS names missing module {module}"


def test_clock_and_json_allowlists_point_at_real_modules():
    for module in list(contract.CLOCK_ALLOWLIST) + list(contract.JSON_ALLOWLIST):
        relative = Path(*module.split(".")[1:])
        assert (SRC / relative.with_suffix(".py")).exists(), (
            f"allowlist names missing module {module}"
        )


def test_leaf_modules_are_real_and_leafy():
    graph = build_graph(SRC)
    for leaf in contract.LEAF_MODULES:
        assert leaf in graph.modules, f"LEAF_MODULES names missing module {leaf}"
        for edge in graph.edges_from(leaf):
            assert edge.target in contract.LEAF_MODULES, (
                f"leaf {leaf} imports non-leaf {edge.target}; "
                "a leaf must not pull in layered packages"
            )
