"""Semantics of ``# repro: noqa[RULE-ID]`` suppression comments."""

from __future__ import annotations

import textwrap

from repro.devtools.base import parse_suppressions
from repro.devtools.lint import lint_file


def _lint_source(tmp_path, source):
    path = tmp_path / "sample.py"
    path.write_text(textwrap.dedent(source))
    return lint_file(path)


def test_targeted_noqa_suppresses_only_that_rule(tmp_path):
    findings = _lint_source(
        tmp_path,
        """\
        import json


        def write(payload):
            return json.dumps(payload)  # repro: noqa[JSON-STRICT] test payload is finite
        """,
    )
    assert findings == []


def test_noqa_for_a_different_rule_does_not_suppress(tmp_path):
    findings = _lint_source(
        tmp_path,
        """\
        import json


        def write(payload):
            return json.dumps(payload)  # repro: noqa[RNG-SEED] wrong rule
        """,
    )
    assert [f.rule for f in findings] == ["JSON-STRICT"]


def test_bare_noqa_suppresses_every_rule_on_the_line(tmp_path):
    findings = _lint_source(
        tmp_path,
        """\
        import json
        import time


        def write(payload):
            return json.dumps(payload), time.time()  # repro: noqa
        """,
    )
    assert findings == []


def test_noqa_only_covers_its_own_line(tmp_path):
    findings = _lint_source(
        tmp_path,
        """\
        import json


        def write(payload):
            a = json.dumps(payload)  # repro: noqa[JSON-STRICT] this line only
            b = json.dumps(payload)
            return a, b
        """,
    )
    assert [(f.rule, f.line) for f in findings] == [("JSON-STRICT", 6)]


def test_noqa_inside_a_string_literal_is_not_a_suppression(tmp_path):
    findings = _lint_source(
        tmp_path,
        """\
        import json


        def write(payload):
            return json.dumps(payload), "# repro: noqa[JSON-STRICT]"
        """,
    )
    assert [f.rule for f in findings] == ["JSON-STRICT"]


def test_rule_ids_in_noqa_are_case_insensitive(tmp_path):
    findings = _lint_source(
        tmp_path,
        """\
        import json


        def write(payload):
            return json.dumps(payload)  # repro: noqa[json-strict] lower case
        """,
    )
    assert findings == []


def test_multiple_rule_ids_in_one_noqa(tmp_path):
    findings = _lint_source(
        tmp_path,
        """\
        import json
        import time


        def write(payload):
            return json.dumps(payload), time.time()  # repro: noqa[JSON-STRICT, CLOCK-INJECT] both
        """,
    )
    assert findings == []


def test_parse_suppressions_maps_lines_to_rule_sets():
    source = (
        "x = 1  # repro: noqa[RNG-SEED] reason\n"
        "y = 2  # repro: noqa\n"
        "z = 3  # unrelated comment\n"
    )
    suppressions = parse_suppressions(source)
    assert suppressions == {1: {"RNG-SEED"}, 2: {"*"}}


def test_suppression_survives_syntax_error_tolerantly():
    # Unterminated source: the tokenizer gives up, the parser reports
    # PARSE-ERROR elsewhere; parse_suppressions must not raise.
    assert parse_suppressions("def broken(:\n") == {}


# ---------------------------------------------------------------------
# multi-line statements: logical-line and decorated-header semantics
# ---------------------------------------------------------------------

def test_noqa_covers_every_physical_line_of_a_continuation():
    source = textwrap.dedent(
        """\
        value = compute(
            first,
            second,
        )  # repro: noqa[JSON-STRICT] reviewed
        """
    )
    suppressions = parse_suppressions(source)
    for line in (1, 2, 3, 4):
        assert "JSON-STRICT" in suppressions.get(line, set()), line


def test_noqa_on_first_line_of_a_continuation_covers_the_last():
    source = textwrap.dedent(
        """\
        value = compute(  # repro: noqa[RNG-SEED] spans the call
            first,
            second,
        )
        """
    )
    suppressions = parse_suppressions(source)
    for line in (1, 2, 3, 4):
        assert "RNG-SEED" in suppressions.get(line, set()), line


def test_multiline_call_noqa_suppresses_rule_anchored_on_first_line(tmp_path):
    findings = _lint_source(
        tmp_path,
        """\
        import json


        def write(payload):
            return json.dumps(
                payload,
            )  # repro: noqa[JSON-STRICT] multi-line call
        """,
    )
    assert findings == []


def test_noqa_on_def_line_covers_decorator_lines():
    import ast

    source = textwrap.dedent(
        """\
        @register(
            name="slow",
        )
        def handler():  # repro: noqa[EXC-SILENT] decorated header
            pass
        """
    )
    suppressions = parse_suppressions(source, tree=ast.parse(source))
    assert "EXC-SILENT" in suppressions.get(4, set())
    assert "EXC-SILENT" in suppressions.get(1, set())


def test_noqa_on_decorator_line_covers_the_def_line():
    import ast

    source = textwrap.dedent(
        """\
        @register  # repro: noqa[EXC-SILENT] decorator carries the noqa
        def handler():
            pass
        """
    )
    suppressions = parse_suppressions(source, tree=ast.parse(source))
    assert "EXC-SILENT" in suppressions.get(1, set())
    assert "EXC-SILENT" in suppressions.get(2, set())


def test_standalone_comment_between_statements_covers_itself_only():
    source = textwrap.dedent(
        """\
        x = 1
        # repro: noqa[RNG-SEED] floating comment
        y = 2
        """
    )
    suppressions = parse_suppressions(source)
    assert "RNG-SEED" in suppressions.get(2, set())
    assert suppressions.get(1, set()) == set()
    assert suppressions.get(3, set()) == set()
