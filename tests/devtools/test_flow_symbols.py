"""Symbol table and call graph: resolution classes and SCC order."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.flow.symbols import build_program, condensation_order

FIXTURES = Path(__file__).parent / "fixtures"


def _sites(program, caller):
    return list(program.calls.get(caller, []))


def test_modules_and_functions_collected():
    program = build_program(FIXTURES / "flow_taint_bad")
    assert set(program.modules) == {
        "flow_taint_bad",
        "flow_taint_bad.clock",
        "flow_taint_bad.relay",
        "flow_taint_bad.export",
        "flow_taint_bad.cycle",
    }
    assert "flow_taint_bad.clock.wall_stamp" in program.functions
    assert "flow_taint_bad.export.publish" in program.functions


def test_direct_cross_module_edge_resolves():
    program = build_program(FIXTURES / "flow_taint_bad")
    sites = _sites(program, "flow_taint_bad.relay.tagged")
    edges = {(s.kind, s.targets) for s in sites}
    assert ("direct", ("flow_taint_bad.clock.wall_stamp",)) in edges


def test_external_import_keeps_canonical_name():
    program = build_program(FIXTURES / "flow_taint_bad")
    sites = _sites(program, "flow_taint_bad.export.publish")
    dumps = [s for s in sites if s.canonical == "repro.export.jsonsafe.dumps"]
    assert len(dumps) == 1
    assert dumps[0].kind == "external"
    assert not dumps[0].resolved


def test_method_dispatch_via_parameter_annotation():
    program = build_program(FIXTURES / "flow_taint_good")
    sites = _sites(program, "flow_taint_good.methods.drive")
    targets = {t for s in sites for t in s.targets}
    assert "flow_taint_good.methods.Engine.utility" in targets


def test_constructor_call_resolves_to_init():
    program = build_program(FIXTURES / "flow_taint_good")
    sites = _sites(program, "flow_taint_good.records.build")
    targets = {t for s in sites for t in s.targets}
    assert "flow_taint_good.records.OptimizationResult.__init__" in targets


def test_functools_partial_edge():
    program = build_program(FIXTURES / "flow_taint_good")
    sites = _sites(program, "flow_taint_good.partials.build")
    partial = [s for s in sites if s.kind == "partial"]
    assert [s.targets for s in partial] == [("flow_taint_good.partials.scale",)]


def test_unresolved_edges_are_an_explicit_class():
    program = build_program(FIXTURES / "flow_unresolved")
    sites = _sites(program, "flow_unresolved.dynamic.dispatch")
    kinds = sorted(s.kind for s in sites)
    # hook(payload) and handler.frobnicate() cannot be resolved;
    # payload.items() is a known-safe container method (external);
    # helper(payload) is a direct program edge.
    assert kinds.count("unresolved") == 2
    assert kinds.count("direct") == 1
    unresolved = program.unresolved_sites()
    assert len(unresolved) == 2
    assert {s.line for s in unresolved} == {10, 12}


def test_scc_condensation_is_callee_first():
    program = build_program(FIXTURES / "flow_taint_bad")
    components = condensation_order(program)
    cycle = next(c for c in components if "flow_taint_bad.cycle.ping" in c)
    assert set(cycle) == {"flow_taint_bad.cycle.ping", "flow_taint_bad.cycle.pong"}
    digest = next(c for c in components if "flow_taint_bad.cycle.digest" in c)
    assert components.index(cycle) < components.index(digest)
