"""Golden fixtures for the interprocedural taint rules."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.flow.symbols import build_program
from repro.devtools.flow.taint import ORDER_RULE_ID, TAINT_RULE_ID, analyze_taint

FIXTURES = Path(__file__).parent / "fixtures"


def _analyze(name):
    program = build_program(FIXTURES / name)
    findings, summaries = analyze_taint(program)
    return findings, summaries


def test_clock_taint_through_three_call_frames():
    findings, _ = _analyze("flow_taint_bad")
    hits = [f for f in findings if f.path.endswith("export.py")]
    assert [(f.rule, f.line) for f in hits] == [(TAINT_RULE_ID, 10)]
    assert "wall-clock taint reaches jsonsafe export" in hits[0].message
    assert "flow_taint_bad.export.publish" in hits[0].message


def test_cyclic_scc_converges_and_reports_exactly_once():
    findings, _ = _analyze("flow_taint_bad")
    hits = [f for f in findings if f.path.endswith("cycle.py")]
    assert [(f.rule, f.line) for f in hits] == [(TAINT_RULE_ID, 19)]
    assert "digest input" in hits[0].message


def test_param_sink_summary_crosses_the_frame_boundary():
    _, summaries = _analyze("flow_taint_bad")
    digest = summaries["flow_taint_bad.cycle.digest"]
    assert any(index == 0 and "digest input" in label
               for index, label, _, _ in digest.param_sinks)


def test_good_package_has_no_findings():
    # Covers the derived-from-inputs chain, the partial edge, the
    # annotated method dispatch, and CLOCK into the exempt
    # ``solve_seconds`` field of an OptimizationResult.
    findings, _ = _analyze("flow_taint_good")
    assert findings == []


def test_order_leak_through_digest_loop():
    findings, _ = _analyze("flow_order_bad")
    hits = [f for f in findings if f.path.endswith("report.py")]
    assert [(f.rule, f.line) for f in hits] == [(ORDER_RULE_ID, 13)]
    assert "set-iteration order reaches digest input" in hits[0].message


def test_order_leak_into_record_field():
    findings, _ = _analyze("flow_order_bad")
    hits = [f for f in findings if f.path.endswith("records.py")]
    assert [(f.rule, f.line) for f in hits] == [(ORDER_RULE_ID, 14)]
    assert "field 'chosen' of OptimizationResult" in hits[0].message


def test_sorted_sanitizer_cuts_order_taint():
    findings, _ = _analyze("flow_order_good")
    assert findings == []
