"""Golden-fixture tests: each rule, one bad and one good file.

The bad fixtures are crafted so *only* the rule under test fires; the
expectations pin exact rule ids and line numbers, so a rule that
drifts (fires on new syntax, or stops firing) breaks loudly here.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint import lint_file

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture -> [(rule id, line)] — the complete expected finding set.
BAD = {
    "bad_rng_seed.py": [
        ("RNG-SEED", 9),
        ("RNG-SEED", 10),
        ("RNG-SEED", 11),
        ("RNG-SEED", 12),
    ],
    "bad_clock_inject.py": [
        ("CLOCK-INJECT", 8),
        ("CLOCK-INJECT", 9),
        ("CLOCK-INJECT", 10),
    ],
    "bad_json_strict.py": [
        ("JSON-STRICT", 7),
        ("JSON-STRICT", 8),
    ],
    "bad_exc_silent.py": [
        ("EXC-SILENT", 7),
        ("EXC-SILENT", 14),
    ],
    "bad_pickle_safe.py": [
        ("PICKLE-SAFE", 7),
        ("PICKLE-SAFE", 12),
    ],
    "bad_shm_safe.py": [
        ("SHM-SAFE", 7),
        ("SHM-SAFE", 9),
    ],
    "bad_mut_default.py": [
        ("MUT-DEFAULT", 6),
        ("MUT-DEFAULT", 11),
        ("MUT-DEFAULT", 17),
    ],
    "export_bad/repro/export/table.py": [
        ("TYPECHECK-IMPORT", 3),
    ],
    "hotpath_bad/repro/runtime/parallel.py": [
        ("OBS-SPAN", 4),
    ],
    "hotpath_missing/repro/runtime/parallel.py": [
        ("OBS-SPAN", 1),
    ],
}

GOOD = [
    "good_rng_seed.py",
    "good_clock_inject.py",
    "good_json_strict.py",
    "good_exc_silent.py",
    "good_pickle_safe.py",
    "good_mut_default.py",
    "shm_good/repro/runtime/pool.py",
    "export_good/repro/export/table.py",
    "hotpath_good/repro/runtime/parallel.py",
]


@pytest.mark.parametrize("fixture", sorted(BAD))
def test_bad_fixture_fires_exactly_its_rule(fixture):
    findings = lint_file(FIXTURES / fixture)
    assert [(f.rule, f.line) for f in findings] == BAD[fixture]


@pytest.mark.parametrize("fixture", GOOD)
def test_good_fixture_is_clean(fixture):
    assert lint_file(FIXTURES / fixture) == []


def test_every_ast_rule_has_a_bad_and_a_good_fixture():
    from repro.devtools.rules import ALL_RULES

    covered = {rule for fixture in BAD.values() for rule, _ in fixture}
    assert covered == {rule.rule_id for rule in ALL_RULES}
    assert len(GOOD) >= len(ALL_RULES)


def test_findings_are_error_severity_except_obs_span():
    for fixture, expected in BAD.items():
        for finding in lint_file(FIXTURES / fixture):
            if finding.rule == "OBS-SPAN":
                assert finding.severity == "warning"
            else:
                assert finding.severity == "error"


def test_module_names_resolve_through_fixture_packages():
    from repro.devtools.base import module_name_for

    path = FIXTURES / "export_bad" / "repro" / "export" / "table.py"
    assert module_name_for(path) == "repro.export.table"
    path = FIXTURES / "hotpath_bad" / "repro" / "runtime" / "parallel.py"
    assert module_name_for(path) == "repro.runtime.parallel"
