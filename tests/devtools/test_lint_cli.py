"""Entry points: ``repro lint``, ``python -m repro.devtools``, exit codes."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro import cli
from repro.devtools.lint import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_repo_source_tree_lints_clean(capsys):
    # The meta-test: the merged tree passes its own linter.
    assert cli.main(["lint", str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "clean: no findings" in out


def test_bad_fixture_exits_one_with_rule_ids(capsys):
    assert cli.main(["lint", str(FIXTURES / "bad_rng_seed.py")]) == 1
    out = capsys.readouterr().out
    assert "RNG-SEED" in out
    assert "4 finding(s)" in out


def test_unknown_rule_id_exits_two(capsys):
    assert cli.main(["lint", str(SRC), "--rule", "NO-SUCH-RULE"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_missing_path_exits_two(capsys):
    assert lint_main([str(FIXTURES / "does-not-exist")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_non_python_argument_exits_two(tmp_path, capsys):
    notes = tmp_path / "notes.txt"
    notes.write_text("not python\n")
    assert lint_main([str(notes)]) == 2
    assert "not a Python file or directory" in capsys.readouterr().err


def test_json_format_and_output_artifact(tmp_path, capsys):
    artifact = tmp_path / "findings.json"
    code = lint_main(
        [str(FIXTURES / "bad_json_strict.py"), "--format", "json", "--output", str(artifact)]
    )
    assert code == 1
    stdout_payload = json.loads(capsys.readouterr().out)
    file_payload = json.loads(artifact.read_text())
    assert stdout_payload == file_payload
    assert file_payload["count"] == 2
    assert file_payload["files_linted"] == 1
    assert {f["rule"] for f in file_payload["findings"]} == {"JSON-STRICT"}
    assert all(
        set(f) == {"rule", "path", "line", "col", "message", "severity"}
        for f in file_payload["findings"]
    )


def test_rule_filter_restricts_what_runs(capsys):
    # The RNG fixture has no clock findings, so filtering to
    # CLOCK-INJECT must come back clean even though RNG-SEED would fire.
    assert lint_main([str(FIXTURES / "bad_rng_seed.py"), "--rule", "CLOCK-INJECT"]) == 0
    capsys.readouterr()


def test_rule_ids_on_the_command_line_are_case_insensitive(capsys):
    assert lint_main([str(FIXTURES / "bad_rng_seed.py"), "--rule", "rng-seed"]) == 1
    capsys.readouterr()


def test_syntax_error_is_a_parse_error_finding(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert lint_main([str(broken)]) == 1
    assert "PARSE-ERROR" in capsys.readouterr().out


def test_text_report_lines_are_clickable_locations(capsys):
    lint_main([str(FIXTURES / "bad_json_strict.py")])
    first = capsys.readouterr().out.splitlines()[0]
    path, line, col, rest = first.split(":", 3)
    assert path.endswith("bad_json_strict.py")
    assert int(line) == 7 and int(col) >= 1
    assert "JSON-STRICT" in rest


def test_python_dash_m_entry_point(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC.parent) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.devtools", str(FIXTURES / "bad_mut_default.py")],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 1
    assert "MUT-DEFAULT" in proc.stdout
