"""Golden fixtures for the shared-state race rules."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.flow.races import FORK_RULE_ID, SHM_RULE_ID, fork_capture_findings
from repro.devtools.flow.symbols import build_program
from repro.devtools.flow.taint import analyze_taint

FIXTURES = Path(__file__).parent / "fixtures"


def _shm(name):
    program = build_program(FIXTURES / name)
    findings, _ = analyze_taint(program)
    return [f for f in findings if f.rule == SHM_RULE_ID]


def _fork(name):
    program = build_program(FIXTURES / name)
    return fork_capture_findings(program)


def test_store_through_attached_view():
    findings = _shm("flow_shm_bad")
    assert (SHM_RULE_ID, 8) in {(f.rule, f.line) for f in findings}
    hit = next(f for f in findings if f.line == 8)
    assert "write through an attached shared-memory view" in hit.message
    assert "flow_shm_bad.worker.scale" in hit.message


def test_mutating_method_on_attached_view():
    findings = _shm("flow_shm_bad")
    hit = next(f for f in findings if f.line == 14)
    assert ".fill() mutates an attached shared-memory view" in hit.message


def test_mutation_after_publish():
    findings = _shm("flow_shm_bad")
    hit = next(f for f in findings if f.line == 19)
    assert "'alpha' is mutated after being published" in hit.message
    assert "published at line 18" in hit.message


def test_shm_bad_fixture_is_exactly_three_findings():
    assert [f.line for f in _shm("flow_shm_bad")] == [8, 14, 19]


def test_reads_and_private_writes_are_clean():
    assert _shm("flow_shm_good") == []


def test_worker_task_capturing_module_lock():
    findings = _fork("flow_fork_bad")
    hit = next(f for f in findings if f.line == 12)
    assert hit.rule == FORK_RULE_ID
    assert "captures fork-unsafe module global '_LOCK'" in hit.message
    assert "threading.Lock" in hit.message


def test_nested_pool_inside_worker_task():
    findings = _fork("flow_fork_bad")
    hit = next(f for f in findings if f.line == 17)
    assert "constructs a nested PersistentPool" in hit.message
    assert "worker task flow_fork_bad.tasks.nested" in hit.message


def test_transitively_reachable_helper_is_attributed_to_its_entry():
    findings = _fork("flow_fork_bad")
    hit = next(f for f in findings if f.line == 26)
    assert "flow_fork_bad.tasks._spawn_helper" in hit.message
    assert "worker task flow_fork_bad.tasks.indirect" in hit.message


def test_pure_worker_task_is_clean():
    assert _fork("flow_fork_good") == []
