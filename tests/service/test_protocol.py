"""The line-delimited JSON protocol, in memory and over the real CLI.

The in-memory tests compose a :class:`LineServer` with list-backed
streams — no sockets, no subprocesses — so every reply is assertable
deterministically.  One smoke test then drives the actual ``repro
serve`` entry point over stdin to pin the CLI wiring.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.serialization import model_to_dict
from repro.export.jsonsafe import dumps as strict_dumps
from repro.service import ServiceConfig, SolveRequest, SolveService, model_digest
from repro.service.protocol import (
    LineServer,
    ProtocolError,
    request_from_payload,
    value_to_payload,
)
from tests.conftest import build_toy_builder
from tests.service.conftest import oracle_value

pytestmark = pytest.mark.service

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def model():
    return build_toy_builder().build()


def serve_lines(lines, config=None):
    """Feed ``lines`` to a fresh service's LineServer; return the replies."""

    async def scenario():
        service = SolveService(config or ServiceConfig(workers=2))
        await service.start()
        replies: list[str] = []
        pending = iter(list(lines))

        async def readline():
            return next(pending, None)

        async def writeline(line):
            replies.append(line)

        try:
            await LineServer(service).serve(readline, writeline)
        finally:
            await service.aclose()
        return [json.loads(reply) for reply in replies]

    return asyncio.run(scenario())


def submit_line(msg_id, request_payload):
    return json.dumps({"op": "submit", "id": msg_id, "request": request_payload})


def by_id(replies, msg_id):
    return [r for r in replies if r.get("id") == msg_id]


class TestRequestFromPayload:
    def test_round_trips_a_full_payload(self, model):
        request = request_from_payload(
            {
                "tenant": "t0",
                "kind": "sweep",
                "model": model_to_dict(model),
                "fractions": [0.25, 0.5],
                "weights": {"coverage": 1.0, "redundancy": 0.0, "richness": 0.0},
                "job_id": "j1",
            }
        )
        assert request.kind.value == "sweep"
        assert request.fractions == (0.25, 0.5)
        assert request.weights.coverage == 1.0
        assert model_digest(request.model) == model_digest(model)

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request fields"):
            request_from_payload({"tenant": "t", "kind": "sweep", "model_ref": "x", "frac": 1})

    def test_non_object_payload_is_rejected(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            request_from_payload(["not", "a", "dict"])


class TestLineServer:
    def test_publish_then_submit_by_ref(self, model):
        digest = model_digest(model)
        replies = serve_lines(
            [
                json.dumps({"op": "publish", "id": "p1", "model": model_to_dict(model)}),
                submit_line(
                    "s1",
                    {
                        "tenant": "t0",
                        "kind": "max-utility",
                        "model_ref": digest,
                        "budget_fraction": 0.5,
                        "job_id": "j1",
                    },
                ),
            ]
        )
        (published,) = by_id(replies, "p1")
        assert published["ok"] is True
        assert published["model_ref"] == digest
        ack, result = by_id(replies, "s1")
        assert ack == {"id": "s1", "ok": True, "status": "pending"}
        assert result["ok"] is True
        assert result["result"]["status"] == "succeeded"
        request = SolveRequest(
            tenant="t0", kind="max-utility", model=model, budget_fraction=0.5
        )
        assert result["result"]["value"] == value_to_payload(oracle_value(model, request))

    def test_identical_submits_serialize_byte_identically(self, model):
        payload = {
            "tenant": "t0",
            "kind": "max-utility",
            "model": model_to_dict(model),
            "budget_fraction": 0.5,
        }
        replies = serve_lines([submit_line("a", payload), submit_line("b", payload)])
        values = [
            strict_dumps(r["result"]["value"], sort_keys=True)
            for r in replies
            if "result" in r
        ]
        assert len(values) == 2
        assert values[0] == values[1]

    def test_bad_json_answers_instead_of_killing_the_stream(self, model):
        replies = serve_lines(
            [
                "{this is not json",
                json.dumps({"op": "stats", "id": "t1"}),
            ]
        )
        assert replies[0]["ok"] is False
        assert replies[0]["error"]["type"] == "ProtocolError"
        (stats,) = by_id(replies, "t1")
        assert stats["ok"] is True  # the stream survived the bad line

    def test_unknown_op_and_unknown_ref_are_typed_errors(self):
        replies = serve_lines(
            [
                json.dumps({"op": "renegotiate", "id": "x1"}),
                submit_line(
                    "x2",
                    {
                        "tenant": "t0",
                        "kind": "max-utility",
                        "model_ref": "feedbeef",
                        "budget_fraction": 0.5,
                    },
                ),
            ]
        )
        (unknown_op,) = by_id(replies, "x1")
        assert unknown_op["ok"] is False
        assert "unknown op" in unknown_op["error"]["message"]
        (unknown_ref,) = by_id(replies, "x2")
        assert unknown_ref["ok"] is False
        assert unknown_ref["error"]["type"] == "RequestValidationError"
        assert unknown_ref["error"]["problems"]

    def test_invalid_request_lists_problems(self, model):
        replies = serve_lines(
            [submit_line("v1", {"tenant": "", "kind": "sweep", "model": model_to_dict(model)})]
        )
        (reply,) = by_id(replies, "v1")
        assert reply["ok"] is False
        assert len(reply["error"]["problems"]) >= 2

    def test_cancel_unknown_target_is_an_error(self):
        replies = serve_lines([json.dumps({"op": "cancel", "id": "c1", "target": "nope"})])
        (reply,) = by_id(replies, "c1")
        assert reply["ok"] is False
        assert "unknown submit id" in reply["error"]["message"]

    def test_cancel_known_target_replies_with_verdict(self, model):
        payload = {
            "tenant": "t0",
            "kind": "max-utility",
            "model": model_to_dict(model),
            "budget_fraction": 0.5,
        }
        replies = serve_lines(
            [
                submit_line("s1", payload),
                json.dumps({"op": "cancel", "id": "c1", "target": "s1"}),
            ]
        )
        (cancel,) = by_id(replies, "c1")
        assert cancel["ok"] is True
        assert isinstance(cancel["cancelled"], bool)
        # Whether or not the cancel won the race, s1 reached a terminal
        # state and its result line was delivered.
        ack, result = by_id(replies, "s1")
        assert result["result"]["status"] in ("succeeded", "cancelled")

    def test_stats_reply_shape(self):
        replies = serve_lines([json.dumps({"op": "stats", "id": "t1"})])
        (reply,) = by_id(replies, "t1")
        assert reply["ok"] is True
        stats = reply["stats"]
        assert {"pending", "workers", "sessions", "results"} <= set(stats)


class TestServeCli:
    def test_stdin_smoke(self, model):
        digest = model_digest(model)
        lines = [
            json.dumps({"op": "publish", "id": "p1", "model": model_to_dict(model)}),
            submit_line(
                "s1",
                {
                    "tenant": "t0",
                    "kind": "max-utility",
                    "model_ref": digest,
                    "budget_fraction": 0.5,
                    "job_id": "cli-smoke",
                },
            ),
            json.dumps({"op": "stats", "id": "t1"}),
        ]
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--workers", "1"],
            input="\n".join(lines) + "\n",
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        replies = [json.loads(line) for line in proc.stdout.splitlines() if line.strip()]
        assert by_id(replies, "p1")[0]["model_ref"] == digest
        ack, result = by_id(replies, "s1")
        assert ack["ok"] is True
        assert result["result"]["status"] == "succeeded"
        assert result["result"]["job_id"] == "cli-smoke"
        assert by_id(replies, "t1")[0]["ok"] is True
