"""Request validation and the digests deduplication keys on."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.metrics.utility import UtilityWeights
from repro.service import (
    JobKind,
    RequestValidationError,
    SolveRequest,
    model_digest,
    request_digest,
)
from tests.conftest import build_toy_builder

pytestmark = pytest.mark.service


def valid_request(**overrides) -> SolveRequest:
    base = dict(
        tenant="t0", kind="max-utility", model_ref="abc123", budget_fraction=0.5
    )
    base.update(overrides)
    return SolveRequest(**base)


class TestValidation:
    def test_valid_request_has_no_problems(self):
        assert valid_request().problems() == []
        assert valid_request().validate() is not None

    def test_kind_coerces_from_string(self):
        assert valid_request().kind is JobKind.MAX_UTILITY
        with pytest.raises(ValueError):
            valid_request(kind="nope")

    def test_sequences_normalize_to_tuples(self):
        request = SolveRequest(
            tenant="t0",
            kind="sweep",
            model_ref="abc",
            fractions=[0.2, 0.4],
            fully_cover=["h1"],
            forced_monitors=["m1"],
        )
        assert request.fractions == (0.2, 0.4)
        assert request.fully_cover == ("h1",)
        assert request.forced_monitors == ("m1",)

    def test_exactly_one_model_source(self):
        model = build_toy_builder().build()
        assert "exactly one of model / model_ref" in " ".join(
            valid_request(model=model).problems()
        )
        assert "exactly one of model / model_ref" in " ".join(
            valid_request(model_ref=None).problems()
        )

    def test_empty_tenant_rejected(self):
        assert any("tenant" in p for p in valid_request(tenant="  ").problems())

    def test_unknown_backend_rejected(self):
        assert any("backend" in p for p in valid_request(backend="cplex").problems())

    def test_fallback_backend_is_max_utility_only(self):
        ok = valid_request(backend="fallback")
        assert ok.problems() == []
        bad = SolveRequest(
            tenant="t0", kind="sweep", model_ref="abc", fractions=(0.5,), backend="fallback"
        )
        assert any("fallback" in p for p in bad.problems())

    def test_max_utility_needs_exactly_one_budget(self):
        assert valid_request(budget_fraction=None).problems()
        assert valid_request(budget_limits={"cpu": 4}).problems()
        assert valid_request(budget_fraction=None, budget_limits={"cpu": 4}).problems() == []

    def test_min_cost_needs_a_requirement(self):
        bare = SolveRequest(tenant="t0", kind="min-cost", model_ref="abc")
        assert any("min-cost" in p for p in bare.problems())
        assert valid_request(kind="min-cost", budget_fraction=None, min_utility=1.5).problems()
        assert (
            valid_request(kind="min-cost", budget_fraction=None, min_utility=0.4).problems()
            == []
        )

    def test_sweep_needs_nonnegative_fractions(self):
        bare = SolveRequest(tenant="t0", kind="sweep", model_ref="abc")
        assert any("sweep" in p for p in bare.problems())
        bad = SolveRequest(tenant="t0", kind="sweep", model_ref="abc", fractions=(-0.1,))
        assert any(">= 0" in p for p in bad.problems())

    def test_frontier_knob_bounds(self):
        bad = SolveRequest(
            tenant="t0", kind="frontier", model_ref="abc", epsilon=0.0, max_points=0
        )
        problems = bad.problems()
        assert any("epsilon" in p for p in problems)
        assert any("max_points" in p for p in problems)

    def test_scalar_bounds(self):
        assert valid_request(budget_fraction=-0.5).problems()
        assert valid_request(budget_limits={"cpu": -1}, budget_fraction=None).problems()
        assert valid_request(deadline=0.0).problems()
        assert valid_request(time_limit=-1.0).problems()
        assert valid_request(max_monitors=-1).problems()

    def test_validate_lists_every_problem(self):
        request = SolveRequest(
            tenant="", kind="max-utility", model_ref="abc", backend="cplex", deadline=-1
        )
        with pytest.raises(RequestValidationError) as excinfo:
            request.validate()
        problems = excinfo.value.problems
        assert len(problems) >= 4
        for problem in problems:
            assert problem in str(excinfo.value)


class TestSite:
    def test_site_uses_job_id_when_present(self):
        assert valid_request(job_id="j7").site == "service.job.t0.j7"

    def test_site_falls_back_to_kind(self):
        assert valid_request().site == "service.job.t0.max-utility"


class TestDigests:
    def test_model_digest_is_structural(self):
        a = build_toy_builder().build()
        b = build_toy_builder().build()
        assert a is not b
        assert model_digest(a) == model_digest(b)

    def test_model_digest_is_memoized(self):
        model = build_toy_builder().build()
        assert model_digest(model) == model_digest(model)

    def test_request_digest_ignores_scheduling_fields(self):
        base = valid_request(job_id="a", deadline=5.0)
        for variant in (
            replace(base, job_id="b"),
            replace(base, deadline=99.0),
            replace(base, tenant="someone-else"),
        ):
            assert request_digest(variant, "md") == request_digest(base, "md")

    def test_request_digest_covers_result_shaping_fields(self):
        base = valid_request()
        digests = {
            request_digest(base, "md"),
            request_digest(replace(base, budget_fraction=0.6), "md"),
            request_digest(replace(base, backend="branch-and-bound"), "md"),
            request_digest(replace(base, weights=UtilityWeights(coverage=1.0, redundancy=0.0, richness=0.0)), "md"),
            request_digest(replace(base, max_nodes=10), "md"),
            request_digest(base, "other-model"),
        }
        assert len(digests) == 6
