"""Service-suite helpers: direct oracles and canonical payloads.

The differential tests all reduce to one comparison: the canonical
JSON of a job's payload as computed *by the service* versus the same
request solved *directly* (cold, serial, no service, no caches).  Both
sides go through :func:`repro.service.protocol.value_to_payload`, which
deliberately excludes wall-clock fields, so "bit-identical" here means
byte-identical canonical JSON.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.export.jsonsafe import dumps as strict_dumps
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.frontier import exact_frontier
from repro.optimize.pareto import budget_sweep
from repro.optimize.problem import MaxUtilityProblem, MinCostProblem
from repro.service import (
    JobKind,
    JobResult,
    ServiceConfig,
    SolveRequest,
    SolveService,
)
from repro.service.loadgen import self_submitting
from repro.service.protocol import value_to_payload


def canon(value: Any) -> str:
    """Canonical JSON of a job payload — the bit-identity comparator."""
    return strict_dumps(value_to_payload(value), sort_keys=True)


def oracle_value(model, request: SolveRequest) -> Any:
    """What a direct, cold, serial call computes for ``request``.

    Mirrors ``SolveService._dispatch`` knob for knob, minus every warm
    object (no family, no session, no caches) — the ground truth the
    service's determinism contract is pinned against.
    """
    weights = request.weights or UtilityWeights()
    kind = request.kind
    if kind is JobKind.MAX_UTILITY:
        budget = (
            Budget(request.budget_limits)
            if request.budget_limits is not None
            else Budget.fraction_of_total(model, request.budget_fraction or 0.0)
        )
        problem = MaxUtilityProblem(
            model,
            budget,
            weights,
            forced_monitors=request.forced_monitors,
            max_monitors=request.max_monitors,
        )
        return problem.solve(
            request.backend,
            time_limit=request.time_limit,
            max_nodes=request.max_nodes,
            gap=request.gap,
        )
    if kind is JobKind.MIN_COST:
        problem = MinCostProblem(
            model,
            min_utility=request.min_utility,
            fully_cover=request.fully_cover,
            weights=weights,
        )
        return problem.solve(
            request.backend,
            time_limit=request.time_limit,
            max_nodes=request.max_nodes,
            gap=request.gap,
        )
    if kind is JobKind.SWEEP:
        return budget_sweep(
            model,
            list(request.fractions),
            weights,
            backend=request.backend,
            time_limit=request.time_limit,
            workers=1,
            max_nodes=request.max_nodes,
            gap=request.gap,
        )
    if kind is JobKind.FRONTIER:
        return exact_frontier(
            model,
            weights,
            backend=request.backend,
            epsilon=request.epsilon,
            max_points=request.max_points,
            time_limit=request.time_limit,
            max_nodes=request.max_nodes,
            gap=request.gap,
        )
    raise AssertionError(f"no oracle for job kind {kind!r}")


def run_jobs(
    requests: list[SolveRequest], config: ServiceConfig | None = None
) -> list[JobResult]:
    """Submit ``requests`` (in order) against a fresh service; await all.

    Submission handles backpressure the way a polite client would
    (await and resubmit), so the returned list always has one terminal
    result per request, aligned by index.
    """

    async def scenario() -> list[JobResult]:
        async with SolveService(config or ServiceConfig()) as service:
            handles = [await self_submitting(service, r) for r in requests]
            return [await h for h in handles]

    return asyncio.run(scenario())
