"""Admission backpressure, cancellation, deadlines, and lifecycle.

Most scenarios construct the service *unstarted*: submissions queue
deterministically with no worker racing the assertions, which is what
lets the deadline test run entirely on a ManualClock with zero
wall-clock sleeps.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.obs.clock import ManualClock
from repro.service import (
    JobStatus,
    QueueFullRejection,
    ServiceClosedRejection,
    ServiceConfig,
    SolveRequest,
    SolveService,
    TenantBusyRejection,
    TenantPolicy,
)

pytestmark = pytest.mark.service


def request(model, tenant="t0", fraction=0.5, job_id=None, deadline=None):
    return SolveRequest(
        tenant=tenant,
        kind="max-utility",
        model=model,
        budget_fraction=fraction,
        job_id=job_id,
        deadline=deadline,
    )


def run(coro_fn, *args):
    return asyncio.run(coro_fn(*args))


class TestQueueBounds:
    def test_overflow_is_a_typed_rejection(self, toy_model):
        async def scenario():
            service = SolveService(ServiceConfig(workers=1, queue_limit=2))
            service.submit(request(toy_model, fraction=0.1))
            service.submit(request(toy_model, fraction=0.2))
            before = obs.counter("service.jobs.rejected.queue_full").value
            with pytest.raises(QueueFullRejection) as excinfo:
                service.submit(request(toy_model, fraction=0.3))
            assert excinfo.value.retry_after > 0
            assert obs.counter("service.jobs.rejected.queue_full").value == before + 1
            assert service.stats()["pending"] == 2
            await service.aclose()

        run(scenario)

    def test_tenant_pending_bound_is_per_tenant(self, toy_model):
        async def scenario():
            config = ServiceConfig(
                workers=1,
                queue_limit=16,
                default_policy=TenantPolicy(max_running=1, max_pending=1),
            )
            service = SolveService(config)
            service.submit(request(toy_model, tenant="a", fraction=0.1))
            with pytest.raises(TenantBusyRejection):
                service.submit(request(toy_model, tenant="a", fraction=0.2))
            # Another tenant still has room.
            service.submit(request(toy_model, tenant="b", fraction=0.2))
            await service.aclose()

        run(scenario)

    def test_dedup_join_bypasses_queue_bounds(self, toy_model):
        # An identical in-flight request shares the primary's slot, so
        # joining it is never a capacity question.
        async def scenario():
            service = SolveService(ServiceConfig(workers=1, queue_limit=1))
            primary = service.submit(request(toy_model, fraction=0.1, job_id="p"))
            follower = service.submit(request(toy_model, fraction=0.1, job_id="f"))
            assert service.stats()["pending"] == 1
            await service.start()
            p, f = await primary, await follower
            assert p.ok and f.ok
            assert f.deduped and not p.deduped
            assert f.value is p.value
            assert f.job_id == "f"
            await service.aclose()

        run(scenario)


class TestCancellation:
    def test_cancelling_pending_releases_the_queue_slot(self, toy_model):
        async def scenario():
            service = SolveService(ServiceConfig(workers=1, queue_limit=2))
            first = service.submit(request(toy_model, fraction=0.1))
            service.submit(request(toy_model, fraction=0.2))
            with pytest.raises(QueueFullRejection):
                service.submit(request(toy_model, fraction=0.3))
            assert first.cancel() is True
            result = await first
            assert result.status is JobStatus.CANCELLED
            # The slot freed synchronously: the same submit now fits.
            service.submit(request(toy_model, fraction=0.3))
            await service.aclose()

        run(scenario)

    def test_cancel_after_completion_is_a_noop(self, toy_model):
        async def scenario():
            async with SolveService(ServiceConfig(workers=1)) as service:
                handle = service.submit(request(toy_model))
                result = await handle
                assert result.ok
                assert handle.cancel() is False
                assert (await handle).ok

        run(scenario)

    def test_close_without_drain_cancels_pending(self, toy_model):
        async def scenario():
            service = SolveService(ServiceConfig(workers=1))
            handles = [
                service.submit(request(toy_model, fraction=f)) for f in (0.1, 0.2, 0.3)
            ]
            await service.aclose(drain=False)
            for handle in handles:
                assert (await handle).status is JobStatus.CANCELLED

        run(scenario)


class TestDeadlines:
    def test_expiry_is_driven_by_the_injected_clock(self, toy_model):
        # No wall-clock sleeps anywhere: the queue wait is *manufactured*
        # by advancing a ManualClock while the service is not started.
        async def scenario():
            clock = ManualClock()
            service = SolveService(ServiceConfig(workers=1, clock=clock))
            late = service.submit(
                request(toy_model, fraction=0.1, job_id="late", deadline=5.0)
            )
            alive = service.submit(
                request(toy_model, fraction=0.2, job_id="alive", deadline=500.0)
            )
            clock.advance(10.0)
            expired_before = obs.counter("service.jobs.expired").value
            await service.start()
            late_result, alive_result = await late, await alive
            assert late_result.status is JobStatus.EXPIRED
            assert late_result.failure is not None
            assert late_result.failure.stage == "deadline"
            assert late_result.failure.error_type == "DeadlineExpired"
            assert late_result.failure.attempts == 0
            assert late_result.queue_seconds == 10.0
            assert obs.counter("service.jobs.expired").value == expired_before + 1
            # The surviving job saw its remaining budget, not the full one.
            assert alive_result.ok
            assert alive_result.deadline_remaining == 490.0
            await service.aclose()

        run(scenario)


class TestLifecycle:
    def test_closed_service_rejects_typed(self, toy_model):
        async def scenario():
            service = SolveService(ServiceConfig(workers=1))
            await service.start()
            await service.aclose()
            with pytest.raises(ServiceClosedRejection):
                service.submit(request(toy_model))

        run(scenario)

    def test_stats_shape(self, toy_model):
        async def scenario():
            async with SolveService(ServiceConfig(workers=3)) as service:
                handle = service.submit(request(toy_model))
                await handle
                stats = service.stats()
                assert stats["workers"] == 3
                assert stats["closed"] is False
                assert stats["results"] == 1
                assert stats["sessions"]["entries"] == 1

        run(scenario)
