"""Cache semantics: identity hits, LRU/TTL eviction, counter reconciliation.

Two invariants matter here.  First, warmth is invisible in results: a
cache hit answers with the *originally computed object*, so hit-vs-cold
bit-identity holds by construction — pinned below over 50 seeded
synthetic models.  Second, the ``service.cache.*`` /
``service.results.*`` counters (the ones ``registry_snapshot.json``
serializes) reconcile exactly with the insert/evict sequence a test
scripts: live entries always equal insertions minus evictions.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.casestudy.scaling import synthetic_model
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.obs.clock import ManualClock
from repro.optimize.problem import MaxUtilityProblem
from repro.service import ServiceConfig, SolveRequest, SolveService, model_digest
from repro.service.cache import _EMPTY_ENTRY_BYTES, ResultCache, SessionCache
from tests.service.conftest import canon, oracle_value

pytestmark = pytest.mark.service

SESSION_COUNTERS = (
    "service.cache.hits",
    "service.cache.misses",
    "service.cache.evictions.lru",
    "service.cache.evictions.ttl",
)
RESULT_COUNTERS = (
    "service.results.hits",
    "service.results.misses",
    "service.results.insertions",
    "service.results.evictions",
)


def counter_values(names):
    return {name: obs.counter(name).value for name in names}


def counter_deltas(names, baseline):
    return {name: obs.counter(name).value - baseline[name] for name in names}


class TestSessionCache:
    def test_hit_returns_the_same_entry_object(self, toy_model):
        cache = SessionCache()
        baseline = counter_values(SESSION_COUNTERS)
        digest = model_digest(toy_model)
        first = cache.checkout("t0", toy_model, digest, None, "scipy")
        second = cache.checkout("t0", toy_model, digest, None, "scipy")
        assert second is first
        assert second.family is first.family
        assert second.session is first.session
        assert second.uses == 2
        deltas = counter_deltas(SESSION_COUNTERS, baseline)
        assert deltas["service.cache.misses"] == 1
        assert deltas["service.cache.hits"] == 1

    def test_key_partitions_tenant_weights_backend(self, toy_model):
        cache = SessionCache()
        digest = model_digest(toy_model)
        sharp = UtilityWeights(coverage=1.0, redundancy=0.0, richness=0.0)
        entries = {
            cache.checkout("t0", toy_model, digest, None, "scipy").key,
            cache.checkout("t1", toy_model, digest, None, "scipy").key,
            cache.checkout("t0", toy_model, digest, sharp, "scipy").key,
            cache.checkout("t0", toy_model, digest, None, "branch-and-bound").key,
        }
        assert len(entries) == 4
        assert len(cache) == 4

    def test_lru_eviction_reconciles_with_scripted_sequence(self, toy_model):
        # Entries start at the 4 KiB floor estimate, so a 9000-byte
        # budget holds exactly two: every third insert evicts the LRU.
        cache = SessionCache(max_bytes=2 * _EMPTY_ENTRY_BYTES + 100)
        baseline = counter_values(SESSION_COUNTERS)
        digest = model_digest(toy_model)

        def checkout(tenant, backend="scipy"):
            return cache.checkout(tenant, toy_model, digest, None, backend)

        checkout("a")            # miss: {a}
        checkout("b")            # miss: {a, b}
        checkout("a")            # hit:  {b, a}
        checkout("c")            # miss: evicts b -> {a, c}
        checkout("b")            # miss again (was evicted): evicts a -> {c, b}
        checkout("c")            # hit
        deltas = counter_deltas(SESSION_COUNTERS, baseline)
        assert deltas["service.cache.misses"] == 4
        assert deltas["service.cache.hits"] == 2
        assert deltas["service.cache.evictions.lru"] == 2
        assert deltas["service.cache.evictions.ttl"] == 0
        # Reconciliation: live entries == insertions - evictions.
        assert len(cache) == deltas["service.cache.misses"] - (
            deltas["service.cache.evictions.lru"] + deltas["service.cache.evictions.ttl"]
        )

    def test_the_touched_entry_is_never_evicted(self, toy_model):
        cache = SessionCache(max_bytes=1)  # everything is over budget
        digest = model_digest(toy_model)
        first = cache.checkout("a", toy_model, digest, None, "scipy")
        assert len(cache) == 1  # sole entry survives an impossible budget
        second = cache.checkout("b", toy_model, digest, None, "scipy")
        assert len(cache) == 1  # the just-touched entry displaced the old one
        assert cache.checkout("b", toy_model, digest, None, "scipy") is second
        assert cache.checkout("a", toy_model, digest, None, "scipy") is not first

    def test_idle_ttl_sweeps_on_a_manual_clock(self, toy_model):
        clock = ManualClock()
        cache = SessionCache(idle_ttl=10.0, clock=clock)
        baseline = counter_values(SESSION_COUNTERS)
        digest = model_digest(toy_model)
        cache.checkout("a", toy_model, digest, None, "scipy")
        clock.advance(6.0)
        cache.checkout("b", toy_model, digest, None, "scipy")
        clock.advance(6.0)  # a idle 12s (> ttl), b idle 6s
        cache.checkout("c", toy_model, digest, None, "scipy")
        deltas = counter_deltas(SESSION_COUNTERS, baseline)
        assert deltas["service.cache.evictions.ttl"] == 1
        assert len(cache) == 2
        # b is still warm; a went cold and must rebuild.
        assert counter_deltas(SESSION_COUNTERS, baseline)["service.cache.misses"] == 3
        cache.checkout("b", toy_model, digest, None, "scipy")
        assert counter_deltas(SESSION_COUNTERS, baseline)["service.cache.hits"] == 1

    def test_sparse_cores_sized_by_csr_payload_and_evict_in_lru_order(self):
        # Regression: the byte estimate once charged each memoized row
        # its dense ``vars x 8`` footprint.  A sparse core must be sized
        # by its CSR payload (data/indices/indptr), or one warm
        # catalog-scale entry busts any sane budget and the cache
        # thrashes.  Pin both the sizing and the eviction order it buys.
        big = synthetic_model(monitors=300, attacks=60, seed=11)
        digest = model_digest(big)

        def warm(cache, tenant):
            entry = cache.checkout(tenant, big, digest, None, "scipy")
            problem = MaxUtilityProblem(
                big,
                Budget.fraction_of_total(big, 0.4),
                UtilityWeights(),
                family=entry.family,
            )
            with entry.lock:
                problem.solve("scipy", session=entry.session)
            cache.note_bytes(entry)
            return entry

        probe = warm(SessionCache(), "probe")
        dense_equiv = obs.gauge("solver.matrix.dense_nbytes").value
        sparse_bytes = obs.gauge("solver.matrix.nbytes").value
        assert sparse_bytes < dense_equiv / 10  # the matrix really is sparse
        # The warm entry is charged its CSR-proportional footprint, a
        # small fraction of what dense rows x vars accounting implied.
        assert probe.nbytes < dense_equiv / 4

        # A budget that holds two warm sparse cores — but not even ONE
        # entry under the old dense sizing.
        budget = int(probe.nbytes * 2.5)
        assert budget < dense_equiv
        cache = SessionCache(max_bytes=budget)
        baseline = counter_values(SESSION_COUNTERS)
        a = warm(cache, "a")
        warm(cache, "b")
        deltas = counter_deltas(SESSION_COUNTERS, baseline)
        assert deltas["service.cache.evictions.lru"] == 0  # both fit
        # Touch a so b becomes LRU; inserting c must evict b, not a.
        assert cache.checkout("a", big, digest, None, "scipy") is a
        c = warm(cache, "c")
        deltas = counter_deltas(SESSION_COUNTERS, baseline)
        assert deltas["service.cache.evictions.lru"] == 1
        assert cache.checkout("a", big, digest, None, "scipy") is a  # survived
        assert cache.checkout("c", big, digest, None, "scipy") is c  # survived
        hits_before_b = counter_values(SESSION_COUNTERS)
        cache.checkout("b", big, digest, None, "scipy")  # was the LRU victim
        assert counter_deltas(SESSION_COUNTERS, hits_before_b)[
            "service.cache.misses"
        ] == 1

    def test_note_bytes_tracks_real_solver_state(self, toy_model):
        cache = SessionCache()
        digest = model_digest(toy_model)
        entry = cache.checkout("t0", toy_model, digest, None, "scipy")
        assert entry.nbytes == _EMPTY_ENTRY_BYTES
        problem = MaxUtilityProblem(
            toy_model,
            Budget.fraction_of_total(toy_model, 0.5),
            UtilityWeights(),
            family=entry.family,
        )
        with entry.lock:
            problem.solve("scipy", session=entry.session)
        cache.note_bytes(entry)
        assert entry.nbytes > _EMPTY_ENTRY_BYTES
        snapshot = cache.snapshot()
        assert snapshot["entries"] == 1
        assert snapshot["total_bytes"] == entry.nbytes
        assert snapshot["tenants"] == ["t0"]


class TestResultCache:
    def test_hit_returns_the_original_object(self):
        cache = ResultCache()
        baseline = counter_values(RESULT_COUNTERS)
        payload = {"answer": 42}
        assert cache.get("t0", "d1") is None
        cache.put("t0", "d1", payload)
        assert cache.get("t0", "d1") is payload
        deltas = counter_deltas(RESULT_COUNTERS, baseline)
        assert deltas["service.results.misses"] == 1
        assert deltas["service.results.hits"] == 1
        assert deltas["service.results.insertions"] == 1

    def test_tenants_are_partitioned(self):
        cache = ResultCache()
        cache.put("t0", "d1", "mine")
        assert cache.get("t1", "d1") is None

    def test_eviction_counters_reconcile(self):
        cache = ResultCache(max_entries=2)
        baseline = counter_values(RESULT_COUNTERS)
        cache.put("t0", "d1", 1)
        cache.put("t0", "d2", 2)
        cache.get("t0", "d1")  # refresh d1: d2 is now LRU
        cache.put("t0", "d3", 3)  # evicts d2
        deltas = counter_deltas(RESULT_COUNTERS, baseline)
        assert deltas["service.results.insertions"] == 3
        assert deltas["service.results.evictions"] == 1
        assert len(cache) == deltas["service.results.insertions"] - deltas[
            "service.results.evictions"
        ]
        assert cache.get("t0", "d2") is None
        assert cache.get("t0", "d1") == 1


class TestHitVersusColdBitIdentity:
    """The satellite contract: warmth never changes an answer."""

    def test_fifty_seeded_models_hit_vs_cold(self):
        models = [
            synthetic_model(
                assets=6,
                data_types=5,
                monitor_types=4,
                monitors=8,
                attacks=4,
                seed=seed,
            )
            for seed in range(50)
        ]
        requests = [
            SolveRequest(
                tenant=f"tenant-{seed % 3}",
                kind="max-utility",
                model=models[seed],
                budget_fraction=0.4,
                job_id=f"seed-{seed}",
            )
            for seed in range(50)
        ]

        async def scenario():
            pairs = []
            async with SolveService(ServiceConfig(workers=2)) as service:
                for request in requests:
                    cold = await service.submit(request)
                    warm = await service.submit(request)
                    pairs.append((cold, warm))
            return pairs

        pairs = asyncio.run(scenario())
        for request, (cold, warm) in zip(requests, pairs):
            assert cold.ok and warm.ok
            assert not cold.cached
            assert warm.cached or warm.deduped
            # The warm answer is the very object the cold solve computed...
            assert warm.value is cold.value
            # ...and both are bit-identical to a direct, service-free solve.
            assert canon(cold.value) == canon(oracle_value(request.model, request))
