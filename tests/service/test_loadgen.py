"""The seeded load generator: determinism, report arithmetic, soak."""

from __future__ import annotations

import pytest

from repro import obs
from repro.service import ServiceConfig
from repro.service.loadgen import generate_load, percentile, traffic

pytestmark = pytest.mark.service


class TestPercentile:
    def test_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 1.0) == 5.0

    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0


class TestTraffic:
    def test_same_seed_is_the_same_request_sequence(self):
        a = traffic(40, tenants=4, seed=9, model_ref="ref")
        b = traffic(40, tenants=4, seed=9, model_ref="ref")
        assert a == b
        assert a != traffic(40, tenants=4, seed=10, model_ref="ref")

    def test_mix_covers_every_kind_and_tenant(self):
        requests = traffic(60, tenants=3, seed=0, model_ref="ref")
        assert {r.kind.value for r in requests} == {
            "sweep",
            "max-utility",
            "min-cost",
            "frontier",
        }
        assert {r.tenant for r in requests} == {"tenant-0", "tenant-1", "tenant-2"}
        assert [r.job_id for r in requests[:3]] == ["job-0", "job-1", "job-2"]


class TestGenerateLoad:
    def test_report_arithmetic_holds(self, toy_model):
        report = generate_load(
            toy_model, jobs=40, tenants=3, seed=5, config=ServiceConfig(workers=2)
        )
        assert report.jobs == 40
        assert report.completed + report.failed == report.jobs
        assert report.failed == 0
        assert report.cached + report.deduped + report.executed_jobs == report.completed
        assert report.solve_units >= report.completed
        assert 0.0 <= report.hit_rate <= 1.0
        assert report.p50_seconds <= report.p99_seconds
        assert report.counters["service.jobs.submitted"] >= report.jobs
        payload = report.to_dict()
        assert payload["jobs"] == 40
        assert payload["counters"] == report.counters

    def test_warmup_drives_the_hit_rate_up(self, toy_model):
        cold = generate_load(toy_model, jobs=30, tenants=2, seed=11)
        warm = generate_load(toy_model, jobs=30, tenants=2, seed=11, warmup=30)
        assert warm.hit_rate >= cold.hit_rate

    def test_counter_deltas_survive_an_ambient_capture(self, toy_model):
        # Regression: the service maps from worker threads, and the
        # per-job captures those maps open under a tracing ambient
        # (``repro loadgen --trace``) used to clobber the ambient
        # registry, zeroing every delta the report is built from.
        with obs.capture():
            report = generate_load(
                toy_model, jobs=20, tenants=2, seed=5, config=ServiceConfig(workers=2)
            )
        assert report.counters["service.jobs.submitted"] >= report.jobs
        assert report.failed == 0


@pytest.mark.nightly
def test_nightly_case_study_soak(web_model):
    """Long mixed-tenant soak on the real case study (nightly only)."""
    report = generate_load(
        web_model,
        jobs=120,
        tenants=4,
        seed=3,
        config=ServiceConfig(workers=4),
        warmup=20,
    )
    assert report.failed == 0
    assert report.completed == report.jobs
    assert report.hit_rate >= 0.3
