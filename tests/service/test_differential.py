"""The determinism contract, differentially: service == direct solves.

A 50-job mixed-tenant workload (the load generator's seeded traffic:
sweeps, max-utility, min-cost, frontier) runs against the service at
every worker count and under shuffled admission orders; every per-job
payload must be byte-identical to a direct, cold, serial solve of the
same request.  Nothing the service does — batching, family reuse, warm
sessions, result caching, in-flight dedup — may be visible in results.
"""

from __future__ import annotations

import random

import pytest

from repro.service import JobStatus, ServiceConfig
from repro.service.loadgen import traffic
from tests.conftest import build_toy_builder
from tests.service.conftest import canon, oracle_value, run_jobs

pytestmark = pytest.mark.service

JOBS = 50
TENANTS = 3
TRAFFIC_SEED = 7


@pytest.fixture(scope="module")
def model():
    return build_toy_builder().build()


@pytest.fixture(scope="module")
def workload(model):
    """The 50 mixed requests plus each one's canonical oracle payload."""
    requests = traffic(JOBS, tenants=TENANTS, seed=TRAFFIC_SEED, model=model)
    kinds = {r.kind.value for r in requests}
    assert kinds == {"sweep", "max-utility", "min-cost", "frontier"}
    oracles = {r.job_id: canon(oracle_value(model, r)) for r in requests}
    return requests, oracles


def assert_bit_identical(results, oracles):
    assert len(results) == JOBS
    for result in results:
        assert result.status is JobStatus.SUCCEEDED, result.failure
        assert canon(result.value) == oracles[result.job_id]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_every_worker_count_matches_the_oracles(workload, workers):
    requests, oracles = workload
    results = run_jobs(requests, ServiceConfig(workers=workers))
    assert_bit_identical(results, oracles)


@pytest.mark.parametrize("order_seed", [11, 23, 47])
def test_any_admission_interleaving_matches_the_oracles(workload, order_seed):
    requests, oracles = workload
    shuffled = list(requests)
    random.Random(order_seed).shuffle(shuffled)
    results = run_jobs(shuffled, ServiceConfig(workers=2))
    assert_bit_identical(results, oracles)


def test_tight_queue_backpressure_does_not_change_results(workload):
    # Forcing constant reject/resubmit cycles exercises a very
    # different admission interleaving; results must not move.
    requests, oracles = workload
    results = run_jobs(requests, ServiceConfig(workers=2, queue_limit=4))
    assert_bit_identical(results, oracles)


def test_warm_answers_are_the_primary_objects(workload):
    requests, oracles = workload
    results = run_jobs(requests, ServiceConfig(workers=2))
    assert_bit_identical(results, oracles)
    by_key: dict[tuple, list] = {}
    for result in results:
        by_key.setdefault((result.tenant, result.digest), []).append(result)
    duplicates = [group for group in by_key.values() if len(group) > 1]
    assert duplicates, "seeded traffic should repeat some requests per tenant"
    warm = sum(r.cached or r.deduped for r in results)
    assert warm == sum(len(g) - 1 for g in duplicates)
    for group in duplicates:
        # One execution per (tenant, digest): every duplicate shares
        # the primary's payload object, not merely an equal value.
        values = {id(r.value) for r in group}
        assert len(values) == 1
