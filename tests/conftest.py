"""Shared fixtures: a hand-checkable toy model and the case study."""

from __future__ import annotations

import pytest

from repro.casestudy import enterprise_web_service
from repro.core import AssetKind, ModelBuilder, MonitorScope, SystemModel


def build_toy_builder() -> ModelBuilder:
    """A three-asset model small enough to verify every metric by hand.

    Topology: ``n1`` (switch) linked to ``h1`` (web host) and ``h2``
    (database).  Coverage relation (monitor -> event: weight):

    * ``mlog@h1`` -> e1: 1.0
    * ``mlog@h2`` -> e3: 0.6
    * ``mnet@n1`` -> e1: 0.5, e2: 0.4   (network scope sees h1, h2)
    * ``mdb@h2``  -> e2: 0.8

    Attacks: ``A`` = (e1, e2) importance 1.0; ``B`` = (e2 weight 2,
    e3 optional) importance 0.5.
    """
    builder = ModelBuilder("toy")
    builder.asset("h1", kind=AssetKind.SERVER)
    builder.asset("h2", kind=AssetKind.DATABASE)
    builder.asset("n1", kind=AssetKind.NETWORK_DEVICE)
    builder.link("n1", "h1")
    builder.link("n1", "h2")

    builder.data_type("dlog", fields=["f1", "f2"])
    builder.data_type("dnet", fields=["f2", "f3"])
    builder.data_type("ddb", fields=["f4"])

    builder.monitor_type(
        "mlog", data_types=["dlog"], cost={"cpu": 2, "storage": 1}, quality=0.9
    )
    builder.monitor_type(
        "mnet",
        data_types=["dnet"],
        cost={"cpu": 4, "network": 2},
        scope=MonitorScope.NETWORK,
        deployable_kinds=[AssetKind.NETWORK_DEVICE],
        quality=0.8,
    )
    builder.monitor_type(
        "mdb",
        data_types=["ddb"],
        cost={"cpu": 3},
        deployable_kinds=[AssetKind.DATABASE],
        quality=1.0,
    )
    builder.monitor("mlog", "h1")
    builder.monitor("mlog", "h2")
    builder.monitor("mnet", "n1")
    builder.monitor("mdb", "h2")

    builder.event("e1", asset="h1")
    builder.event("e2", asset="h2")
    builder.event("e3", asset="h2")
    builder.evidence("dlog", "e1", 1.0)
    builder.evidence("dnet", "e1", 0.5)
    builder.evidence("ddb", "e2", 0.8)
    builder.evidence("dnet", "e2", 0.4)
    builder.evidence("dlog", "e3", 0.6)

    builder.attack("A", steps=["e1", "e2"], importance=1.0)
    from repro.core import AttackStep

    builder.attack(
        "B",
        steps=[AttackStep("e2", weight=2.0), AttackStep("e3", weight=1.0, required=False)],
        importance=0.5,
    )
    return builder


@pytest.fixture()
def toy_model() -> SystemModel:
    """Fresh toy model per test (cheap to build)."""
    return build_toy_builder().build()


@pytest.fixture(scope="session")
def web_model() -> SystemModel:
    """The enterprise Web service case study (immutable, shared)."""
    return enterprise_web_service()
