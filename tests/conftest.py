"""Shared fixtures and model factories for the whole test suite.

Besides the hand-checkable toy model and the case study, this module
owns the small MILP factories (`knapsack_model`, `set_cover_model`,
`wide_knapsack_model`, `random_binary_model`) that used to be
copy-pasted across ``tests/solver`` and ``tests/faults`` — import them
as ``from tests.conftest import knapsack_model``.

It also gates the ``nightly`` marker: nightly-marked tests are skipped
unless ``REPRO_NIGHTLY`` is set in the environment, so the tier-1 run
stays fast while CI's scheduled jobs get the long soak coverage.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.casestudy import enterprise_web_service
from repro.core import AssetKind, ModelBuilder, MonitorScope, SystemModel
from repro.solver import MilpModel, ObjectiveSense


def pytest_collection_modifyitems(config, items):
    if os.environ.get("REPRO_NIGHTLY"):
        return
    skip_nightly = pytest.mark.skip(reason="nightly test; set REPRO_NIGHTLY=1 to run")
    for item in items:
        if "nightly" in item.keywords:
            item.add_marker(skip_nightly)


# ----------------------------------------------------------------------
# shared MILP factories
# ----------------------------------------------------------------------


def knapsack_model(
    capacity: float = 8.0,
    values: tuple = (10, 13, 7, 8, 12),
    weights: tuple = (3, 4, 2, 3, 4),
    *,
    name: str = "knapsack",
    constraint_name: str | None = None,
) -> MilpModel:
    """A 0/1 knapsack; the defaults have known optimum 25 at capacity 8.

    The session tests treat ``capacity`` and ``values`` as family knobs
    (same structure, different rhs/objective), so both are parameters.
    """
    model = MilpModel(name, ObjectiveSense.MAXIMIZE)
    x = [model.binary(f"x{i}") for i in range(len(values))]
    model.add_constraint(
        sum(w * v for w, v in zip(weights, x)) <= capacity, name=constraint_name
    )
    model.set_objective(sum(c * v for c, v in zip(values, x)))
    return model


def wide_knapsack_model(capacity: float) -> MilpModel:
    """A 12-item knapsack family member (rich enough to decompose)."""
    return knapsack_model(
        capacity,
        values=(10, 13, 7, 8, 12, 14, 6, 17, 9, 11, 5, 15),
        weights=(3, 4, 2, 3, 4, 5, 2, 6, 3, 4, 2, 5),
        name="family",
        constraint_name="cap",
    )


def set_cover_model() -> MilpModel:
    """Min-cost cover of 4 elements; optimum cost 5 (sets A and C)."""
    model = MilpModel("cover", ObjectiveSense.MINIMIZE)
    a = model.binary("A")  # covers 1, 2 — cost 2
    b = model.binary("B")  # covers 2, 3 — cost 4
    c = model.binary("C")  # covers 3, 4 — cost 3
    model.add_constraint(a + 0.0 >= 1, "e1")
    model.add_constraint(a + b >= 1, "e2")
    model.add_constraint(b + c >= 1, "e3")
    model.add_constraint(c + 0.0 >= 1, "e4")
    model.set_objective(2 * a + 4 * b + 3 * c)
    return model


def random_binary_model(seed: int) -> MilpModel:
    """A small seeded binary program with a (almost surely) unique optimum.

    Integer constraint coefficients keep feasibility checks exact;
    normal objective coefficients make objective ties measure-zero, so
    value-level comparisons against the serial solver are meaningful.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(6, 14))
    m = int(rng.integers(3, 8))
    sense = ObjectiveSense.MAXIMIZE if rng.random() < 0.5 else ObjectiveSense.MINIMIZE
    model = MilpModel(f"rand-{seed}", sense)
    xs = [model.binary(f"x{i}") for i in range(n)]
    for c in range(m):
        coefs = rng.integers(-4, 5, size=n)
        expr = sum(int(k) * v for k, v in zip(coefs, xs) if k)
        if isinstance(expr, int):
            continue  # all-zero row
        rhs = int(rng.integers(-3, 9))
        if rng.random() < 0.5:
            model.add_constraint(expr <= rhs, name=f"c{c}")
        else:
            model.add_constraint(expr >= rhs, name=f"c{c}")
    obj_coefs = rng.normal(size=n)
    model.set_objective(sum(float(k) * v for k, v in zip(obj_coefs, xs)))
    return model


def build_toy_builder() -> ModelBuilder:
    """A three-asset model small enough to verify every metric by hand.

    Topology: ``n1`` (switch) linked to ``h1`` (web host) and ``h2``
    (database).  Coverage relation (monitor -> event: weight):

    * ``mlog@h1`` -> e1: 1.0
    * ``mlog@h2`` -> e3: 0.6
    * ``mnet@n1`` -> e1: 0.5, e2: 0.4   (network scope sees h1, h2)
    * ``mdb@h2``  -> e2: 0.8

    Attacks: ``A`` = (e1, e2) importance 1.0; ``B`` = (e2 weight 2,
    e3 optional) importance 0.5.
    """
    builder = ModelBuilder("toy")
    builder.asset("h1", kind=AssetKind.SERVER)
    builder.asset("h2", kind=AssetKind.DATABASE)
    builder.asset("n1", kind=AssetKind.NETWORK_DEVICE)
    builder.link("n1", "h1")
    builder.link("n1", "h2")

    builder.data_type("dlog", fields=["f1", "f2"])
    builder.data_type("dnet", fields=["f2", "f3"])
    builder.data_type("ddb", fields=["f4"])

    builder.monitor_type(
        "mlog", data_types=["dlog"], cost={"cpu": 2, "storage": 1}, quality=0.9
    )
    builder.monitor_type(
        "mnet",
        data_types=["dnet"],
        cost={"cpu": 4, "network": 2},
        scope=MonitorScope.NETWORK,
        deployable_kinds=[AssetKind.NETWORK_DEVICE],
        quality=0.8,
    )
    builder.monitor_type(
        "mdb",
        data_types=["ddb"],
        cost={"cpu": 3},
        deployable_kinds=[AssetKind.DATABASE],
        quality=1.0,
    )
    builder.monitor("mlog", "h1")
    builder.monitor("mlog", "h2")
    builder.monitor("mnet", "n1")
    builder.monitor("mdb", "h2")

    builder.event("e1", asset="h1")
    builder.event("e2", asset="h2")
    builder.event("e3", asset="h2")
    builder.evidence("dlog", "e1", 1.0)
    builder.evidence("dnet", "e1", 0.5)
    builder.evidence("ddb", "e2", 0.8)
    builder.evidence("dnet", "e2", 0.4)
    builder.evidence("dlog", "e3", 0.6)

    builder.attack("A", steps=["e1", "e2"], importance=1.0)
    from repro.core import AttackStep

    builder.attack(
        "B",
        steps=[AttackStep("e2", weight=2.0), AttackStep("e3", weight=1.0, required=False)],
        importance=0.5,
    )
    return builder


@pytest.fixture()
def toy_model() -> SystemModel:
    """Fresh toy model per test (cheap to build)."""
    return build_toy_builder().build()


@pytest.fixture(scope="session")
def web_model() -> SystemModel:
    """The enterprise Web service case study (immutable, shared)."""
    return enterprise_web_service()
