"""Pins for the per-model cache's identity semantics and counters.

``cache_for`` keys its weak table by :class:`SystemModel` **identity**
(models define no ``__eq__``/``__hash__``).  That choice is deliberate —
an unpickled worker copy must never share (or poison) the parent
model's cache — and these tests are the contract that keeps anyone from
"fixing" it by adding value equality to SystemModel.
"""

from __future__ import annotations

import gc
import pickle

import pytest

from repro.errors import MetricError
from repro.runtime.cache import DeploymentCache, cache_for, cached_utility
from tests.conftest import build_toy_builder


class TestCacheForIdentity:
    def test_same_model_instance_shares_one_cache(self, toy_model):
        assert cache_for(toy_model) is cache_for(toy_model)

    def test_structurally_equal_models_get_separate_caches(self):
        a = build_toy_builder().build()
        b = build_toy_builder().build()
        assert cache_for(a) is not cache_for(b)

    def test_unpickled_copy_gets_its_own_cache(self, toy_model):
        copy = pickle.loads(pickle.dumps(toy_model))
        assert cache_for(copy) is not cache_for(toy_model)
        # Warm the original's cache; the copy must still start cold.
        cached_utility(toy_model, frozenset(toy_model.monitors))
        assert len(cache_for(copy)) == 0

    def test_models_are_held_weakly(self):
        model = build_toy_builder().build()
        cache = cache_for(model)
        ref_alive = cache_for(model) is cache
        del model
        gc.collect()
        # Nothing to assert on the table directly (it is private); the
        # observable contract is simply that the entry above existed and
        # that dropping the model does not keep the cache import alive.
        assert ref_alive


class TestEvictionCounters:
    def test_interleaved_put_and_get_or_compute_count_exactly(self):
        cache = DeploymentCache(maxsize=2)
        computed: list[str] = []

        def compute(tag):
            def inner():
                computed.append(tag)
                return tag

            return inner

        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.evictions == 0
        # Recency now: a, b.  A get_or_compute miss on "c" evicts "a".
        assert cache.get_or_compute("c", compute("c")) == "c"
        assert cache.evictions == 1
        assert "a" not in cache and "b" in cache
        # Hit on "b" refreshes it; putting "d" evicts "c", not "b".
        assert cache.get_or_compute("b", compute("never")) == 2
        cache.put("d", 4)
        assert cache.evictions == 2
        assert "b" in cache and "d" in cache and "c" not in cache
        # Re-putting an existing key refreshes, never evicts.
        cache.put("b", 20)
        assert cache.evictions == 2
        assert computed == ["c"]
        stats = cache.stats()
        assert stats["evictions"] == 2
        assert stats["size"] == 2
        # get() pairs inside get_or_compute count one lookup each:
        # misses on c (plus the sentinel defaults), hit on b.
        assert stats["hits"] == cache.hits
        assert stats["misses"] == cache.misses

    def test_eviction_counter_matches_overflow_volume(self):
        cache = DeploymentCache(maxsize=3)
        for index in range(10):
            cache.get_or_compute(index, lambda index=index: index)
        assert len(cache) == 3
        assert cache.evictions == 7
        assert cache.misses == 10 and cache.hits == 0

    def test_maxsize_validation(self):
        with pytest.raises(MetricError):
            DeploymentCache(maxsize=0)
