"""Unit tests for the parallel map and deterministic seed spawning."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import obs
from repro.runtime.parallel import (
    WORKERS_ENV,
    parallel_map,
    resolve_workers,
    spawn_generators,
    spawn_seeds,
)


def _square(x):
    return x * x


def _counted_square(x):
    obs.counter("test.parallel.threaded_jobs").inc()
    return x * x


def _draw(seed_seq):
    return float(np.random.default_rng(seed_seq).random())


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(3) == 3

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers() == 4

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_garbage_environment_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        assert resolve_workers() == 1

    def test_never_below_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-5) == 1


class TestSpawnSeeds:
    def test_deterministic_per_position(self):
        first = spawn_seeds(7, 5)
        second = spawn_seeds(7, 5)
        assert [s.entropy for s in first] == [s.entropy for s in second]
        assert [_draw(s) for s in first] == [_draw(s) for s in second]

    def test_prefix_stability(self):
        # Asking for more children must not change the earlier ones.
        short = spawn_seeds(7, 2)
        long = spawn_seeds(7, 6)
        assert [_draw(s) for s in short] == [_draw(s) for s in long[:2]]

    def test_children_are_independent(self):
        draws = [_draw(s) for s in spawn_seeds(0, 10)]
        assert len(set(draws)) == 10

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_spawn_generators(self):
        gens = spawn_generators(3, 4)
        assert len(gens) == 4
        assert all(isinstance(g, np.random.Generator) for g in gens)


class TestParallelMap:
    def test_serial_map_preserves_order(self):
        assert parallel_map(_square, range(10), workers=1) == [x * x for x in range(10)]

    def test_pool_map_preserves_order(self):
        assert parallel_map(_square, range(10), workers=2) == [x * x for x in range(10)]

    def test_unpicklable_job_falls_back_to_serial(self):
        offset = 100
        assert parallel_map(lambda x: x + offset, range(5), workers=2) == [
            x + 100 for x in range(5)
        ]

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [3], workers=4) == [9]

    def test_chunksize_does_not_change_results(self):
        assert parallel_map(_square, range(20), workers=2, chunksize=5) == [
            x * x for x in range(20)
        ]

    def test_threaded_observed_maps_keep_the_ambient_registry(self):
        # Regression: serial maps under a tracing capture wrap each job
        # in its own obs.capture, which swaps the process-global
        # ambient instruments.  Run from many threads at once (the
        # solve service does), interleaved enter/exit used to violate
        # the LIFO restore and strand the ambient registry on a dead
        # per-task capture — every counter written afterwards vanished.
        rounds, jobs = 8, 5
        with obs.capture() as cap:
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(parallel_map, _counted_square, list(range(jobs)), workers=1)
                    for _ in range(rounds)
                ]
                results = [f.result() for f in futures]
            assert obs.registry() is cap.registry
        assert results == [[x * x for x in range(jobs)] for _ in range(rounds)]
        expected = float(rounds * jobs)
        assert cap.registry.counter("test.parallel.threaded_jobs").value == expected
