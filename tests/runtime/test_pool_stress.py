"""Stress tests for the persistent pool and zero-copy shared memory.

Four properties the runtime substrate promises:

* **zero-copy parity** — an engine attached from a shared segment (in
  this process or a pool worker) computes exactly what the in-process
  engine computes;
* **zero leaks** — exiting a pool's context manager (cleanly or via an
  exception) unlinks every published segment: nothing remains in
  ``/dev/shm`` and stale handles refuse to attach;
* **one pool per study** — campaign loops routed through one
  :class:`~repro.runtime.pool.PersistentPool` create exactly one
  executor across arbitrarily many maps (the per-call spin-up this
  subsystem exists to eliminate);
* **visible lifecycle** — respawns after a killed worker, idle reaps,
  and per-task queue waits all land on ``pool.*`` instruments.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.runtime.engine import engine_for
from repro.runtime.faults import FaultPlan, FaultSpec, FaultyJob, task_site
from repro.runtime.parallel import parallel_map, spawn_generators
from repro.runtime.pool import (
    SEGMENT_PREFIX,
    PersistentPool,
    PoolError,
    attach_arrays,
    attach_engine,
    detach_all,
    publish_arrays,
    publish_engine,
    use_pool,
)
from repro.runtime.resilience import MapReport
from repro.simulation.campaign import run_campaign, run_campaigns


def _shm_segments() -> set[str]:
    """Names of this module's live segments (empty set off-Linux)."""
    root = Path("/dev/shm")
    if not root.is_dir():
        return set()
    return {p.name for p in root.glob(f"{SEGMENT_PREFIX}-*")}


def _sample_deployments(model, count: int = 6) -> list[frozenset[str]]:
    """Seeded monitor subsets spanning empty to full."""
    ids = sorted(model.monitors)
    picks: list[frozenset[str]] = [frozenset(), frozenset(ids)]
    for rng in spawn_generators(7, count - 2):
        keep = rng.random(len(ids)) < rng.uniform(0.2, 0.8)
        picks.append(frozenset(m for m, k in zip(ids, keep) if k))
    return picks


def _pooled_utility(task):
    """Worker entry point: evaluate a deployment via an attached engine."""
    handle, monitor_ids = task
    return attach_engine(handle).utility(monitor_ids)


class TestZeroCopyParity:
    def test_attached_engine_matches_in_process_oracle(self, toy_model):
        oracle = engine_for(toy_model)
        with PersistentPool(workers=1) as pool:
            handle = publish_engine(toy_model, pool)
            attached = attach_engine(handle)
            for deployed in _sample_deployments(toy_model):
                assert attached.utility(deployed) == oracle.utility(deployed)
                assert attached.components(deployed) == oracle.components(deployed)
        detach_all()

    def test_pool_workers_compute_oracle_utilities(self, web_model):
        """The full zero-copy path: handle-carrying tasks, worker attach."""
        oracle = engine_for(web_model)
        deployments = _sample_deployments(web_model, count=8)
        with PersistentPool(workers=2) as pool:
            handle = publish_engine(web_model, pool)
            results = parallel_map(
                _pooled_utility, [(handle, d) for d in deployments], pool=pool
            )
        assert results == [oracle.utility(d) for d in deployments]

    def test_attached_arrays_are_read_only_views(self):
        payload = {"a": np.arange(12, dtype=np.float64).reshape(3, 4)}
        with PersistentPool(workers=1) as pool:
            views = attach_arrays(pool.share(payload))
            np.testing.assert_array_equal(views["a"], payload["a"])
            with pytest.raises(ValueError):
                views["a"][0, 0] = 99.0
        detach_all()


class TestLeakFreedom:
    def test_clean_exit_unlinks_every_segment(self, toy_model):
        before = _shm_segments()
        with PersistentPool(workers=1) as pool:
            handle = publish_engine(toy_model, pool)
            extra = pool.share({"z": np.ones(1000)})
            if Path("/dev/shm").is_dir():
                live = _shm_segments() - before
                assert handle.arrays.segment in live
                assert extra.segment in live
        assert _shm_segments() == before
        detach_all()

    def test_crash_exit_unlinks_every_segment(self, toy_model):
        """An exception mid-study must leak nothing either."""
        before = _shm_segments()
        with pytest.raises(RuntimeError, match="simulated crash"):
            with PersistentPool(workers=1) as pool:
                publish_engine(toy_model, pool)
                pool.share({"z": np.zeros(64)})
                raise RuntimeError("simulated crash")
        assert _shm_segments() == before
        detach_all()

    def test_stale_handles_refuse_to_attach(self):
        with PersistentPool(workers=1) as pool:
            handle = pool.share({"v": np.arange(8)})
        detach_all()  # drop any cached mapping; the segment is unlinked
        with pytest.raises(PoolError, match="gone"):
            attach_arrays(handle)

    def test_detach_all_releases_the_attachment_cache(self):
        with PersistentPool(workers=1) as pool:
            handle = pool.share({"v": np.arange(4, dtype=np.int64)})
            attach_arrays(handle)
            attach_arrays(handle)  # second call is a cache hit
            assert detach_all() >= 1
            assert detach_all() == 0
            # Re-attach works while the segment is still published.
            views = attach_arrays(handle)
            np.testing.assert_array_equal(views["v"], np.arange(4))
        detach_all()


class TestOnePoolPerStudy:
    def test_multi_campaign_study_creates_exactly_one_executor(self, toy_model):
        """The per-call spin-up fix: N maps, one ``pool.created``."""
        from repro.optimize.deployment import Deployment

        full = Deployment.of(toy_model, frozenset(toy_model.monitors))
        with obs.capture() as cap:
            with PersistentPool(workers=2) as pool:
                for round_ in range(3):
                    run_campaigns(
                        toy_model,
                        full,
                        seeds=[10 * round_, 10 * round_ + 1],
                        pool=pool,
                        repetitions=1,
                    )
        counters = cap.registry.snapshot()["counters"]
        assert counters["pool.created"] == 1.0
        assert counters["parallel.maps"] == 3.0

    def test_pooled_campaigns_match_serial_campaigns(self, toy_model):
        from repro.optimize.deployment import Deployment

        full = Deployment.of(toy_model, frozenset(toy_model.monitors))
        seeds = [0, 1, 2]
        serial = [
            run_campaign(toy_model, full, seed=s, repetitions=1) for s in seeds
        ]
        with PersistentPool(workers=2) as pool, use_pool(pool):
            pooled = run_campaigns(toy_model, full, seeds=seeds, repetitions=1)
        for a, b in zip(serial, pooled):
            assert a.detection_rate == b.detection_rate
            assert a.observations == b.observations
            assert a.duration == b.duration

    def test_ambient_pool_is_scoped(self):
        from repro.runtime.pool import active_pool

        assert active_pool() is None
        with PersistentPool(workers=1) as pool, use_pool(pool):
            assert active_pool() is pool
        assert active_pool() is None


def _double(x: int) -> int:
    return 2 * x


class TestLifecycle:
    def test_killed_worker_respawns_and_results_are_oracle(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        plan = FaultPlan.of(state, {task_site(3): FaultSpec(kind="exit", times=1)})
        report = MapReport()
        with obs.capture() as cap:
            with PersistentPool(workers=2) as pool:
                results = parallel_map(
                    FaultyJob(_double, plan), range(8), pool=pool, report=report
                )
                assert pool.respawns == 1
        assert results == [2 * x for x in range(8)]
        assert not report.degraded  # the pool recovered; no serial rerun
        counters = cap.registry.snapshot()["counters"]
        assert counters["pool.respawns"] == 1.0
        assert counters["pool.created"] == 2.0  # original + respawn

    def test_idle_reap_and_lazy_recreation(self):
        with obs.capture() as cap:
            with PersistentPool(workers=2, idle_timeout=0.05) as pool:
                assert parallel_map(_double, range(4), pool=pool) == [0, 2, 4, 6]
                time.sleep(0.1)
                assert pool.reap_if_idle()
                assert not pool.reap_if_idle()  # already reaped
                assert parallel_map(_double, range(4), pool=pool) == [0, 2, 4, 6]
        counters = cap.registry.snapshot()["counters"]
        assert counters["pool.reaps"] == 1.0
        assert counters["pool.created"] == 2.0

    def test_queue_wait_histogram_records_every_pooled_task(self):
        with obs.capture() as cap:
            with PersistentPool(workers=2) as pool:
                parallel_map(_double, range(6), pool=pool)
        histograms = cap.registry.snapshot()["histograms"]
        assert histograms["pool.queue_wait_seconds"]["count"] == 6

    def test_closed_pool_refuses_use(self):
        pool = PersistentPool(workers=1)
        pool.close()
        assert pool.closed
        with pytest.raises(PoolError, match="closed"):
            pool.executor()
        with pytest.raises(PoolError, match="closed"):
            pool.share({"v": np.zeros(1)})
        # parallel_map simply ignores a closed ambient pool.
        with use_pool(pool):
            assert parallel_map(_double, range(3), workers=1) == [0, 2, 4]

    def test_segment_instruments_fire(self):
        with obs.capture() as cap:
            with PersistentPool(workers=1) as pool:
                handle = pool.share({"v": np.zeros(1024, dtype=np.float64)})
                attach_arrays(handle)
            detach_all()
        counters = cap.registry.snapshot()["counters"]
        assert counters["pool.segments_published"] == 1.0
        assert counters["pool.segment_bytes"] >= 8192
        assert counters["pool.attaches"] == 1.0
        assert counters["pool.detaches"] == 1.0
        assert counters["pool.segments_unlinked"] == 1.0


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="needs /dev/shm")
class TestSharedMemoryHousekeeping:
    def test_segment_names_carry_the_recognizable_prefix(self):
        with PersistentPool(workers=1) as pool:
            handle = pool.share({"v": np.zeros(4)})
            assert handle.segment.startswith(f"{SEGMENT_PREFIX}-{os.getpid()}-")

    def test_handle_nbytes_reports_payload_size(self):
        with PersistentPool(workers=1) as pool:
            handle = pool.share(
                {"a": np.zeros(10, dtype=np.float64), "b": np.zeros(3, dtype=np.int32)}
            )
            assert handle.nbytes == 10 * 8 + 3 * 4
