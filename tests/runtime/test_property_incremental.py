"""Property tests: the incremental engine against the reference oracle.

Every assertion here pits the vectorized/incremental substrate against
the dict-walking reference metrics in :mod:`repro.metrics` — the oracle
the substrate must reproduce (up to float aggregation order) on *any*
model.  Models come from the seeded synthetic generator, so the suite
sweeps 50 structurally different coverage relations: varying sharing,
multi-step attacks, field overlap, and events with no providers.
"""

import numpy as np
import pytest

from repro.casestudy.scaling import synthetic_model
from repro.metrics.confidence import overall_confidence
from repro.metrics.coverage import overall_coverage
from repro.metrics.redundancy import overall_redundancy
from repro.metrics.richness import overall_richness
from repro.metrics.utility import UtilityWeights, utility
from repro.runtime.engine import EvaluationEngine

TOL = 1e-9

MODEL_SEEDS = range(50)

WEIGHT_CHOICES = [
    UtilityWeights(),
    UtilityWeights(coverage=0.4, redundancy=0.4, richness=0.2, redundancy_cap=3),
    UtilityWeights(coverage=1.0, redundancy=0.0, richness=0.0),
]


def _small_model(seed: int):
    return synthetic_model(
        assets=5,
        data_types=6,
        monitor_types=4,
        monitors=12,
        attacks=8,
        seed=seed,
    )


def _random_deployment(rng, monitor_ids):
    size = int(rng.integers(0, len(monitor_ids) + 1))
    return frozenset(rng.choice(monitor_ids, size=size, replace=False))


@pytest.mark.parametrize("model_seed", MODEL_SEEDS)
def test_full_evaluation_matches_reference(model_seed):
    """Engine components equal the reference metrics on random deployments."""
    model = _small_model(model_seed)
    engine = EvaluationEngine(model)
    monitor_ids = np.array(sorted(model.monitors))
    rng = np.random.default_rng(1000 + model_seed)
    for _ in range(5):
        deployed = _random_deployment(rng, monitor_ids)
        parts = engine.components(deployed)
        assert parts["coverage"] == pytest.approx(
            overall_coverage(model, deployed), abs=TOL
        )
        assert parts["redundancy"] == pytest.approx(
            overall_redundancy(model, deployed), abs=TOL
        )
        assert parts["richness"] == pytest.approx(
            overall_richness(model, deployed), abs=TOL
        )
        assert parts["confidence"] == pytest.approx(
            overall_confidence(model, deployed), abs=TOL
        )


@pytest.mark.parametrize("model_seed", MODEL_SEEDS)
def test_mutation_walk_matches_reference(model_seed):
    """A random add/remove walk stays glued to the reference utility.

    This is the delta-update invariant: after any interleaving of adds
    and removals, the cursor's running sums equal a from-scratch
    reference evaluation of the same deployment, and every peek agrees
    with the commit that follows it.
    """
    model = _small_model(model_seed)
    engine = EvaluationEngine(model)
    monitor_ids = sorted(model.monitors)
    rng = np.random.default_rng(2000 + model_seed)
    weights = WEIGHT_CHOICES[model_seed % len(WEIGHT_CHOICES)]

    cursor = engine.cursor(weights)
    deployed: set[str] = set()
    for _ in range(30):
        monitor_id = monitor_ids[int(rng.integers(len(monitor_ids)))]
        if monitor_id in deployed:
            cursor.remove(monitor_id)
            deployed.discard(monitor_id)
        else:
            peeked = cursor.peek_add(monitor_id)
            cursor.add(monitor_id)
            deployed.add(monitor_id)
            assert cursor.utility() == pytest.approx(peeked, abs=1e-12)
        assert cursor.monitor_ids == frozenset(deployed)
        assert cursor.utility() == pytest.approx(
            utility(model, deployed, weights), abs=TOL
        )


@pytest.mark.parametrize("model_seed", range(0, 50, 7))
def test_cursor_initial_matches_reference(model_seed):
    """Seeding a cursor with an initial deployment equals building up to it."""
    model = _small_model(model_seed)
    engine = EvaluationEngine(model)
    monitor_ids = np.array(sorted(model.monitors))
    rng = np.random.default_rng(3000 + model_seed)
    weights = UtilityWeights()
    deployed = _random_deployment(rng, monitor_ids)
    cursor = engine.cursor(weights, initial=deployed)
    assert cursor.utility() == pytest.approx(utility(model, deployed, weights), abs=TOL)
