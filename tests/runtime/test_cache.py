"""Unit tests for the bounded deployment-evaluation cache."""

import pytest

from repro.errors import MetricError
from repro.metrics.utility import UtilityWeights, utility, utility_breakdown
from repro.runtime.cache import (
    DeploymentCache,
    cache_for,
    cached_breakdown,
    cached_utility,
    evaluation_key,
)


class TestDeploymentCache:
    def test_rejects_non_positive_maxsize(self):
        with pytest.raises(MetricError):
            DeploymentCache(0)

    def test_miss_then_hit(self):
        cache = DeploymentCache(4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0, "size": 1}

    def test_evicts_least_recently_used(self):
        cache = DeploymentCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing_key_without_growth(self):
        cache = DeploymentCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2

    def test_get_or_compute_computes_once(self):
        cache = DeploymentCache(4)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1

    def test_clear_keeps_counters(self):
        cache = DeploymentCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class TestEvaluationKey:
    def test_key_is_order_insensitive(self):
        weights = UtilityWeights()
        assert evaluation_key(["m1", "m2"], weights) == evaluation_key(
            ["m2", "m1"], weights
        )

    def test_key_distinguishes_weights(self):
        a = UtilityWeights(coverage=0.6, redundancy=0.25, richness=0.15)
        b = UtilityWeights(coverage=0.5, redundancy=0.3, richness=0.2)
        assert evaluation_key(["m1"], a) != evaluation_key(["m1"], b)

    def test_key_distinguishes_redundancy_cap(self):
        a = UtilityWeights(redundancy_cap=2)
        b = UtilityWeights(redundancy_cap=3)
        assert evaluation_key(["m1"], a) != evaluation_key(["m1"], b)


class TestCachedEvaluation:
    def test_cached_utility_matches_reference(self, web_model):
        weights = UtilityWeights()
        deployed = frozenset(sorted(web_model.monitors)[:6])
        assert cached_utility(web_model, deployed, weights) == pytest.approx(
            utility(web_model, deployed, weights), abs=1e-9
        )

    def test_cached_breakdown_matches_reference(self, web_model):
        weights = UtilityWeights()
        deployed = frozenset(sorted(web_model.monitors)[:4])
        reference = utility_breakdown(web_model, deployed, weights)
        computed = cached_breakdown(web_model, deployed, weights)
        for key, value in reference.items():
            assert computed[key] == pytest.approx(value, abs=1e-9), key

    def test_second_lookup_hits(self, web_model):
        cache = DeploymentCache(16)
        deployed = frozenset(sorted(web_model.monitors)[:2])
        cached_utility(web_model, deployed, cache=cache)
        hits_before = cache.hits
        cached_utility(web_model, deployed, cache=cache)
        assert cache.hits == hits_before + 1

    def test_shared_cache_is_per_model_singleton(self, web_model):
        assert cache_for(web_model) is cache_for(web_model)

    def test_returned_breakdown_is_a_copy(self, web_model):
        cache = DeploymentCache(16)
        deployed = frozenset(sorted(web_model.monitors)[:2])
        first = cached_breakdown(web_model, deployed, cache=cache)
        first["utility"] = -1.0
        second = cached_breakdown(web_model, deployed, cache=cache)
        assert second["utility"] != -1.0
