"""Unit tests for the vectorized evaluation engine and its cursor."""

import numpy as np
import pytest

from repro.errors import UnknownIdError
from repro.metrics.confidence import overall_confidence
from repro.metrics.coverage import overall_coverage
from repro.metrics.redundancy import overall_redundancy
from repro.metrics.richness import overall_richness
from repro.metrics.utility import UtilityWeights, utility, utility_breakdown
from repro.runtime.engine import DeploymentCursor, EvaluationEngine, engine_for

TOL = 1e-9


class TestEngineFullEvaluation:
    def test_components_match_reference_on_full_deployment(self, web_model):
        engine = EvaluationEngine(web_model)
        deployed = frozenset(web_model.monitors)
        parts = engine.components(deployed)
        assert parts["coverage"] == pytest.approx(
            overall_coverage(web_model, deployed), abs=TOL
        )
        assert parts["redundancy"] == pytest.approx(
            overall_redundancy(web_model, deployed), abs=TOL
        )
        assert parts["richness"] == pytest.approx(
            overall_richness(web_model, deployed), abs=TOL
        )
        assert parts["confidence"] == pytest.approx(
            overall_confidence(web_model, deployed), abs=TOL
        )

    def test_empty_deployment_is_all_zero(self, web_model):
        engine = engine_for(web_model)
        parts = engine.components(frozenset())
        assert parts == {
            "coverage": 0.0,
            "redundancy": 0.0,
            "richness": 0.0,
            "confidence": 0.0,
        }

    def test_utility_and_breakdown_match_reference(self, web_model):
        engine = engine_for(web_model)
        deployed = frozenset(sorted(web_model.monitors)[::2])
        weights = UtilityWeights(coverage=0.5, redundancy=0.3, richness=0.2)
        assert engine.utility(deployed, weights) == pytest.approx(
            utility(web_model, deployed, weights), abs=TOL
        )
        reference = utility_breakdown(web_model, deployed, weights)
        computed = engine.breakdown(deployed, weights)
        assert set(computed) == set(reference)
        for key, value in reference.items():
            assert computed[key] == pytest.approx(value, abs=TOL), key

    def test_redundancy_cap_is_respected(self, web_model):
        engine = engine_for(web_model)
        deployed = frozenset(web_model.monitors)
        shallow = engine.components(deployed, cap=1)["redundancy"]
        deep = engine.components(deployed, cap=4)["redundancy"]
        assert shallow == pytest.approx(
            overall_redundancy(web_model, deployed, cap=1), abs=TOL
        )
        assert deep == pytest.approx(
            overall_redundancy(web_model, deployed, cap=4), abs=TOL
        )
        assert shallow >= deep  # a deeper cap is harder to saturate

    def test_unknown_monitor_raises(self, web_model):
        engine = engine_for(web_model)
        with pytest.raises(UnknownIdError):
            engine.utility({"nonexistent@nowhere"})

    def test_engine_for_returns_singleton(self, web_model):
        assert engine_for(web_model) is engine_for(web_model)


class TestDeploymentCursor:
    def test_add_tracks_reference_utility(self, web_model):
        weights = UtilityWeights()
        cursor = engine_for(web_model).cursor(weights)
        deployed: set[str] = set()
        for monitor_id in sorted(web_model.monitors):
            cursor.add(monitor_id)
            deployed.add(monitor_id)
            assert cursor.utility() == pytest.approx(
                utility(web_model, deployed, weights), abs=TOL
            )

    def test_remove_tracks_reference_utility(self, web_model):
        weights = UtilityWeights()
        deployed = set(web_model.monitors)
        cursor = engine_for(web_model).cursor(weights, initial=deployed)
        for monitor_id in sorted(web_model.monitors, reverse=True):
            cursor.remove(monitor_id)
            deployed.discard(monitor_id)
            assert cursor.utility() == pytest.approx(
                utility(web_model, deployed, weights), abs=TOL
            )

    def test_peek_add_matches_commit_and_does_not_mutate(self, web_model):
        cursor = engine_for(web_model).cursor(UtilityWeights())
        before = cursor.utility()
        monitor_id = sorted(web_model.monitors)[0]
        peeked = cursor.peek_add(monitor_id)
        assert cursor.utility() == before
        assert monitor_id not in cursor
        cursor.add(monitor_id)
        assert cursor.utility() == pytest.approx(peeked, abs=1e-12)

    def test_peek_add_of_deployed_monitor_is_identity(self, web_model):
        monitor_id = sorted(web_model.monitors)[0]
        cursor = engine_for(web_model).cursor(UtilityWeights(), initial={monitor_id})
        assert cursor.peek_add(monitor_id) == cursor.utility()

    def test_double_add_and_absent_remove_raise(self, web_model):
        monitor_id = sorted(web_model.monitors)[0]
        cursor = engine_for(web_model).cursor(UtilityWeights(), initial={monitor_id})
        with pytest.raises(ValueError):
            cursor.add(monitor_id)
        cursor.remove(monitor_id)
        with pytest.raises(ValueError):
            cursor.remove(monitor_id)

    def test_monitor_ids_len_and_contains(self, web_model):
        ids = set(sorted(web_model.monitors)[:3])
        cursor = engine_for(web_model).cursor(UtilityWeights(), initial=ids)
        assert isinstance(cursor, DeploymentCursor)
        assert cursor.monitor_ids == frozenset(ids)
        assert len(cursor) == 3
        for monitor_id in ids:
            assert monitor_id in cursor
        assert "nonexistent@nowhere" not in cursor

    def test_breakdown_matches_engine_full_evaluation(self, web_model):
        weights = UtilityWeights()
        ids = frozenset(sorted(web_model.monitors)[1::3])
        cursor = engine_for(web_model).cursor(weights, initial=ids)
        full = engine_for(web_model).breakdown(ids, weights)
        incremental = cursor.breakdown()
        for key, value in full.items():
            assert incremental[key] == pytest.approx(value, abs=TOL), key

    def test_initial_order_does_not_matter(self, web_model):
        weights = UtilityWeights()
        ids = sorted(web_model.monitors)[:5]
        rng = np.random.default_rng(3)
        shuffled = list(ids)
        rng.shuffle(shuffled)
        a = engine_for(web_model).cursor(weights, initial=ids)
        b = engine_for(web_model).cursor(weights, initial=shuffled)
        assert a.utility() == pytest.approx(b.utility(), abs=1e-12)
