"""Parallel runs must be bit-identical to serial runs.

The substrate's contract is that ``workers`` is a pure throughput knob:
every seeded computation partitions its randomness via spawned
``SeedSequence`` children keyed by position, so the fan-out across 2 or
4 workers reproduces the serial stream exactly — not approximately.
"""

import pytest

from repro import obs
from repro.analysis.contribution import shapley_values
from repro.metrics.utility import UtilityWeights
from repro.optimize.deployment import Deployment
from repro.optimize.greedy import solve_greedy
from repro.optimize.pareto import budget_sweep, heuristic_sweep
from repro.simulation.campaign import run_campaigns

FRACTIONS = [0.1, 0.2, 0.3, 0.4]


def _sweep_signature(points):
    return [
        (p.fraction, p.result.utility, tuple(sorted(p.result.monitor_ids)))
        for p in points
    ]


def _nan_safe(value):
    return None if value != value else value


def _campaign_signature(results):
    return [
        (
            r.seed,
            r.detection_rate,
            _nan_safe(r.mean_detection_latency),
            r.mean_step_completeness,
            r.mean_field_completeness,
            r.observations,
            r.duration,
        )
        for r in results
    ]


class TestBudgetSweepDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_equals_serial(self, web_model, workers):
        serial = budget_sweep(web_model, FRACTIONS, workers=1)
        parallel = budget_sweep(web_model, FRACTIONS, workers=workers)
        assert _sweep_signature(parallel) == _sweep_signature(serial)

    def test_parallel_points_are_rebound_to_caller_model(self, web_model):
        points = budget_sweep(web_model, FRACTIONS[:2], workers=2)
        for point in points:
            assert point.result.deployment.model is web_model

    @pytest.mark.parametrize("workers", [2, 4])
    def test_heuristic_sweep_parallel_equals_serial(self, web_model, workers):
        serial = heuristic_sweep(web_model, FRACTIONS, solve_greedy, workers=1)
        parallel = heuristic_sweep(web_model, FRACTIONS, solve_greedy, workers=workers)
        assert _sweep_signature(parallel) == _sweep_signature(serial)


class TestCampaignDeterminism:
    SEEDS = [0, 1, 2, 3, 4, 5]

    @pytest.fixture(scope="class")
    def deployment(self, web_model):
        from repro.metrics.cost import Budget

        budget = Budget.fraction_of_total(web_model, 0.3)
        return solve_greedy(web_model, budget).deployment

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_equals_serial(self, web_model, deployment, workers):
        serial = run_campaigns(
            web_model, deployment, seeds=self.SEEDS, workers=1, repetitions=2
        )
        parallel = run_campaigns(
            web_model, deployment, seeds=self.SEEDS, workers=workers, repetitions=2
        )
        assert _campaign_signature(parallel) == _campaign_signature(serial)

    def test_multi_seed_matches_single_seed_runs(self, web_model, deployment):
        from repro.simulation.campaign import run_campaign

        results = run_campaigns(
            web_model, deployment, seeds=[3, 7], workers=2, repetitions=2
        )
        for seed, result in zip([3, 7], results):
            direct = run_campaign(web_model, deployment, seed=seed, repetitions=2)
            assert result.detection_rate == direct.detection_rate
            assert result.duration == direct.duration
            assert result.observations == direct.observations


def _span_shape(payload):
    """Structure of an exported span tree, with all timing removed."""
    return [
        (item["name"], item["tid"], _span_shape(item["children"]))
        for item in payload
    ]


class TestTracerDeterminism:
    """Captured traces are deterministic functions of the code path."""

    def _traced_solve(self):
        from repro.casestudy.scaling import synthetic_model
        from repro.metrics.cost import Budget

        with obs.capture(clock=obs.ManualClock(autostep=1.0)) as cap:
            model = synthetic_model(
                assets=5, data_types=6, monitor_types=4, monitors=12, attacks=8, seed=11
            )
            budget = Budget.fraction_of_total(model, 0.3)
            result = solve_greedy(model, budget)
        return result, cap.tracer.export_spans(), cap.registry.snapshot()

    def test_manual_clock_runs_are_bit_identical(self):
        """Fresh model + fake clock: spans, metrics, and result all repeat."""
        first_result, first_spans, first_metrics = self._traced_solve()
        second_result, second_spans, second_metrics = self._traced_solve()
        assert second_spans == first_spans  # including begin/end times
        assert second_metrics == first_metrics  # including duration histograms
        assert second_result.solve_seconds == first_result.solve_seconds
        assert second_result.deployment.monitor_ids == first_result.deployment.monitor_ids

    def _traced_campaigns(self, model, deployment, workers):
        with obs.capture() as cap:
            run_campaigns(
                model, deployment, seeds=[0, 1, 2], workers=workers, repetitions=2
            )
        return cap.tracer.export_spans(), cap.registry.snapshot()

    @pytest.fixture(scope="class")
    def deployment(self, web_model):
        from repro.metrics.cost import Budget

        budget = Budget.fraction_of_total(web_model, 0.3)
        return solve_greedy(web_model, budget).deployment

    def test_worker_count_does_not_change_the_trace_shape(self, web_model, deployment):
        """workers is a throughput knob for the trace too.

        Wall-clock timings differ across worker counts, but the span
        forest's structure (names, nesting, task rows), every counter,
        and the simulated-time histograms (detection latency, detector
        score) must not.
        """
        serial_spans, serial_metrics = self._traced_campaigns(web_model, deployment, 1)
        pool_spans, pool_metrics = self._traced_campaigns(web_model, deployment, 4)
        assert _span_shape(pool_spans) == _span_shape(serial_spans)
        tids = {item["tid"] for item in serial_spans[0]["children"]}
        assert tids == {"task-0", "task-1", "task-2"}
        assert pool_metrics["counters"] == serial_metrics["counters"]
        for name in ("simulation.detection_latency_seconds", "detector.score"):
            assert pool_metrics["histograms"][name] == serial_metrics["histograms"][name]


class TestShapleyDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_equals_serial(self, web_model, workers):
        deployment = Deployment.of(web_model, sorted(web_model.monitors)[:6])
        weights = UtilityWeights()
        serial = shapley_values(
            web_model, deployment, weights, samples=96, seed=5, workers=1
        )
        parallel = shapley_values(
            web_model, deployment, weights, samples=96, seed=5, workers=workers
        )
        assert [(v.monitor_id, v.value) for v in parallel] == [
            (v.monitor_id, v.value) for v in serial
        ]
