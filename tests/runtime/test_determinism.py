"""Parallel runs must be bit-identical to serial runs.

The substrate's contract is that ``workers`` is a pure throughput knob:
every seeded computation partitions its randomness via spawned
``SeedSequence`` children keyed by position, so the fan-out across 2 or
4 workers reproduces the serial stream exactly — not approximately.
"""

import pytest

from repro.analysis.contribution import shapley_values
from repro.metrics.utility import UtilityWeights
from repro.optimize.deployment import Deployment
from repro.optimize.greedy import solve_greedy
from repro.optimize.pareto import budget_sweep, heuristic_sweep
from repro.simulation.campaign import run_campaigns

FRACTIONS = [0.1, 0.2, 0.3, 0.4]


def _sweep_signature(points):
    return [
        (p.fraction, p.result.utility, tuple(sorted(p.result.monitor_ids)))
        for p in points
    ]


def _nan_safe(value):
    return None if value != value else value


def _campaign_signature(results):
    return [
        (
            r.seed,
            r.detection_rate,
            _nan_safe(r.mean_detection_latency),
            r.mean_step_completeness,
            r.mean_field_completeness,
            r.observations,
            r.duration,
        )
        for r in results
    ]


class TestBudgetSweepDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_equals_serial(self, web_model, workers):
        serial = budget_sweep(web_model, FRACTIONS, workers=1)
        parallel = budget_sweep(web_model, FRACTIONS, workers=workers)
        assert _sweep_signature(parallel) == _sweep_signature(serial)

    def test_parallel_points_are_rebound_to_caller_model(self, web_model):
        points = budget_sweep(web_model, FRACTIONS[:2], workers=2)
        for point in points:
            assert point.result.deployment.model is web_model

    @pytest.mark.parametrize("workers", [2, 4])
    def test_heuristic_sweep_parallel_equals_serial(self, web_model, workers):
        serial = heuristic_sweep(web_model, FRACTIONS, solve_greedy, workers=1)
        parallel = heuristic_sweep(web_model, FRACTIONS, solve_greedy, workers=workers)
        assert _sweep_signature(parallel) == _sweep_signature(serial)


class TestCampaignDeterminism:
    SEEDS = [0, 1, 2, 3, 4, 5]

    @pytest.fixture(scope="class")
    def deployment(self, web_model):
        from repro.metrics.cost import Budget

        budget = Budget.fraction_of_total(web_model, 0.3)
        return solve_greedy(web_model, budget).deployment

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_equals_serial(self, web_model, deployment, workers):
        serial = run_campaigns(
            web_model, deployment, seeds=self.SEEDS, workers=1, repetitions=2
        )
        parallel = run_campaigns(
            web_model, deployment, seeds=self.SEEDS, workers=workers, repetitions=2
        )
        assert _campaign_signature(parallel) == _campaign_signature(serial)

    def test_multi_seed_matches_single_seed_runs(self, web_model, deployment):
        from repro.simulation.campaign import run_campaign

        results = run_campaigns(
            web_model, deployment, seeds=[3, 7], workers=2, repetitions=2
        )
        for seed, result in zip([3, 7], results):
            direct = run_campaign(web_model, deployment, seed=seed, repetitions=2)
            assert result.detection_rate == direct.detection_rate
            assert result.duration == direct.duration
            assert result.observations == direct.observations


class TestShapleyDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_equals_serial(self, web_model, workers):
        deployment = Deployment.of(web_model, sorted(web_model.monitors)[:6])
        weights = UtilityWeights()
        serial = shapley_values(
            web_model, deployment, weights, samples=96, seed=5, workers=1
        )
        parallel = shapley_values(
            web_model, deployment, weights, samples=96, seed=5, workers=workers
        )
        assert [(v.monitor_id, v.value) for v in parallel] == [
            (v.monitor_id, v.value) for v in serial
        ]
