"""Public API surface tests: what `import repro` promises."""

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("name", repro.__all__)
    def test_all_names_resolve(self, name):
        assert getattr(repro, name) is not None

    def test_core_types_reachable(self):
        assert repro.SystemModel
        assert repro.ModelBuilder
        assert repro.Budget
        assert repro.UtilityWeights

    def test_error_hierarchy(self):
        from repro.errors import (
            InfeasibleError,
            MetricError,
            ModelError,
            OptimizationError,
            ReproError,
            SerializationError,
            SimulationError,
            SolverError,
        )

        for exc in (
            ModelError,
            MetricError,
            SolverError,
            OptimizationError,
            SerializationError,
            SimulationError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(InfeasibleError, SolverError)


class TestSubpackageSurfaces:
    def test_metrics_all_resolves(self):
        import repro.metrics as m

        for name in m.__all__:
            assert getattr(m, name) is not None

    def test_optimize_all_resolves(self):
        import repro.optimize as o

        for name in o.__all__:
            assert getattr(o, name) is not None

    def test_solver_all_resolves(self):
        import repro.solver as s

        for name in s.__all__:
            assert getattr(s, name) is not None

    def test_simulation_all_resolves(self):
        import repro.simulation as sim

        for name in sim.__all__:
            assert getattr(sim, name) is not None

    def test_analysis_all_resolves(self):
        import repro.analysis as a

        for name in a.__all__:
            assert getattr(a, name) is not None

    def test_casestudy_all_resolves(self):
        import repro.casestudy as c

        for name in c.__all__:
            assert getattr(c, name) is not None

    def test_export_all_resolves(self):
        import repro.export as e

        for name in e.__all__:
            assert getattr(e, name) is not None


class TestDocstrings:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.core",
            "repro.metrics",
            "repro.solver",
            "repro.optimize",
            "repro.simulation",
            "repro.casestudy",
            "repro.analysis",
            "repro.export",
            "repro.cli",
        ],
    )
    def test_every_package_documented(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"
