"""Redundancy metrics against hand-computed values on the toy model."""

import pytest

from repro.errors import MetricError
from repro.metrics.redundancy import (
    attack_redundancy,
    event_evidence_count,
    event_redundancy,
    overall_redundancy,
)

NET_ONLY = {"mnet@n1"}
ALL = {"mlog@h1", "mlog@h2", "mnet@n1", "mdb@h2"}


class TestEvidenceCount:
    def test_counts_deployed_providers(self, toy_model):
        assert event_evidence_count(toy_model, ALL, "e1") == 2
        assert event_evidence_count(toy_model, NET_ONLY, "e1") == 1
        assert event_evidence_count(toy_model, NET_ONLY, "e3") == 0


class TestEventRedundancy:
    def test_cap_two(self, toy_model):
        assert event_redundancy(toy_model, ALL, "e1") == 1.0
        assert event_redundancy(toy_model, NET_ONLY, "e1") == 0.5
        assert event_redundancy(toy_model, ALL, "e3") == 0.5

    def test_cap_one_saturates_immediately(self, toy_model):
        assert event_redundancy(toy_model, NET_ONLY, "e1", cap=1) == 1.0

    def test_cap_three(self, toy_model):
        assert event_redundancy(toy_model, ALL, "e1", cap=3) == pytest.approx(2 / 3)

    def test_invalid_cap(self, toy_model):
        with pytest.raises(MetricError):
            event_redundancy(toy_model, ALL, "e1", cap=0)


class TestAggregates:
    def test_attack_redundancy(self, toy_model):
        assert attack_redundancy(toy_model, NET_ONLY, "A") == pytest.approx(0.5)
        assert attack_redundancy(toy_model, NET_ONLY, "B") == pytest.approx(1.0 / 3)

    def test_overall_hand_computed(self, toy_model):
        expected = (1.0 * 0.5 + 0.5 * (1.0 / 3)) / 1.5
        assert overall_redundancy(toy_model, NET_ONLY) == pytest.approx(expected)

    def test_full_deployment(self, toy_model):
        # counts: e1=2, e2=2, e3=1 -> redundancy 1, 1, 0.5
        assert attack_redundancy(toy_model, ALL, "A") == pytest.approx(1.0)
        assert attack_redundancy(toy_model, ALL, "B") == pytest.approx(2.5 / 3)

    def test_empty_deployment_zero(self, toy_model):
        assert overall_redundancy(toy_model, set()) == 0.0

    def test_no_attacks_is_zero(self):
        from repro.core import ModelBuilder

        model = ModelBuilder().asset("a").build()
        assert overall_redundancy(model, set()) == 0.0
