"""Property-based tests of metric invariants on random models.

Invariants checked on randomized synthetic models and deployments:

* every metric lies in ``[0, 1]``;
* every metric is **monotone**: adding a monitor never decreases it;
* the empty deployment scores 0 and the full deployment is maximal;
* the ILP-facing aggregation identity holds: overall metrics are the
  importance-weighted means of the per-attack metrics.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.casestudy import synthetic_model
from repro.metrics.confidence import overall_confidence
from repro.metrics.coverage import attack_coverage, overall_coverage
from repro.metrics.redundancy import overall_redundancy
from repro.metrics.richness import overall_richness
from repro.metrics.utility import UtilityWeights, utility


@st.composite
def model_and_deployment(draw):
    """A small synthetic model plus a random subset of its monitors."""
    seed = draw(st.integers(0, 10_000))
    assets = draw(st.integers(3, 8))
    monitor_types = 3
    monitors = min(draw(st.integers(2, 10)), assets * monitor_types)
    model = synthetic_model(
        assets=assets,
        data_types=4,
        monitor_types=monitor_types,
        monitors=monitors,
        attacks=draw(st.integers(1, 6)),
        events=draw(st.integers(2, 8)),
        seed=seed,
    )
    monitor_ids = sorted(model.monitors)
    deployed = frozenset(m for m in monitor_ids if draw(st.booleans()))
    return model, deployed


ALL_METRICS = [
    overall_coverage,
    lambda m, d: overall_redundancy(m, d, 2),
    overall_richness,
    overall_confidence,
    utility,
]

COMMON_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(model_and_deployment())
@settings(**COMMON_SETTINGS)
def test_metrics_bounded(case):
    model, deployed = case
    for metric in ALL_METRICS:
        value = metric(model, deployed)
        assert 0.0 <= value <= 1.0 + 1e-12


@given(model_and_deployment(), st.integers(0, 100))
@settings(**COMMON_SETTINGS)
def test_metrics_monotone_in_deployment(case, pick):
    model, deployed = case
    remaining = sorted(set(model.monitors) - deployed)
    if not remaining:
        return
    extra = remaining[pick % len(remaining)]
    for metric in ALL_METRICS:
        assert metric(model, deployed | {extra}) >= metric(model, deployed) - 1e-12


@given(model_and_deployment())
@settings(**COMMON_SETTINGS)
def test_empty_deployment_scores_zero(case):
    model, _ = case
    for metric in ALL_METRICS:
        assert metric(model, frozenset()) == 0.0


@given(model_and_deployment())
@settings(**COMMON_SETTINGS)
def test_full_deployment_is_maximal(case):
    model, deployed = case
    full = frozenset(model.monitors)
    for metric in ALL_METRICS:
        assert metric(model, full) >= metric(model, deployed) - 1e-12


@given(model_and_deployment())
@settings(**COMMON_SETTINGS)
def test_overall_coverage_is_importance_weighted_mean(case):
    model, deployed = case
    total_importance = sum(a.importance for a in model.attacks.values())
    expected = (
        sum(
            a.importance * attack_coverage(model, deployed, a)
            for a in model.attacks.values()
        )
        / total_importance
    )
    assert overall_coverage(model, deployed) == pytest.approx(expected)


@given(model_and_deployment(), st.floats(0.0, 1.0))
@settings(**COMMON_SETTINGS)
def test_utility_interpolates_between_components(case, lam):
    """The tradeoff weighting is a true convex combination."""
    model, deployed = case
    w = UtilityWeights.tradeoff(lam)
    coverage = overall_coverage(model, deployed)
    redundancy = overall_redundancy(model, deployed, w.redundancy_cap)
    assert utility(model, deployed, w) == pytest.approx(
        (1 - lam) * coverage + lam * redundancy
    )
