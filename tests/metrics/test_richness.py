"""Richness metrics against hand-computed values on the toy model.

Capturable fields per event: e1 -> {f1, f2, f3}; e2 -> {f2, f3, f4};
e3 -> {f1, f2}.
"""

import pytest

from repro.metrics.richness import (
    attack_richness,
    deployment_field_census,
    event_richness,
    overall_richness,
)

NET_ONLY = {"mnet@n1"}
ALL = {"mlog@h1", "mlog@h2", "mnet@n1", "mdb@h2"}


class TestEventRichness:
    def test_full_deployment_is_one(self, toy_model):
        for event_id in ("e1", "e2", "e3"):
            assert event_richness(toy_model, ALL, event_id) == 1.0

    def test_partial_fields(self, toy_model):
        # mnet captures dnet fields {f2, f3}: 2 of e1's 3 capturable fields.
        assert event_richness(toy_model, NET_ONLY, "e1") == pytest.approx(2 / 3)
        assert event_richness(toy_model, NET_ONLY, "e2") == pytest.approx(2 / 3)
        assert event_richness(toy_model, NET_ONLY, "e3") == 0.0

    def test_empty_deployment(self, toy_model):
        assert event_richness(toy_model, set(), "e1") == 0.0

    def test_uncapturable_event_is_zero(self):
        from tests.conftest import build_toy_builder

        builder = build_toy_builder()
        builder.event("orphan", asset="h1")
        model = builder.build()
        assert event_richness(model, {"mlog@h1"}, "orphan") == 0.0


class TestAggregates:
    def test_attack_richness(self, toy_model):
        assert attack_richness(toy_model, NET_ONLY, "A") == pytest.approx(2 / 3)
        assert attack_richness(toy_model, NET_ONLY, "B") == pytest.approx(4 / 9)

    def test_overall_hand_computed(self, toy_model):
        expected = (1.0 * (2 / 3) + 0.5 * (4 / 9)) / 1.5
        assert overall_richness(toy_model, NET_ONLY) == pytest.approx(expected)

    def test_full_deployment_is_one(self, toy_model):
        assert overall_richness(toy_model, ALL) == pytest.approx(1.0)

    def test_no_attacks_is_zero(self):
        from repro.core import ModelBuilder

        model = ModelBuilder().asset("a").build()
        assert overall_richness(model, set()) == 0.0


class TestFieldCensus:
    def test_census_lists_captured_fields(self, toy_model):
        census = deployment_field_census(toy_model, NET_ONLY)
        assert census == {
            "e1": frozenset({"f2", "f3"}),
            "e2": frozenset({"f2", "f3"}),
        }

    def test_empty_deployment_empty_census(self, toy_model):
        assert deployment_field_census(toy_model, set()) == {}

    def test_restricted_evidence_fields_respected(self):
        from tests.conftest import build_toy_builder

        builder = build_toy_builder()
        builder.event("e4", asset="h1")
        builder.evidence("dlog", "e4", fields_used=["f1"])
        builder.attack("C", steps=["e4"])
        model = builder.build()
        census = deployment_field_census(model, {"mlog@h1"})
        assert census["e4"] == frozenset({"f1"})
        assert event_richness(model, {"mlog@h1"}, "e4") == 1.0
