"""Regressions for the cost-reporting helpers' edge cases.

A budget may legitimately constrain a dimension no monitor spends in
(capacity reserved for gear that was never bought); the reporting
helpers must treat that spend as 0.0, not fail.  Also pins the error
messages invalid utility weights produce — callers match on them.
"""

from __future__ import annotations

import pytest

from repro.errors import MetricError
from repro.metrics.cost import Budget, budget_utilization, residual_budget
from repro.metrics.utility import UtilityWeights


class TestUnspentDimensions:
    def test_utilization_of_an_unspent_dimension_is_zero(self, toy_model):
        budget = Budget.of(cpu=10, gpu=4)  # no toy monitor has a gpu cost
        deployed = frozenset(toy_model.monitors)
        utilization = budget_utilization(toy_model, deployed, budget)
        assert utilization["gpu"] == 0.0
        assert utilization["cpu"] > 0.0

    def test_residual_of_an_unspent_dimension_is_the_full_limit(self, toy_model):
        budget = Budget.of(cpu=10, gpu=4)
        deployed = frozenset(toy_model.monitors)
        residual = residual_budget(toy_model, deployed, budget)
        assert residual["gpu"] == 4.0
        assert residual["cpu"] < 10.0

    def test_zero_limit_on_an_unspent_dimension_reports_zero_not_inf(self, toy_model):
        budget = Budget.of(gpu=0)
        utilization = budget_utilization(toy_model, frozenset(toy_model.monitors), budget)
        assert utilization == {"gpu": 0.0}

    def test_empty_deployment_under_a_constraining_budget(self, toy_model):
        budget = Budget.of(cpu=5, gpu=2)
        assert budget_utilization(toy_model, frozenset(), budget) == {
            "cpu": 0.0,
            "gpu": 0.0,
        }
        assert residual_budget(toy_model, frozenset(), budget) == {
            "cpu": 5.0,
            "gpu": 2.0,
        }


class TestWeightErrorMessages:
    def test_negative_weight_names_the_offender(self):
        with pytest.raises(MetricError, match="'redundancy' must be >= 0"):
            UtilityWeights(coverage=1.2, redundancy=-0.2, richness=0.0)

    def test_sum_violation_reports_the_total(self):
        with pytest.raises(MetricError, match="must sum to 1"):
            UtilityWeights(coverage=0.5, redundancy=0.2, richness=0.2)

    def test_redundancy_cap_floor(self):
        with pytest.raises(MetricError, match="redundancy_cap must be >= 1"):
            UtilityWeights(redundancy_cap=0)

    def test_tradeoff_parameter_bounds(self):
        with pytest.raises(MetricError, match="lie in \\[0, 1\\]"):
            UtilityWeights.tradeoff(1.5)


class TestBudgetValidation:
    def test_non_finite_limits_are_rejected(self):
        with pytest.raises(MetricError, match="finite"):
            Budget.of(cpu=float("inf"))
        with pytest.raises(MetricError, match="finite"):
            Budget.of(cpu=float("nan"))

    def test_negative_limits_are_rejected(self):
        with pytest.raises(MetricError):
            Budget.of(cpu=-1)
