"""Confidence metrics against hand-computed values on the toy model.

Monitor qualities: mlog 0.9, mnet 0.8, mdb 1.0.
"""

import pytest

from repro.metrics.confidence import attack_confidence, event_confidence, overall_confidence

NET_ONLY = {"mnet@n1"}
ALL = {"mlog@h1", "mlog@h2", "mnet@n1", "mdb@h2"}


class TestEventConfidence:
    def test_single_monitor(self, toy_model):
        # e1 via mnet: weight 0.5 * quality 0.8 = 0.4
        assert event_confidence(toy_model, NET_ONLY, "e1") == pytest.approx(0.4)

    def test_corroboration_compounds(self, toy_model):
        # e1 via both: 1 - (1 - 1.0*0.9)(1 - 0.5*0.8) = 1 - 0.1*0.6
        assert event_confidence(toy_model, ALL, "e1") == pytest.approx(0.94)

    def test_perfect_monitor_with_full_weight(self, toy_model):
        # e2 via mdb alone: weight 0.8 * quality 1.0
        assert event_confidence(toy_model, {"mdb@h2"}, "e2") == pytest.approx(0.8)

    def test_uncovered_event_zero(self, toy_model):
        assert event_confidence(toy_model, NET_ONLY, "e3") == 0.0

    def test_confidence_never_exceeds_one(self, toy_model):
        for event_id in toy_model.events:
            assert 0.0 <= event_confidence(toy_model, ALL, event_id) <= 1.0


class TestAggregates:
    def test_attack_confidence_hand_computed(self, toy_model):
        # A under NET_ONLY: e1 -> 0.4, e2 -> 0.32; mean = 0.36
        assert attack_confidence(toy_model, NET_ONLY, "A") == pytest.approx(0.36)

    def test_overall_hand_computed(self, toy_model):
        conf_a = 0.36
        conf_b = (2 * 0.32 + 0.0) / 3
        expected = (1.0 * conf_a + 0.5 * conf_b) / 1.5
        assert overall_confidence(toy_model, NET_ONLY) == pytest.approx(expected)

    def test_full_deployment(self, toy_model):
        # e2 via mdb (0.8*1.0) and mnet (0.4*0.8): 1 - 0.2*0.68 = 0.864
        assert event_confidence(toy_model, ALL, "e2") == pytest.approx(0.864)
        conf_a = (0.94 + 0.864) / 2
        assert attack_confidence(toy_model, ALL, "A") == pytest.approx(conf_a)

    def test_no_attacks_is_zero(self):
        from repro.core import ModelBuilder

        model = ModelBuilder().asset("a").build()
        assert overall_confidence(model, set()) == 0.0
