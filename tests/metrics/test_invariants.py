"""Property tests for metric invariants over seeded random models.

The reference metrics promise three structural properties that every
downstream layer (engine deltas, solver objectives, CLI reports) leans
on: all components live in ``[0, 1]``, utility is monotone
non-decreasing under monitor addition, and redundancy degrades
truthfully on singleton deployments — one monitor can evidence steps
(``count = 1``) but can never corroborate, so its redundancy is exactly
its cap-1 support scaled by ``1 / cap``, bounded by ``1 / cap``.

Models reuse the seeded synthetic generator, sweeping 50 structurally
different coverage relations.
"""

import numpy as np
import pytest

from repro.casestudy.scaling import synthetic_model
from repro.metrics.coverage import overall_coverage
from repro.metrics.redundancy import DEFAULT_REDUNDANCY_CAP, overall_redundancy
from repro.metrics.richness import overall_richness
from repro.metrics.utility import UtilityWeights, utility

MODEL_SEEDS = range(50)

WEIGHT_CHOICES = [
    UtilityWeights(),
    UtilityWeights(coverage=0.4, redundancy=0.4, richness=0.2, redundancy_cap=3),
    UtilityWeights(coverage=1.0, redundancy=0.0, richness=0.0),
]


def _small_model(seed: int):
    return synthetic_model(
        assets=5,
        data_types=6,
        monitor_types=4,
        monitors=12,
        attacks=8,
        seed=seed,
    )


def _random_deployment(rng, monitor_ids):
    size = int(rng.integers(0, len(monitor_ids) + 1))
    return frozenset(rng.choice(monitor_ids, size=size, replace=False))


@pytest.mark.parametrize("model_seed", MODEL_SEEDS)
def test_components_bounded_in_unit_interval(model_seed):
    """Coverage, redundancy, richness, and utility all live in [0, 1]."""
    model = _small_model(model_seed)
    monitor_ids = np.array(sorted(model.monitors))
    rng = np.random.default_rng(4000 + model_seed)
    weights = WEIGHT_CHOICES[model_seed % len(WEIGHT_CHOICES)]
    for deployed in (
        frozenset(),
        frozenset(monitor_ids),
        *(_random_deployment(rng, monitor_ids) for _ in range(4)),
    ):
        assert 0.0 <= overall_coverage(model, deployed) <= 1.0
        assert 0.0 <= overall_redundancy(model, deployed) <= 1.0
        assert 0.0 <= overall_richness(model, deployed) <= 1.0
        assert 0.0 <= utility(model, deployed, weights) <= 1.0


@pytest.mark.parametrize("model_seed", MODEL_SEEDS)
def test_utility_monotone_under_monitor_addition(model_seed):
    """Adding a monitor never decreases utility (or any component)."""
    model = _small_model(model_seed)
    monitor_ids = sorted(model.monitors)
    rng = np.random.default_rng(5000 + model_seed)
    weights = WEIGHT_CHOICES[model_seed % len(WEIGHT_CHOICES)]

    deployed: set[str] = set()
    previous_utility = utility(model, deployed, weights)
    previous_coverage = overall_coverage(model, deployed)
    for monitor_id in rng.permutation(monitor_ids):
        deployed.add(str(monitor_id))
        current_utility = utility(model, deployed, weights)
        current_coverage = overall_coverage(model, deployed)
        assert current_utility >= previous_utility - 1e-12
        assert current_coverage >= previous_coverage - 1e-12
        previous_utility, previous_coverage = current_utility, current_coverage


@pytest.mark.parametrize("model_seed", MODEL_SEEDS)
def test_singleton_redundancy_is_support_over_cap(model_seed):
    """A lone monitor cannot corroborate: evidence counts stay <= 1.

    Under the cap semantics that makes its redundancy exactly its cap-1
    support divided by ``cap`` — bounded by ``1 / cap``, and zero only
    when the monitor evidences nothing.  The empty deployment is the
    true zero.
    """
    model = _small_model(model_seed)
    cap = DEFAULT_REDUNDANCY_CAP
    assert overall_redundancy(model, frozenset()) == 0.0
    for monitor_id in sorted(model.monitors):
        singleton = frozenset({monitor_id})
        value = overall_redundancy(model, singleton, cap)
        support = overall_redundancy(model, singleton, 1)
        assert value <= 1.0 / cap + 1e-12
        assert value == pytest.approx(support / cap, abs=1e-12)
