"""Tests for budgets and cost metrics."""

import pytest

from repro.core.monitors import CostVector
from repro.errors import MetricError
from repro.metrics.cost import Budget, budget_utilization, deployment_cost, residual_budget


class TestBudget:
    def test_of_constructor(self):
        budget = Budget.of(cpu=10, storage=5)
        assert budget.dimensions == frozenset({"cpu", "storage"})
        assert budget.limit("cpu") == 10
        assert budget.limit("network") is None

    def test_allows_within_limits(self):
        budget = Budget.of(cpu=10)
        assert budget.allows(CostVector({"cpu": 10}))
        assert not budget.allows(CostVector({"cpu": 10.01}))

    def test_unconstrained_dimension_is_free(self):
        budget = Budget.of(cpu=10)
        assert budget.allows(CostVector({"cpu": 1, "storage": 1e9}))

    def test_fraction_of_total(self, toy_model):
        budget = Budget.fraction_of_total(toy_model, 0.5)
        total = toy_model.total_cost()
        for dim in total.dimensions:
            assert budget.limit(dim) == pytest.approx(total.get(dim) * 0.5)

    def test_fraction_negative_rejected(self, toy_model):
        with pytest.raises(MetricError):
            Budget.fraction_of_total(toy_model, -0.1)

    def test_fraction_one_allows_everything(self, toy_model):
        budget = Budget.fraction_of_total(toy_model, 1.0)
        assert budget.allows(toy_model.total_cost())

    def test_scaled(self):
        assert Budget.of(cpu=10).scaled(0.5).limit("cpu") == 5.0


class TestDeploymentCost:
    def test_sums_monitor_costs(self, toy_model):
        cost = deployment_cost(toy_model, ["mlog@h1", "mnet@n1"])
        assert cost.as_dict() == {"cpu": 6, "storage": 1, "network": 2}

    def test_empty_deployment_is_free(self, toy_model):
        assert deployment_cost(toy_model, []).is_zero()


class TestUtilization:
    def test_fractional_utilization(self, toy_model):
        budget = Budget.of(cpu=10, network=4)
        utilization = budget_utilization(toy_model, ["mnet@n1"], budget)
        assert utilization == {"cpu": pytest.approx(0.4), "network": pytest.approx(0.5)}

    def test_overspend_reported_above_one(self, toy_model):
        budget = Budget.of(cpu=2)
        utilization = budget_utilization(toy_model, ["mnet@n1"], budget)
        assert utilization["cpu"] == pytest.approx(2.0)

    def test_only_constrained_dimensions_reported(self, toy_model):
        utilization = budget_utilization(toy_model, ["mnet@n1"], Budget.of(cpu=10))
        assert set(utilization) == {"cpu"}

    def test_residual_budget(self, toy_model):
        residual = residual_budget(toy_model, ["mnet@n1"], Budget.of(cpu=10, network=1))
        assert residual == {"cpu": pytest.approx(6.0), "network": pytest.approx(-1.0)}
