"""Coverage metrics against hand-computed values on the toy model.

Toy coverage relation (see ``tests/conftest.py``):
e1 <- {mlog@h1: 1.0, mnet@n1: 0.5}; e2 <- {mdb@h2: 0.8, mnet@n1: 0.4};
e3 <- {mlog@h2: 0.6}.  Attack A = (e1, e2) imp 1.0; attack B =
(e2 w2, e3 optional) imp 0.5.
"""

import pytest

from repro.metrics.coverage import (
    attack_coverage,
    covered_events,
    detectable_attacks,
    event_coverage,
    fully_covered_attacks,
    overall_coverage,
)

NET_ONLY = {"mnet@n1"}
ALL = {"mlog@h1", "mlog@h2", "mnet@n1", "mdb@h2"}


class TestEventCoverage:
    def test_best_weight_wins(self, toy_model):
        assert event_coverage(toy_model, ALL, "e1") == 1.0

    def test_single_provider(self, toy_model):
        assert event_coverage(toy_model, NET_ONLY, "e1") == 0.5
        assert event_coverage(toy_model, NET_ONLY, "e2") == 0.4

    def test_uncovered_event_is_zero(self, toy_model):
        assert event_coverage(toy_model, NET_ONLY, "e3") == 0.0
        assert event_coverage(toy_model, set(), "e1") == 0.0


class TestAttackCoverage:
    def test_hand_computed(self, toy_model):
        assert attack_coverage(toy_model, NET_ONLY, "A") == pytest.approx(0.45)
        assert attack_coverage(toy_model, NET_ONLY, "B") == pytest.approx(0.8 / 3)

    def test_accepts_attack_object(self, toy_model):
        attack = toy_model.attack("A")
        assert attack_coverage(toy_model, NET_ONLY, attack) == pytest.approx(0.45)

    def test_full_deployment(self, toy_model):
        assert attack_coverage(toy_model, ALL, "A") == pytest.approx(0.9)
        assert attack_coverage(toy_model, ALL, "B") == pytest.approx(2.2 / 3)


class TestOverallCoverage:
    def test_hand_computed(self, toy_model):
        expected = (1.0 * 0.45 + 0.5 * (0.8 / 3)) / 1.5
        assert overall_coverage(toy_model, NET_ONLY) == pytest.approx(expected)

    def test_empty_deployment(self, toy_model):
        assert overall_coverage(toy_model, set()) == 0.0

    def test_full_deployment(self, toy_model):
        expected = (1.0 * 0.9 + 0.5 * (2.2 / 3)) / 1.5
        assert overall_coverage(toy_model, ALL) == pytest.approx(expected)

    def test_no_attacks_is_zero(self):
        from repro.core import ModelBuilder

        model = ModelBuilder().asset("a").build()
        assert overall_coverage(model, set()) == 0.0


class TestCoveredEvents:
    def test_threshold_zero(self, toy_model):
        assert covered_events(toy_model, NET_ONLY) == frozenset({"e1", "e2"})

    def test_threshold_filters(self, toy_model):
        assert covered_events(toy_model, NET_ONLY, threshold=0.45) == frozenset({"e1"})


class TestAttackSets:
    def test_fully_covered_requires_required_steps(self, toy_model):
        # A requires e1 and e2; B requires only e2 (e3 is optional).
        assert fully_covered_attacks(toy_model, NET_ONLY) == frozenset({"A", "B"})
        assert fully_covered_attacks(toy_model, {"mdb@h2"}) == frozenset({"B"})

    def test_detectable_needs_any_step(self, toy_model):
        assert detectable_attacks(toy_model, {"mlog@h2"}) == frozenset({"B"})
        assert detectable_attacks(toy_model, set()) == frozenset()

    def test_threshold_applies(self, toy_model):
        # At threshold 0.5 the 0.4-weight coverage of e2 no longer counts.
        assert fully_covered_attacks(toy_model, NET_ONLY, threshold=0.45) == frozenset()


class TestAssetWeightedCoverage:
    def test_hand_computed(self, toy_model):
        from repro.metrics.coverage import asset_weighted_coverage

        # Events: e1@h1 (crit 0.5), e2@h2 (crit 0.5), e3@h2 (crit 0.5).
        # Under NET_ONLY: cov 0.5, 0.4, 0.0 -> mean 0.3 (equal weights).
        assert asset_weighted_coverage(toy_model, NET_ONLY) == pytest.approx(0.3)

    def test_criticality_reweights(self):
        from repro.core import AssetKind, ModelBuilder
        from repro.metrics.coverage import asset_weighted_coverage

        b = ModelBuilder()
        b.asset("low", kind=AssetKind.SERVER, criticality=0.1)
        b.asset("high", kind=AssetKind.DATABASE, criticality=0.9)
        b.data_type("d")
        b.monitor_type("mt", data_types=["d"], cost={"cpu": 1})
        b.monitor("mt", "low")
        b.monitor("mt", "high")
        b.event("e-low", asset="low")
        b.event("e-high", asset="high")
        b.evidence("d", "e-low")
        b.evidence("d", "e-high")
        b.attack("atk", steps=["e-low", "e-high"])
        model = b.build()

        covers_low = asset_weighted_coverage(model, {"mt@low"})
        covers_high = asset_weighted_coverage(model, {"mt@high"})
        assert covers_high == pytest.approx(0.9)
        assert covers_low == pytest.approx(0.1)
        assert covers_high > covers_low

    def test_unattacked_events_ignored(self, toy_model):
        from tests.conftest import build_toy_builder
        from repro.metrics.coverage import asset_weighted_coverage

        builder = build_toy_builder()
        builder.event("lonely", asset="h1")
        builder.evidence("dlog", "lonely")
        model = builder.build()
        assert asset_weighted_coverage(model, NET_ONLY) == pytest.approx(
            asset_weighted_coverage(toy_model, NET_ONLY)
        )

    def test_bounds_and_monotonicity(self, toy_model):
        from repro.metrics.coverage import asset_weighted_coverage

        assert asset_weighted_coverage(toy_model, set()) == 0.0
        assert asset_weighted_coverage(toy_model, ALL) <= 1.0
        assert asset_weighted_coverage(toy_model, ALL) >= asset_weighted_coverage(
            toy_model, NET_ONLY
        )

    def test_empty_model(self):
        from repro.core import ModelBuilder
        from repro.metrics.coverage import asset_weighted_coverage

        model = ModelBuilder().asset("a").build()
        assert asset_weighted_coverage(model, set()) == 0.0


class TestZoneCoverage:
    def test_toy_has_single_default_zone(self, toy_model):
        from repro.metrics.coverage import zone_coverage

        zones = zone_coverage(toy_model, NET_ONLY)
        assert set(zones) == {""}
        # e1=0.5, e2=0.4, e3=0 -> mean 0.3
        assert zones[""] == pytest.approx(0.3)

    def test_case_study_zones(self, web_model):
        from repro.metrics.coverage import zone_coverage

        zones = zone_coverage(web_model, web_model.monitors)
        assert set(zones) >= {"dmz", "internal", "perimeter"}
        for value in zones.values():
            assert 0.0 <= value <= 1.0

    def test_zone_isolation(self, web_model):
        from repro.metrics.coverage import zone_coverage

        # Deploy only DMZ host monitors: internal zone coverage must be
        # lower than DMZ coverage.
        dmz_monitors = {
            m for m in web_model.monitors
            if web_model.topology.asset(web_model.monitor(m).asset_id).zone == "dmz"
        }
        zones = zone_coverage(web_model, dmz_monitors)
        assert zones["dmz"] > zones["internal"]

    def test_empty_deployment_zero_everywhere(self, web_model):
        from repro.metrics.coverage import zone_coverage

        zones = zone_coverage(web_model, set())
        assert all(value == 0.0 for value in zones.values())
