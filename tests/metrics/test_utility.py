"""Tests for the combined utility function and its weights."""

import pytest

from repro.errors import MetricError
from repro.metrics.coverage import overall_coverage
from repro.metrics.redundancy import overall_redundancy
from repro.metrics.richness import overall_richness
from repro.metrics.utility import UtilityWeights, attack_utility, utility, utility_breakdown

NET_ONLY = {"mnet@n1"}
ALL = {"mlog@h1", "mlog@h2", "mnet@n1", "mdb@h2"}


class TestUtilityWeights:
    def test_default_sums_to_one(self):
        w = UtilityWeights()
        assert w.coverage + w.redundancy + w.richness == pytest.approx(1.0)

    def test_rejects_bad_sum(self):
        with pytest.raises(MetricError, match="sum to 1"):
            UtilityWeights(coverage=0.5, redundancy=0.5, richness=0.5)

    def test_rejects_negative(self):
        with pytest.raises(MetricError):
            UtilityWeights(coverage=1.2, redundancy=-0.2, richness=0.0)

    def test_rejects_bad_cap(self):
        with pytest.raises(MetricError):
            UtilityWeights(coverage=1.0, redundancy=0.0, richness=0.0, redundancy_cap=0)

    def test_coverage_only(self):
        w = UtilityWeights.coverage_only()
        assert (w.coverage, w.redundancy, w.richness) == (1.0, 0.0, 0.0)

    def test_tradeoff(self):
        w = UtilityWeights.tradeoff(0.3)
        assert w.coverage == pytest.approx(0.7)
        assert w.redundancy == pytest.approx(0.3)
        assert w.richness == 0.0

    def test_tradeoff_range(self):
        with pytest.raises(MetricError):
            UtilityWeights.tradeoff(1.5)


class TestUtility:
    def test_coverage_only_equals_coverage(self, toy_model):
        w = UtilityWeights.coverage_only()
        assert utility(toy_model, NET_ONLY, w) == pytest.approx(
            overall_coverage(toy_model, NET_ONLY)
        )

    def test_convex_combination(self, toy_model):
        w = UtilityWeights(coverage=0.6, redundancy=0.25, richness=0.15)
        expected = (
            0.6 * overall_coverage(toy_model, NET_ONLY)
            + 0.25 * overall_redundancy(toy_model, NET_ONLY, 2)
            + 0.15 * overall_richness(toy_model, NET_ONLY)
        )
        assert utility(toy_model, NET_ONLY, w) == pytest.approx(expected)

    def test_default_weights_used_when_omitted(self, toy_model):
        assert utility(toy_model, NET_ONLY) == pytest.approx(
            utility(toy_model, NET_ONLY, UtilityWeights())
        )

    def test_empty_deployment_zero(self, toy_model):
        assert utility(toy_model, set()) == 0.0

    def test_bounded_by_one(self, toy_model):
        assert utility(toy_model, ALL) <= 1.0

    def test_redundancy_cap_changes_value(self, toy_model):
        w2 = UtilityWeights(coverage=0.0, redundancy=1.0, richness=0.0, redundancy_cap=2)
        w3 = UtilityWeights(coverage=0.0, redundancy=1.0, richness=0.0, redundancy_cap=3)
        assert utility(toy_model, ALL, w2) > utility(toy_model, ALL, w3)


class TestBreakdown:
    def test_components_match_metrics(self, toy_model):
        breakdown = utility_breakdown(toy_model, NET_ONLY)
        assert breakdown["coverage"] == pytest.approx(overall_coverage(toy_model, NET_ONLY))
        assert breakdown["redundancy"] == pytest.approx(
            overall_redundancy(toy_model, NET_ONLY, 2)
        )
        assert breakdown["richness"] == pytest.approx(overall_richness(toy_model, NET_ONLY))

    def test_utility_consistent_with_components(self, toy_model):
        w = UtilityWeights()
        breakdown = utility_breakdown(toy_model, NET_ONLY, w)
        recombined = (
            w.coverage * breakdown["coverage"]
            + w.redundancy * breakdown["redundancy"]
            + w.richness * breakdown["richness"]
        )
        assert breakdown["utility"] == pytest.approx(recombined)
        assert breakdown["utility"] == pytest.approx(utility(toy_model, NET_ONLY, w))


class TestAttackUtility:
    def test_per_attack_value(self, toy_model):
        w = UtilityWeights.coverage_only()
        assert attack_utility(toy_model, NET_ONLY, "A", w) == pytest.approx(0.45)

    def test_bounded(self, toy_model):
        for attack_id in toy_model.attacks:
            value = attack_utility(toy_model, ALL, attack_id)
            assert 0.0 <= value <= 1.0
