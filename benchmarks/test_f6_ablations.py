"""F6 — Ablations of the two distinctive design choices.

(a) **Redundancy term.**  Optimize with the full utility vs. coverage-
only, then score both deployments with the full utility.  The ablated
optimizer should leave redundancy (and hence combined utility) on the
table at equal budget.

(b) **Multi-dimensional budget.**  Optimize under the true per-dimension
budget vs. a scalarized single-sum budget of equal total, then check the
scalar-budget deployment against the per-dimension limits.  Scalarizing
lets the optimizer blow individual dimensions (classic hidden-capacity
mistake); the table quantifies how often and by how much.
"""

from repro.analysis.tables import render_table
from repro.metrics.cost import Budget, budget_utilization
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.problem import MaxUtilityProblem

from conftest import publish

FRACTIONS = [0.05, 0.10, 0.20, 0.40]
FULL = UtilityWeights()
COVERAGE_ONLY = UtilityWeights.coverage_only()


def ablate_redundancy(model):
    rows = []
    for fraction in FRACTIONS:
        budget = Budget.fraction_of_total(model, fraction)
        with_term = MaxUtilityProblem(model, budget, FULL).solve()
        without_term = MaxUtilityProblem(model, budget, COVERAGE_ONLY).solve()
        ablated_scored_full = utility(model, without_term.monitor_ids, FULL)
        rows.append(
            [
                fraction,
                with_term.utility,
                ablated_scored_full,
                with_term.utility - ablated_scored_full,
            ]
        )
    return rows


def ablate_budget_dimensions(model):
    rows = []
    for fraction in FRACTIONS:
        budget = Budget.fraction_of_total(model, fraction)
        scalar_total = sum(budget.limits.values())
        multi = MaxUtilityProblem(model, budget, FULL).solve()

        # Scalar variant: a single constraint "summed spend <= total",
        # built directly on the formulation layer (Budget cannot express
        # a cross-dimension sum by design).
        from repro.optimize.formulation import FormulationBuilder
        from repro.solver import solve as milp_solve
        from repro.solver.model import MilpModel, ObjectiveSense

        scalar_milp = MilpModel("scalar-budget", ObjectiveSense.MAXIMIZE)
        scalar_builder = FormulationBuilder(scalar_milp, model)
        scalar_milp.set_objective(scalar_builder.utility_expression(FULL))
        scalar_milp.add_constraint(
            scalar_builder.cost_expression() <= scalar_total, name="scalar_budget"
        )
        scalar_solution = milp_solve(scalar_milp, "scipy")
        scalar_ids = scalar_builder.selected_ids(scalar_solution.values)

        overdrafts = {
            dim: used
            for dim, used in budget_utilization(model, scalar_ids, budget).items()
            if used > 1.0 + 1e-9
        }
        rows.append(
            [
                fraction,
                multi.utility,
                utility(model, scalar_ids, FULL),
                len(overdrafts),
                max(overdrafts.values(), default=0.0),
            ]
        )
    return rows


def test_f6a_redundancy_ablation(benchmark, web_model, results_dir):
    rows = benchmark.pedantic(ablate_redundancy, args=(web_model,), rounds=1, iterations=1)
    table = render_table(
        ["budget frac", "full objective", "coverage-only (rescored)", "utility left on table"],
        rows,
        precision=4,
        title="F6a — Ablating the redundancy/richness terms",
    )
    publish(results_dir, "f6a_redundancy_ablation", table)
    # The full optimizer can never do worse under its own objective, and
    # must be strictly better somewhere for the term to matter.
    assert all(row[1] >= row[2] - 1e-9 for row in rows)
    assert any(row[3] > 0.005 for row in rows)


def test_f6b_budget_dimension_ablation(benchmark, web_model, results_dir):
    rows = benchmark.pedantic(
        ablate_budget_dimensions, args=(web_model,), rounds=1, iterations=1
    )
    table = render_table(
        ["budget frac", "multi-dim utility", "scalar utility", "#dims over", "worst util."],
        rows,
        precision=4,
        title="F6b — Scalarizing the multi-dimensional budget",
    )
    publish(results_dir, "f6b_budget_ablation", table)
    # Scalar utility is an upper bound (weaker constraint set) but must
    # overdraw at least one true dimension somewhere to achieve it.
    assert all(row[2] >= row[1] - 1e-9 for row in rows)
    assert any(row[3] > 0 for row in rows)
