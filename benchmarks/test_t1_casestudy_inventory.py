"""T1 — Case-study inventory: assets and the deployable monitor catalog.

Reproduces the paper's use-case description tables: the enterprise Web
service's assets and the monitor types with their multi-dimensional
costs and placements.  The benchmark times full model construction
(topology + catalogs + index building), which the paper requires to be
negligible next to optimization.
"""

from repro.analysis.tables import render_table
from repro.casestudy import enterprise_web_service
from repro.core.monitors import DEFAULT_COST_DIMENSIONS

from conftest import publish


def build_inventory_tables(model) -> str:
    asset_rows = [
        [a.asset_id, a.kind.value, a.zone, a.criticality]
        for a in model.assets.values()
    ]
    assets = render_table(
        ["asset", "kind", "zone", "criticality"],
        asset_rows,
        title="T1a — Assets of the enterprise Web service",
    )

    monitor_rows = []
    for mtype in model.monitor_types.values():
        placements = sum(
            1 for m in model.monitors.values() if m.monitor_type_id == mtype.monitor_type_id
        )
        monitor_rows.append(
            [
                mtype.monitor_type_id,
                mtype.scope.value,
                placements,
                ",".join(mtype.data_type_ids),
            ]
            + [mtype.cost.get(dim) for dim in DEFAULT_COST_DIMENSIONS]
        )
    monitors = render_table(
        ["monitor type", "scope", "placements", "data types", *DEFAULT_COST_DIMENSIONS],
        monitor_rows,
        title="T1b — Deployable monitor catalog (per-instance cost)",
    )

    stats = model.stats()
    summary = render_table(
        ["entity", "count"],
        sorted(stats.items()),
        title="T1c — Model size",
    )
    return "\n\n".join([assets, monitors, summary])


def test_t1_casestudy_inventory(benchmark, results_dir):
    model = benchmark(enterprise_web_service)
    publish(results_dir, "t1_casestudy_inventory", build_inventory_tables(model))
    assert model.stats()["monitors"] >= 40
