"""F4 — Scalability in the number of attacks.

The companion series to F3: solve time of the optimal-deployment ILP on
synthetic models with 25 to 400 attacks (monitors fixed at 100).  Each
attack contributes objective terms through its steps' events, so this
axis stresses the formulation-size side of the claim.

Like F3, the largest instance additionally races greedy's reference and
incremental evaluation paths (identical selections, >=2x speedup).
"""

import time

from repro.analysis.tables import render_table
from repro.casestudy import synthetic_model
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.greedy import solve_greedy
from repro.optimize.problem import MaxUtilityProblem

from conftest import publish, publish_json

ATTACK_COUNTS = [25, 50, 100, 200, 400]
MONITORS = 100
WEIGHTS = UtilityWeights()
BUDGET_FRACTION = 0.3
MINUTES_CLAIM_SECONDS = 120.0


def make_model(attacks: int):
    return synthetic_model(assets=30, monitors=MONITORS, attacks=attacks, seed=11)


def solve_instance(model):
    budget = Budget.fraction_of_total(model, BUDGET_FRACTION)
    return MaxUtilityProblem(model, budget, WEIGHTS).solve()


def run_series():
    rows = []
    for attacks in ATTACK_COUNTS:
        model = make_model(attacks)
        started = time.perf_counter()
        result = solve_instance(model)
        elapsed = time.perf_counter() - started
        rows.append(
            [
                attacks,
                model.stats()["events"],
                result.stats["variables"],
                result.stats["constraints"],
                len(result.deployment),
                result.utility,
                elapsed,
            ]
        )
    return rows


def test_f4_scaling_attacks(benchmark, results_dir):
    rows = run_series()
    table = render_table(
        ["#attacks", "#events", "ILP vars", "ILP rows", "#selected", "utility", "seconds"],
        rows,
        title=f"F4 — Solve time vs. #attacks (monitors fixed at {MONITORS})",
    )
    from repro.analysis.charts import render_chart

    chart = render_chart(
        {"solve seconds": [(row[0], row[-1]) for row in rows]},
        title="F4 — solve time vs. #attacks (shape)",
        x_label="#attacks",
        y_label="seconds",
        height=10,
    )
    for row in rows:
        assert row[-1] < MINUTES_CLAIM_SECONDS, f"{row[0]} attacks took {row[-1]:.1f}s"

    largest = make_model(ATTACK_COUNTS[-1])
    budget = Budget.fraction_of_total(largest, BUDGET_FRACTION)
    started = time.perf_counter()
    reference = solve_greedy(largest, budget, WEIGHTS, incremental=False)
    reference_seconds = time.perf_counter() - started
    started = time.perf_counter()
    incremental = solve_greedy(largest, budget, WEIGHTS, incremental=True)
    incremental_seconds = time.perf_counter() - started
    assert incremental.selection_order == reference.selection_order
    assert incremental.monitor_ids == reference.monitor_ids
    assert abs(incremental.utility - reference.utility) < 1e-9
    speedup = reference_seconds / incremental_seconds
    assert speedup >= 2.0, (
        f"incremental greedy only {speedup:.1f}x faster "
        f"({reference_seconds:.2f}s vs {incremental_seconds:.2f}s)"
    )
    substrate_note = (
        f"greedy @ {ATTACK_COUNTS[-1]} attacks: reference "
        f"{reference_seconds:.3f}s, incremental {incremental_seconds:.3f}s "
        f"({speedup:.0f}x, identical selections)"
    )
    publish(results_dir, "f4_scaling_attacks", table + "\n\n" + chart + "\n\n" + substrate_note)
    publish_json(
        results_dir,
        "f4_scaling_attacks",
        {
            "experiment": "f4_scaling_attacks",
            "monitors": MONITORS,
            "budget_fraction": BUDGET_FRACTION,
            "columns": [
                "attacks", "events", "ilp_vars", "ilp_rows",
                "selected", "utility", "solve_seconds",
            ],
            "rows": rows,
            "substrate_speedup": {
                "attacks": ATTACK_COUNTS[-1],
                "greedy_reference_seconds": reference_seconds,
                "greedy_incremental_seconds": incremental_seconds,
                "speedup": speedup,
            },
        },
    )

    benchmark.pedantic(solve_instance, args=(largest,), rounds=1, iterations=1)


# --- Parallel B&B ablation: determinism and node accounting at 4 workers ---

BB_SIZES = [(10, 15), (20, 20), (40, 25)]
BB_WORKERS = 4


def test_f4_parallel_bb_ablation(results_dir):
    """Serial vs. frontier-decomposed branch and bound, pooled 4-wide.

    For each instance the serial solver and the parallel solver (4
    workers through one persistent pool, zero-copy matrix handles) must
    agree bit-for-bit on status, objective and the full assignment; the
    artifact records both node counts and wall times.  Serial and
    parallel node counts legitimately differ (subtrees cannot share
    incumbents mid-search) — the determinism contract is on answers,
    and on node counts *across worker counts*, which is pinned by the
    50-seed suite in ``tests/solver/test_parallel_bb.py``.
    """
    from repro.runtime.pool import PersistentPool
    from repro.solver.branch_and_bound import solve_branch_and_bound
    from repro.solver.parallel_bb import solve_parallel_branch_and_bound

    rows = []
    with PersistentPool(workers=BB_WORKERS) as pool:
        for attacks, monitors in BB_SIZES:
            model = synthetic_model(
                assets=10, monitors=monitors, attacks=attacks, seed=11
            )
            budget = Budget.fraction_of_total(model, BUDGET_FRACTION)
            milp, _ = MaxUtilityProblem(model, budget, WEIGHTS).build()

            started = time.perf_counter()
            serial = solve_branch_and_bound(milp)
            serial_seconds = time.perf_counter() - started
            started = time.perf_counter()
            parallel = solve_parallel_branch_and_bound(
                milp, workers=BB_WORKERS, pool=pool
            )
            parallel_seconds = time.perf_counter() - started

            assert parallel.status == serial.status
            assert parallel.objective == serial.objective
            assert dict(parallel.values) == dict(serial.values)
            rows.append(
                [
                    attacks,
                    monitors,
                    len(milp.variables),
                    serial.nodes_explored,
                    parallel.nodes_explored,
                    serial_seconds,
                    parallel_seconds,
                ]
            )

    table = render_table(
        [
            "#attacks", "#monitors", "ILP vars",
            "serial nodes", "parallel nodes",
            "serial s", "parallel s",
        ],
        rows,
        title=f"F4 — Parallel B&B ablation ({BB_WORKERS} workers, bit-identical answers)",
    )
    publish(results_dir, "f4_parallel_bb_ablation", table)
    publish_json(
        results_dir,
        "f4_parallel_bb_ablation",
        {
            "experiment": "f4_parallel_bb_ablation",
            "workers": BB_WORKERS,
            "budget_fraction": BUDGET_FRACTION,
            "columns": [
                "attacks", "monitors", "ilp_vars",
                "serial_nodes", "parallel_nodes",
                "serial_seconds", "parallel_seconds",
            ],
            "rows": rows,
            "bit_identical_answers": True,
        },
    )
