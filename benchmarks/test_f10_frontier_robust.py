"""F10 — Exact trade-off frontier and robustness to threat-model shift.

Two extension experiments on the case study:

(a) **Exact Pareto frontier** (ε-constraint): the complete cost–utility
    curve, every point proven non-dominated — against which the F1
    budget sweep is a sampling.  Reports size, knee region, and total
    enumeration time.

(b) **Robust vs. nominal optimization**: optimize for the nominal
    importance values vs. max-min over shifted-importance scenarios
    (web attacks deprioritized / infrastructure attacks deprioritized),
    then score both deployments under every scenario.  The nominal
    optimum should win its own scenario and lose the worst case; the
    robust optimum gives up a little nominal utility to lift the floor.
"""

from repro.analysis.tables import render_table
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.frontier import exact_frontier
from repro.optimize.problem import MaxUtilityProblem
from repro.optimize.robust import (
    ImportanceScenario,
    RobustMaxUtilityProblem,
    scenario_utility,
)

from conftest import publish

WEIGHTS = UtilityWeights()
BUDGET_FRACTION = 0.15


def web_scenarios(model):
    """Two plausible threat-landscape shifts for the Web case study."""
    web_attacks = [a for a in model.attacks if "@web-" in a]
    infra_attacks = [a for a in model.attacks if "@web-" not in a]
    return [
        ImportanceScenario("web-deprioritized", {a: 0.1 for a in web_attacks}),
        ImportanceScenario("infra-deprioritized", {a: 0.1 for a in infra_attacks}),
    ]


def run_frontier(model):
    points = exact_frontier(model, WEIGHTS)
    total_seconds = sum(p.solve_seconds for p in points)
    return points, total_seconds


def run_robust(model):
    budget = Budget.fraction_of_total(model, BUDGET_FRACTION)
    scenarios = [ImportanceScenario("nominal")] + web_scenarios(model)
    nominal = MaxUtilityProblem(model, budget, WEIGHTS).solve()
    robust = RobustMaxUtilityProblem(
        model, budget, web_scenarios(model), include_nominal=True
    ).solve()

    rows = []
    for scenario in scenarios:
        rows.append(
            [
                scenario.name,
                scenario_utility(model, nominal.monitor_ids, scenario, WEIGHTS),
                scenario_utility(model, robust.monitor_ids, scenario, WEIGHTS),
            ]
        )
    return rows


def test_f10a_exact_frontier(benchmark, web_model, results_dir):
    points, total_seconds = benchmark.pedantic(
        run_frontier, args=(web_model,), rounds=1, iterations=1
    )
    # Sample every ~20th point plus endpoints for the published table.
    sampled = points[:: max(1, len(points) // 12)]
    if points[-1] not in sampled:
        sampled.append(points[-1])
    table = render_table(
        ["scalar cost", "utility", "#monitors"],
        [[p.scalar_cost, p.utility, len(p.deployment)] for p in sampled],
        title=(
            f"F10a — Exact Pareto frontier: {len(points)} non-dominated points, "
            f"enumerated in {total_seconds:.1f}s (sampled rows below)"
        ),
    )
    publish(results_dir, "f10a_exact_frontier", table)

    costs = [p.scalar_cost for p in points]
    utilities = [p.utility for p in points]
    assert all(b > a for a, b in zip(costs, costs[1:]))
    assert all(b > a for a, b in zip(utilities, utilities[1:]))
    assert len(points) > 50  # the curve is genuinely fine-grained


def test_f10b_robust_optimization(benchmark, web_model, results_dir):
    rows = benchmark.pedantic(run_robust, args=(web_model,), rounds=1, iterations=1)
    table = render_table(
        ["scenario", "nominal-optimal deployment", "robust deployment"],
        rows,
        precision=4,
        title=f"F10b — Utility under threat-model shift (budget {BUDGET_FRACTION})",
    )
    publish(results_dir, "f10b_robust_optimization", table)

    nominal_values = [row[1] for row in rows]
    robust_values = [row[2] for row in rows]
    # The nominal optimum wins its own scenario...
    assert nominal_values[0] >= robust_values[0] - 1e-9
    # ...but the robust deployment has the better worst case.
    assert min(robust_values) >= min(nominal_values) - 1e-9
