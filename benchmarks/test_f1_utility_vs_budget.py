"""F1 — Utility vs. cost budget: exact optimum against the baselines.

Reproduces the paper's headline figure: optimal utility as a function
of the deployment budget, with the greedy / random / annealing
baselines on identical budgets.  The benchmark times the full optimal
sweep.

Expected shape: the ILP curve is concave, non-decreasing, dominates
every heuristic at every budget; greedy tracks it closely (submodular
objective), random trails badly.
"""

from repro.analysis.tables import render_table
from repro.metrics.utility import UtilityWeights
from repro.optimize.annealing import solve_annealing
from repro.optimize.greedy import solve_greedy
from repro.optimize.pareto import budget_sweep, heuristic_sweep
from repro.optimize.random_search import solve_random

from conftest import publish

FRACTIONS = [0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.60, 0.80, 1.00]
WEIGHTS = UtilityWeights()


def run_sweeps(model):
    optimal = budget_sweep(model, FRACTIONS, WEIGHTS)
    greedy = heuristic_sweep(model, FRACTIONS, solve_greedy, WEIGHTS)
    random_points = heuristic_sweep(
        model,
        FRACTIONS,
        lambda m, b, w: solve_random(m, b, w, samples=30, seed=1),
        WEIGHTS,
    )
    annealing = heuristic_sweep(
        model,
        FRACTIONS,
        lambda m, b, w: solve_annealing(m, b, w, iterations=1500, seed=1),
        WEIGHTS,
    )
    return optimal, greedy, random_points, annealing


def build_table(sweeps):
    optimal, greedy, random_points, annealing = sweeps
    rows = [
        [o.fraction, o.utility, g.utility, a.utility, r.utility,
         (o.utility - g.utility)]
        for o, g, r, a in zip(optimal, greedy, random_points, annealing)
    ]
    return render_table(
        ["budget frac", "ILP (optimal)", "greedy", "annealing", "random", "ILP-greedy gap"],
        rows,
        precision=4,
        title="F1 — Utility vs. budget: optimal and baselines",
    )


def build_chart(sweeps):
    from repro.analysis.charts import render_chart

    optimal, greedy, random_points, annealing = sweeps
    return render_chart(
        {
            "ILP (optimal)": [(p.fraction, p.utility) for p in optimal],
            "greedy": [(p.fraction, p.utility) for p in greedy],
            "random": [(p.fraction, p.utility) for p in random_points],
        },
        title="F1 — utility vs. budget (curve shape)",
        x_label="budget fraction",
        y_label="utility",
    )


def test_f1_utility_vs_budget(benchmark, web_model, results_dir):
    sweeps = benchmark.pedantic(run_sweeps, args=(web_model,), rounds=1, iterations=1)
    publish(
        results_dir,
        "f1_utility_vs_budget",
        build_table(sweeps) + "\n\n" + build_chart(sweeps),
    )

    optimal, greedy, random_points, annealing = sweeps
    utilities = [p.utility for p in optimal]
    assert utilities == sorted(utilities), "optimal curve must be non-decreasing"
    for o, g, r, a in zip(optimal, greedy, random_points, annealing):
        assert g.utility <= o.utility + 1e-9
        assert r.utility <= o.utility + 1e-9
        assert a.utility <= o.utility + 1e-9
    # The heuristics must be genuinely separated from the optimum
    # somewhere on the curve (otherwise the comparison says nothing).
    assert any(o.utility - r.utility > 0.01 for o, r in zip(optimal, random_points))
