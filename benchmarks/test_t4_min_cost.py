"""T4 — Minimum-cost deployments meeting utility floors.

Reproduces the planning dual of T3: for each required utility level,
the cheapest deployment that achieves it.  The benchmark times one
min-cost ILP solve.

Expected shape: cost grows superlinearly as the floor approaches the
maximum attainable utility (the last attacks to cover need expensive
host telemetry on every target).
"""

import pytest

from repro.analysis.tables import render_table
from repro.errors import InfeasibleError
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.problem import MinCostProblem

from conftest import publish

FLOORS = [0.3, 0.5, 0.7, 0.8, 0.9]
WEIGHTS = UtilityWeights()


def build_table(model):
    from repro.optimize.greedy_cover import solve_greedy_cover

    max_utility = utility(model, model.monitors, WEIGHTS)
    rows = []
    for floor in FLOORS:
        if floor > max_utility:
            rows.append([floor, "-", "-", "-", "-", "infeasible"])
            continue
        result = MinCostProblem(model, min_utility=floor, weights=WEIGHTS).solve()
        greedy = solve_greedy_cover(model, floor, WEIGHTS)
        rows.append(
            [
                floor,
                len(result.deployment),
                result.utility,
                result.deployment.cost().scalarize(),
                greedy.objective,
                f"{result.solve_seconds * 1e3:.0f} ms",
            ]
        )
    table = render_table(
        ["utility floor", "#monitors", "achieved", "min cost (ILP)", "greedy cost", "solve"],
        rows,
        title=f"T4 — Min-cost deployments (max attainable utility: {max_utility:.3f})",
    )
    return table, rows


def test_t4_min_cost(benchmark, web_model, results_dir):
    benchmark(lambda: MinCostProblem(web_model, min_utility=0.7, weights=WEIGHTS).solve())
    text, rows = build_table(web_model)
    publish(results_dir, "t4_min_cost", text)

    costs = [row[3] for row in rows if isinstance(row[3], float)]
    assert costs == sorted(costs), "min cost must be monotone in the floor"
    achieved = [row[2] for row in rows if isinstance(row[2], float)]
    for floor, value in zip(FLOORS, achieved):
        assert value >= floor - 1e-6
    # The greedy baseline never beats the exact minimum.
    for row in rows:
        if isinstance(row[3], float) and isinstance(row[4], float):
            assert row[4] >= row[3] - 1e-6


def test_t4_infeasible_floor_raises(web_model):
    with pytest.raises(InfeasibleError):
        MinCostProblem(web_model, min_utility=0.999).solve()
