"""F3 — Scalability in the number of monitors.

Reproduces the paper's scalability claim along the monitor axis:
solve time of the optimal-deployment ILP on synthetic models with 25 to
400 deployable monitors (attacks fixed at 100).  The paper reports
"within minutes" for hundreds of monitors; the HiGHS-backed solver is
expected to stay in single-digit seconds.

The benchmark times the largest instance; the table reports the series.
"""

import time

from repro.analysis.tables import render_table
from repro.casestudy import synthetic_model
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.problem import MaxUtilityProblem

from conftest import publish

MONITOR_COUNTS = [25, 50, 100, 200, 400]
ATTACKS = 100
WEIGHTS = UtilityWeights()
BUDGET_FRACTION = 0.3
MINUTES_CLAIM_SECONDS = 120.0


def make_model(monitors: int):
    return synthetic_model(
        assets=max(20, monitors // 5),
        monitors=monitors,
        attacks=ATTACKS,
        seed=7,
    )


def solve_instance(model):
    budget = Budget.fraction_of_total(model, BUDGET_FRACTION)
    return MaxUtilityProblem(model, budget, WEIGHTS).solve()


def run_series():
    rows = []
    for monitors in MONITOR_COUNTS:
        model = make_model(monitors)
        started = time.perf_counter()
        result = solve_instance(model)
        elapsed = time.perf_counter() - started
        rows.append(
            [
                monitors,
                model.stats()["events"],
                result.stats["variables"],
                result.stats["constraints"],
                len(result.deployment),
                result.utility,
                elapsed,
            ]
        )
    return rows


def test_f3_scaling_monitors(benchmark, results_dir):
    rows = run_series()
    table = render_table(
        ["#monitors", "#events", "ILP vars", "ILP rows", "#selected", "utility", "seconds"],
        rows,
        title=f"F3 — Solve time vs. #monitors (attacks fixed at {ATTACKS})",
    )
    from repro.analysis.charts import render_chart

    chart = render_chart(
        {"solve seconds": [(row[0], row[-1]) for row in rows]},
        title="F3 — solve time vs. #monitors (shape)",
        x_label="#monitors",
        y_label="seconds",
        height=10,
    )
    publish(results_dir, "f3_scaling_monitors", table + "\n\n" + chart)

    # The headline claim: hundreds of monitors within minutes.
    for row in rows:
        assert row[-1] < MINUTES_CLAIM_SECONDS, f"{row[0]} monitors took {row[-1]:.1f}s"

    # Benchmark the largest instance (model construction excluded).
    largest = make_model(MONITOR_COUNTS[-1])
    benchmark.pedantic(solve_instance, args=(largest,), rounds=1, iterations=1)
