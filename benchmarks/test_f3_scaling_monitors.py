"""F3 — Scalability in the number of monitors.

Reproduces the paper's scalability claim along the monitor axis:
solve time of the optimal-deployment ILP on synthetic models with 25 to
400 deployable monitors (attacks fixed at 100).  The paper reports
"within minutes" for hundreds of monitors; the HiGHS-backed solver is
expected to stay in single-digit seconds.

The benchmark times the largest instance; the table reports the series.
The largest instance also races the greedy heuristic's two evaluation
paths — reference full re-evaluation vs. the incremental substrate
cursor — asserting identical selections and a >=2x wall-clock speedup.
"""

import time

from repro.analysis.tables import render_table
from repro.casestudy import synthetic_model
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.greedy import solve_greedy
from repro.optimize.problem import MaxUtilityProblem

from conftest import publish, publish_json

MONITOR_COUNTS = [25, 50, 100, 200, 400]
ATTACKS = 100
WEIGHTS = UtilityWeights()
BUDGET_FRACTION = 0.3
MINUTES_CLAIM_SECONDS = 120.0


def make_model(monitors: int):
    return synthetic_model(
        assets=max(20, monitors // 5),
        monitors=monitors,
        attacks=ATTACKS,
        seed=7,
    )


def solve_instance(model):
    budget = Budget.fraction_of_total(model, BUDGET_FRACTION)
    return MaxUtilityProblem(model, budget, WEIGHTS).solve()


def run_series():
    rows = []
    for monitors in MONITOR_COUNTS:
        model = make_model(monitors)
        started = time.perf_counter()
        result = solve_instance(model)
        elapsed = time.perf_counter() - started
        rows.append(
            [
                monitors,
                model.stats()["events"],
                result.stats["variables"],
                result.stats["constraints"],
                len(result.deployment),
                result.utility,
                elapsed,
            ]
        )
    return rows


def substrate_comparison(model):
    """Greedy with and without the incremental substrate, same budget.

    Returns ``(reference seconds, incremental seconds)`` after checking
    the two paths picked the same monitors in the same order.
    """
    budget = Budget.fraction_of_total(model, BUDGET_FRACTION)
    started = time.perf_counter()
    reference = solve_greedy(model, budget, WEIGHTS, incremental=False)
    reference_seconds = time.perf_counter() - started
    started = time.perf_counter()
    incremental = solve_greedy(model, budget, WEIGHTS, incremental=True)
    incremental_seconds = time.perf_counter() - started
    assert incremental.selection_order == reference.selection_order
    assert incremental.monitor_ids == reference.monitor_ids
    assert abs(incremental.utility - reference.utility) < 1e-9
    return reference_seconds, incremental_seconds


def test_f3_scaling_monitors(benchmark, results_dir):
    rows = run_series()
    table = render_table(
        ["#monitors", "#events", "ILP vars", "ILP rows", "#selected", "utility", "seconds"],
        rows,
        title=f"F3 — Solve time vs. #monitors (attacks fixed at {ATTACKS})",
    )
    from repro.analysis.charts import render_chart

    chart = render_chart(
        {"solve seconds": [(row[0], row[-1]) for row in rows]},
        title="F3 — solve time vs. #monitors (shape)",
        x_label="#monitors",
        y_label="seconds",
        height=10,
    )
    # The headline claim: hundreds of monitors within minutes.
    for row in rows:
        assert row[-1] < MINUTES_CLAIM_SECONDS, f"{row[0]} monitors took {row[-1]:.1f}s"

    # Substrate speedup at the largest size: same greedy selections,
    # >=2x faster through the incremental cursor.
    largest = make_model(MONITOR_COUNTS[-1])
    reference_seconds, incremental_seconds = substrate_comparison(largest)
    speedup = reference_seconds / incremental_seconds
    assert speedup >= 2.0, (
        f"incremental greedy only {speedup:.1f}x faster "
        f"({reference_seconds:.2f}s vs {incremental_seconds:.2f}s)"
    )
    substrate_note = (
        f"greedy @ {MONITOR_COUNTS[-1]} monitors: reference "
        f"{reference_seconds:.3f}s, incremental {incremental_seconds:.3f}s "
        f"({speedup:.0f}x, identical selections)"
    )
    publish(results_dir, "f3_scaling_monitors", table + "\n\n" + chart + "\n\n" + substrate_note)
    publish_json(
        results_dir,
        "f3_scaling_monitors",
        {
            "experiment": "f3_scaling_monitors",
            "attacks": ATTACKS,
            "budget_fraction": BUDGET_FRACTION,
            "columns": [
                "monitors", "events", "ilp_vars", "ilp_rows",
                "selected", "utility", "solve_seconds",
            ],
            "rows": rows,
            "substrate_speedup": {
                "monitors": MONITOR_COUNTS[-1],
                "greedy_reference_seconds": reference_seconds,
                "greedy_incremental_seconds": incremental_seconds,
                "speedup": speedup,
            },
        },
    )

    # Benchmark the largest instance (model construction excluded).
    benchmark.pedantic(solve_instance, args=(largest,), rounds=1, iterations=1)


# --- Pool ablation: per-call maps vs. one persistent zero-copy pool ---

POOL_MAPS = 6
POOL_TASKS_PER_MAP = 8
POOL_WORKERS = 2


def _percall_utility(task):
    """Baseline worker entry point: the whole model rides in the task."""
    from repro.runtime.engine import engine_for

    model, deployed = task
    return engine_for(model).utility(deployed)


def _pooled_utility(task):
    """Zero-copy worker entry point: the task carries only a handle."""
    from repro.runtime.pool import attach_engine

    handle, deployed = task
    return attach_engine(handle).utility(deployed)


def _sample_deployments(model, count):
    from repro.runtime.parallel import spawn_generators

    ids = sorted(model.monitors)
    picks = []
    for rng in spawn_generators(7, count):
        keep = rng.random(len(ids)) < rng.uniform(0.2, 0.8)
        picks.append(frozenset(m for m, k in zip(ids, keep) if k))
    return picks


def test_f3_pool_ablation(results_dir):
    """Persistent zero-copy pool vs. per-call maps on the largest model.

    A study is ``POOL_MAPS`` successive parallel maps over the 400-monitor
    model.  The per-call baseline spins up a fresh executor per map and
    ships the full pickled model inside every task; the persistent path
    publishes the evaluation engine to shared memory once and sends
    zero-copy handles through one long-lived pool.  Utilities must be
    identical and the persistent path at least 2x faster end to end.
    """
    from repro.runtime.parallel import parallel_map
    from repro.runtime.pool import PersistentPool, publish_engine

    model = make_model(MONITOR_COUNTS[-1])
    picks = _sample_deployments(model, POOL_MAPS * POOL_TASKS_PER_MAP)
    maps = [
        picks[i * POOL_TASKS_PER_MAP : (i + 1) * POOL_TASKS_PER_MAP]
        for i in range(POOL_MAPS)
    ]

    started = time.perf_counter()
    baseline = [
        parallel_map(
            _percall_utility,
            [(model, deployed) for deployed in batch],
            workers=POOL_WORKERS,
        )
        for batch in maps
    ]
    baseline_seconds = time.perf_counter() - started

    started = time.perf_counter()
    with PersistentPool(workers=POOL_WORKERS) as pool:
        handle = publish_engine(model, pool)
        pooled = [
            parallel_map(
                _pooled_utility,
                [(handle, deployed) for deployed in batch],
                pool=pool,
            )
            for batch in maps
        ]
    pooled_seconds = time.perf_counter() - started

    assert pooled == baseline
    speedup = baseline_seconds / pooled_seconds
    assert speedup >= 2.0, (
        f"persistent pool only {speedup:.1f}x faster "
        f"({baseline_seconds:.2f}s vs {pooled_seconds:.2f}s)"
    )

    note = (
        f"{POOL_MAPS} maps x {POOL_TASKS_PER_MAP} tasks @ "
        f"{MONITOR_COUNTS[-1]} monitors, {POOL_WORKERS} workers: "
        f"per-call {baseline_seconds:.3f}s, persistent zero-copy "
        f"{pooled_seconds:.3f}s ({speedup:.1f}x, identical utilities)"
    )
    publish(results_dir, "f3_pool_ablation", note)
    publish_json(
        results_dir,
        "f3_pool_ablation",
        {
            "experiment": "f3_pool_ablation",
            "monitors": MONITOR_COUNTS[-1],
            "attacks": ATTACKS,
            "maps": POOL_MAPS,
            "tasks_per_map": POOL_TASKS_PER_MAP,
            "workers": POOL_WORKERS,
            "per_call_seconds": baseline_seconds,
            "persistent_seconds": pooled_seconds,
            "speedup": speedup,
            "identical_utilities": True,
        },
    )
