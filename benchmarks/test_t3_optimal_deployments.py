"""T3 — Optimal monitor deployments under representative budgets.

Reproduces the paper's central result table: for each budget level, the
cost-optimal maximum-utility deployment — which monitors are selected,
the utility achieved, its components, and the spend.  The benchmark
times one case-study ILP solve (the paper's core operation).

Expected shape: utility grows monotonically with budget and saturates;
selected monitors shift from a few network sensors with broad
visibility (tight budget) to host telemetry depth (loose budget).
"""

from repro.analysis.tables import render_table
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.problem import MaxUtilityProblem

from conftest import publish

FRACTIONS = [0.05, 0.10, 0.20, 0.40, 0.80]
WEIGHTS = UtilityWeights()


def build_table(model):
    rows = []
    details = []
    for fraction in FRACTIONS:
        budget = Budget.fraction_of_total(model, fraction)
        result = MaxUtilityProblem(model, budget, WEIGHTS).solve()
        breakdown = result.deployment.breakdown(WEIGHTS)
        rows.append(
            [
                fraction,
                len(result.deployment),
                result.utility,
                breakdown["coverage"],
                breakdown["redundancy"],
                breakdown["richness"],
                result.deployment.cost().scalarize(),
                result.solve_seconds * 1e3,
            ]
        )
        by_type = {}
        for monitor_id in result.monitor_ids:
            type_id = model.monitor(monitor_id).monitor_type_id
            by_type[type_id] = by_type.get(type_id, 0) + 1
        chosen = ", ".join(f"{t}x{n}" if n > 1 else t for t, n in sorted(by_type.items()))
        details.append(f"  budget {fraction:.2f}: {chosen or '(none)'}")

    table = render_table(
        ["budget frac", "#monitors", "utility", "cov", "red", "rich", "spend", "ms"],
        rows,
        title="T3 — Cost-optimal maximum-utility deployments",
    )
    return table + "\n\nSelected monitor types per budget:\n" + "\n".join(details), rows


def test_t3_optimal_deployments(benchmark, web_model, results_dir):
    budget = Budget.fraction_of_total(web_model, 0.20)
    benchmark(lambda: MaxUtilityProblem(web_model, budget, WEIGHTS).solve())
    text, rows = build_table(web_model)
    publish(results_dir, "t3_optimal_deployments", text)
    utilities = [row[2] for row in rows]
    assert utilities == sorted(utilities), "utility must be monotone in budget"
