"""F11 — Detector operating curve: threshold vs. detection and latency.

Extension experiment on the operational side: the evidence-accumulation
detector's threshold trades sensitivity against evidence quality.  At a
fixed optimal deployment, sweep the threshold and report detection
rate and mean detection latency, healthy and under 20% monitor outages.

Expected shape: detection rate is non-increasing in the threshold
(strictly dropping once the threshold exceeds what partial kill chains
can accumulate); latency *rises* with the threshold (more steps must
land before the verdict); outages shift the whole curve down.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.metrics.cost import Budget
from repro.optimize.problem import MaxUtilityProblem
from repro.simulation.campaign import run_campaign

from conftest import publish

THRESHOLDS = [0.2, 0.35, 0.5, 0.65, 0.8, 0.95]
BUDGET_FRACTION = 0.25
REPETITIONS = 10
SEED = 404


def run_curve(model):
    deployment = MaxUtilityProblem(
        model, Budget.fraction_of_total(model, BUDGET_FRACTION)
    ).solve().deployment

    rows = []
    for threshold in THRESHOLDS:
        healthy = run_campaign(
            model, deployment, repetitions=REPETITIONS, seed=SEED, threshold=threshold
        )
        degraded = run_campaign(
            model,
            deployment,
            repetitions=REPETITIONS,
            seed=SEED,
            threshold=threshold,
            monitor_failure_rate=0.2,
        )
        rows.append(
            [
                threshold,
                healthy.detection_rate,
                healthy.mean_detection_latency,
                degraded.detection_rate,
                degraded.mean_detection_latency,
            ]
        )
    return rows


def test_f11_detector_curve(benchmark, web_model, results_dir):
    rows = benchmark.pedantic(run_curve, args=(web_model,), rounds=1, iterations=1)
    table = render_table(
        [
            "threshold",
            "detect (healthy)",
            "latency s (healthy)",
            "detect (20% outages)",
            "latency s (outages)",
        ],
        rows,
        title=f"F11 — Detector operating curve at budget {BUDGET_FRACTION}",
    )
    publish(results_dir, "f11_detector_curve", table)

    healthy_rates = [r[1] for r in rows]
    degraded_rates = [r[3] for r in rows]
    # Sensitivity falls as the threshold rises, and strictly so overall.
    assert all(b <= a + 1e-9 for a, b in zip(healthy_rates, healthy_rates[1:]))
    assert healthy_rates[-1] < healthy_rates[0]
    # Outages never help.
    assert all(d <= h + 1e-9 for h, d in zip(healthy_rates, degraded_rates))
    # Latency rises with the threshold over detected runs (ignore NaNs at
    # thresholds where nothing is detected).
    latencies = [r[2] for r in rows if not np.isnan(r[2])]
    assert latencies[-1] > latencies[0]
