"""F12 — Kill-chain-ordered detection vs. plain evidence accumulation.

Extension experiment: correlation rules that require causal order (a
database dump only counts *after* an injection request) are stricter
than bag-of-evidence scoring.  At each budget's optimal deployment,
run the same campaigns through both detectors.

Expected shape: the sequenced detector never detects more.  The penalty
is small on this case study — reconnaissance steps are shared across
attacks, so even tight optimal deployments tend to cover them — peaks
at mid budgets where chains are covered partially, and vanishes once
the budget affords full-chain coverage.  A measurable (if modest)
penalty confirms the ordering requirement genuinely binds.
"""

from repro.analysis.tables import render_table
from repro.metrics.cost import Budget
from repro.optimize.problem import MaxUtilityProblem
from repro.simulation.campaign import run_campaign

from conftest import publish

FRACTIONS = [0.05, 0.10, 0.20, 0.40]
REPETITIONS = 10
SEED = 1234


def run_experiment(model):
    rows = []
    for fraction in FRACTIONS:
        deployment = MaxUtilityProblem(
            model, Budget.fraction_of_total(model, fraction)
        ).solve().deployment
        plain = run_campaign(model, deployment, repetitions=REPETITIONS, seed=SEED)
        sequenced = run_campaign(
            model, deployment, repetitions=REPETITIONS, seed=SEED, sequenced=True
        )
        rows.append(
            [
                fraction,
                len(deployment),
                plain.detection_rate,
                sequenced.detection_rate,
                plain.detection_rate - sequenced.detection_rate,
            ]
        )
    return rows


def test_f12_sequenced_detection(benchmark, web_model, results_dir):
    rows = benchmark.pedantic(run_experiment, args=(web_model,), rounds=1, iterations=1)
    table = render_table(
        ["budget frac", "#monitors", "unordered detect", "sequenced detect", "order penalty"],
        rows,
        title=f"F12 — Ordered vs. unordered detection ({REPETITIONS} runs/attack)",
    )
    publish(results_dir, "f12_sequenced_detection", table)

    for row in rows:
        assert row[3] <= row[2] + 1e-9, "sequenced detector can never detect more"
    # Once the budget affords full-chain coverage the penalty vanishes.
    assert rows[-1][4] <= 0.01
    # And the ordering requirement genuinely binds somewhere on the curve.
    assert any(row[4] > 0.005 for row in rows)
