"""Substrate micro-benchmarks: the primitives every experiment leans on.

Not a paper table — these pin the performance envelope of the layers
under the experiments so regressions show up where they originate
(model indexing, metric evaluation, formulation building) rather than
as mysterious slowdowns in F1–F10.
"""

import pytest

from repro.casestudy import synthetic_model
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.formulation import FormulationBuilder
from repro.runtime.cache import DeploymentCache, cached_utility
from repro.runtime.engine import EvaluationEngine, engine_for
from repro.simulation.campaign import run_campaign
from repro.optimize.deployment import Deployment
from repro.solver.model import MilpModel, ObjectiveSense

WEIGHTS = UtilityWeights()


@pytest.fixture(scope="module")
def medium_model():
    return synthetic_model(assets=30, monitors=100, attacks=50, seed=42)


@pytest.fixture(scope="module")
def half_deployment(medium_model):
    ids = sorted(medium_model.monitors)
    return frozenset(ids[::2])


def test_bench_model_construction(benchmark):
    model = benchmark(synthetic_model, assets=30, monitors=100, attacks=50, seed=42)
    assert model.stats()["monitors"] == 100


def test_bench_coverage_relation_queries(benchmark, medium_model):
    def query_all():
        return sum(
            len(medium_model.monitors_for_event(e)) for e in medium_model.events
        )

    total = benchmark(query_all)
    assert total > 0


def test_bench_utility_evaluation(benchmark, medium_model, half_deployment):
    value = benchmark(utility, medium_model, half_deployment, WEIGHTS)
    assert 0.0 <= value <= 1.0


def test_bench_formulation_build(benchmark, medium_model):
    def build():
        milp = MilpModel("bench", ObjectiveSense.MAXIMIZE)
        builder = FormulationBuilder(milp, medium_model)
        milp.set_objective(builder.utility_expression(WEIGHTS))
        builder.add_budget_constraints(Budget.fraction_of_total(medium_model, 0.3))
        return milp

    milp = benchmark(build)
    assert milp.num_variables > 100


def test_bench_standard_form_compile(benchmark, medium_model):
    milp = MilpModel("bench", ObjectiveSense.MAXIMIZE)
    builder = FormulationBuilder(milp, medium_model)
    milp.set_objective(builder.utility_expression(WEIGHTS))
    builder.add_budget_constraints(Budget.fraction_of_total(medium_model, 0.3))
    form = benchmark(milp.compile)
    assert form.num_variables == milp.num_variables


def test_bench_engine_build(benchmark, medium_model):
    engine = benchmark(EvaluationEngine, medium_model)
    assert len(engine.monitor_ids) == 100


def test_bench_engine_full_evaluation(benchmark, medium_model, half_deployment):
    engine = engine_for(medium_model)
    value = benchmark(engine.utility, half_deployment, WEIGHTS)
    assert 0.0 <= value <= 1.0
    assert value == pytest.approx(utility(medium_model, half_deployment, WEIGHTS), abs=1e-9)


def test_bench_cursor_peek_add(benchmark, medium_model, half_deployment):
    cursor = engine_for(medium_model).cursor(WEIGHTS, initial=half_deployment)
    candidate = next(m for m in sorted(medium_model.monitors) if m not in cursor)
    value = benchmark(cursor.peek_add, candidate)
    assert value >= cursor.utility()


def test_bench_cached_utility_hit(benchmark, medium_model, half_deployment):
    cache = DeploymentCache(64)
    cached_utility(medium_model, half_deployment, WEIGHTS, cache=cache)  # warm

    value = benchmark(cached_utility, medium_model, half_deployment, WEIGHTS, cache=cache)
    assert 0.0 <= value <= 1.0
    assert cache.hits >= 1


def test_bench_campaign_simulation(benchmark, medium_model, half_deployment):
    deployment = Deployment.of(medium_model, half_deployment)
    result = benchmark.pedantic(
        run_campaign,
        args=(medium_model, deployment),
        kwargs={"repetitions": 2, "seed": 0},
        rounds=2,
        iterations=1,
    )
    assert len(result.runs) == 2 * len(medium_model.attacks)
