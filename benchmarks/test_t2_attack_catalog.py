"""T2 — Attack catalog: common attacks on Web servers with their steps.

Reproduces the paper's attack-model table: each attack, its importance,
its steps (events and locations), and how many monitors can evidence
each step.  The benchmark times the full coverage-relation queries the
table needs across every attack.
"""

from repro.analysis.tables import render_table

from conftest import publish


def build_attack_table(model) -> str:
    rows = []
    for attack in model.attacks.values():
        for index, step in enumerate(attack.steps):
            event = model.event(step.event_id)
            providers = model.monitors_for_event(step.event_id)
            rows.append(
                [
                    attack.attack_id if index == 0 else "",
                    attack.importance if index == 0 else "",
                    f"{index + 1}. {event.name}",
                    event.asset_id,
                    "req" if step.required else "opt",
                    len(providers),
                ]
            )
    return render_table(
        ["attack", "imp", "step", "asset", "kind", "#monitors"],
        rows,
        title="T2 — Attack catalog with per-step evidencing monitor counts",
    )


def census(model):
    return {
        attack_id: [
            len(model.monitors_for_event(step.event_id))
            for step in model.attack(attack_id).steps
        ]
        for attack_id in model.attacks
    }


def test_t2_attack_catalog(benchmark, web_model, results_dir):
    step_census = benchmark(census, web_model)
    publish(results_dir, "t2_attack_catalog", build_attack_table(web_model))
    # Every step of every attack must be evidencable by at least one monitor.
    assert all(all(n > 0 for n in counts) for counts in step_census.values())
