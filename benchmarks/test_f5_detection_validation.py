"""F5 — Operational validation: simulated detection vs. predicted utility.

The static utility metric is only meaningful if higher-utility
deployments actually detect and reconstruct more attacks.  This
experiment takes the optimal deployments along the F1 budget sweep and
runs each through the attack-campaign simulation (monitors miss events
per their quality; a realized-coverage detector raises verdicts).

Expected shape: simulated detection rate and forensic completeness
increase monotonically (modulo sampling noise) with model-predicted
utility, validating the metric's ordering.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.problem import MaxUtilityProblem
from repro.simulation.campaign import run_campaign

from conftest import publish

FRACTIONS = [0.02, 0.05, 0.10, 0.20, 0.40, 0.80]
WEIGHTS = UtilityWeights()
REPETITIONS = 10
SEED = 2016


def run_experiment(model):
    rows = []
    for fraction in FRACTIONS:
        budget = Budget.fraction_of_total(model, fraction)
        result = MaxUtilityProblem(model, budget, WEIGHTS).solve()
        campaign = run_campaign(
            model, result.deployment, repetitions=REPETITIONS, seed=SEED
        )
        rows.append(
            [
                fraction,
                len(result.deployment),
                result.utility,
                campaign.detection_rate,
                campaign.mean_detection_latency,
                campaign.mean_step_completeness,
                campaign.mean_field_completeness,
            ]
        )
    return rows


def test_f5_detection_validation(benchmark, web_model, results_dir):
    rows = benchmark.pedantic(run_experiment, args=(web_model,), rounds=1, iterations=1)
    table = render_table(
        [
            "budget frac",
            "#monitors",
            "predicted utility",
            "detection rate",
            "latency (s)",
            "step compl.",
            "field compl.",
        ],
        rows,
        title=f"F5 — Simulated campaigns ({REPETITIONS} runs/attack, seed {SEED})",
    )
    from repro.analysis.charts import render_chart

    chart = render_chart(
        {
            "predicted utility": [(r[0], r[2]) for r in rows],
            "simulated detection": [(r[0], r[3]) for r in rows],
            "field completeness": [(r[0], r[6]) for r in rows],
        },
        title="F5 — prediction vs. simulation (curve shape)",
        x_label="budget fraction",
        y_label="value",
    )
    publish(results_dir, "f5_detection_validation", table + "\n\n" + chart)

    utilities = np.array([r[2] for r in rows])
    detection = np.array([r[3] for r in rows])
    completeness = np.array([r[5] for r in rows])
    # Predicted utility must rank operational outcomes: strong positive
    # rank correlation between utility and both simulated qualities.
    assert np.all(np.diff(utilities) >= -1e-9)
    corr_detect = np.corrcoef(utilities, detection)[0, 1]
    corr_complete = np.corrcoef(utilities, completeness)[0, 1]
    assert corr_detect > 0.8, f"utility/detection correlation too weak: {corr_detect:.2f}"
    assert corr_complete > 0.8, f"utility/completeness correlation too weak: {corr_complete:.2f}"
    # The extremes must behave: near-zero budget detects little, large
    # budget detects nearly everything.
    assert detection[0] < 0.5
    assert detection[-1] > 0.9
