"""F2 — Coverage/redundancy trade-off under the utility weighting.

Reproduces the metric-weighting figure: at a fixed budget, sweep the
trade-off parameter λ from pure coverage (λ=0) to pure redundancy
(λ=1) and report how the optimal deployment's components and
composition shift.  The benchmark times the full λ sweep.

Expected shape: achieved coverage falls and achieved redundancy rises
as λ grows — optimal deployments move from *breadth* (one monitor per
step, many steps) to *depth* (multiple corroborating monitors on the
highest-weight steps); the monitor set changes along the way
(similarity to the λ=0 optimum decays).
"""

from repro.analysis.sensitivity import jaccard
from repro.analysis.tables import render_table
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.problem import MaxUtilityProblem

from conftest import publish

LAMBDAS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
BUDGET_FRACTION = 0.15


def run_sweep(model):
    budget = Budget.fraction_of_total(model, BUDGET_FRACTION)
    points = []
    for lam in LAMBDAS:
        weights = UtilityWeights.tradeoff(lam)
        result = MaxUtilityProblem(model, budget, weights).solve()
        breakdown = result.deployment.breakdown(weights)
        points.append((lam, result, breakdown))
    return points


def build_table(points):
    baseline_ids = points[0][1].monitor_ids
    rows = [
        [
            lam,
            len(result.deployment),
            breakdown["coverage"],
            breakdown["redundancy"],
            result.utility,
            jaccard(result.monitor_ids, baseline_ids),
        ]
        for lam, result, breakdown in points
    ]
    return render_table(
        ["lambda", "#monitors", "coverage", "redundancy", "utility", "sim. to λ=0"],
        rows,
        title=f"F2 — Coverage/redundancy trade-off at budget {BUDGET_FRACTION:.2f}",
    )


def test_f2_weight_tradeoff(benchmark, web_model, results_dir):
    points = benchmark.pedantic(run_sweep, args=(web_model,), rounds=1, iterations=1)
    publish(results_dir, "f2_weight_tradeoff", build_table(points))

    coverages = [b["coverage"] for _, _, b in points]
    redundancies = [b["redundancy"] for _, _, b in points]
    # End-to-end shift: the pure-redundancy optimum trades coverage away.
    assert coverages[0] >= coverages[-1]
    assert redundancies[-1] >= redundancies[0]
    # The λ=0 optimum maximizes coverage; λ=1 maximizes redundancy.
    assert coverages[0] == max(coverages)
    assert redundancies[-1] == max(redundancies)
