"""F7 — Solver ablation: exact backends and heuristics head-to-head.

The methodology needs *an* exact solver, not a specific one.  This
experiment solves identical case-study and synthetic instances with the
HiGHS backend, the from-scratch branch-and-bound, and the heuristics,
comparing solution quality and wall-clock time.

Expected shape: both exact backends return the same optimal utility
(agreement is asserted); HiGHS is markedly faster on the larger
instance; greedy is near-optimal at a fraction of the cost; random
trails everything.
"""

import time

from repro.analysis.tables import render_table
from repro.casestudy import synthetic_model
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.greedy import solve_greedy
from repro.optimize.problem import MaxUtilityProblem
from repro.optimize.random_search import solve_random

from conftest import publish

WEIGHTS = UtilityWeights()
BUDGET_FRACTION = 0.25


def instances(web_model):
    return [
        ("case-study", web_model),
        ("synthetic-40m", synthetic_model(assets=12, monitors=40, attacks=30, seed=5)),
    ]


def run_matrix(web_model):
    rows = []
    agreement = []
    for name, model in instances(web_model):
        budget = Budget.fraction_of_total(model, BUDGET_FRACTION)
        methods = {}

        for backend in ("scipy", "branch-and-bound"):
            started = time.perf_counter()
            result = MaxUtilityProblem(model, budget, WEIGHTS).solve(backend)
            elapsed = time.perf_counter() - started
            methods[backend] = result
            rows.append([name, f"ilp/{backend}", result.utility, result.optimal, elapsed])

        started = time.perf_counter()
        greedy = solve_greedy(model, budget, WEIGHTS)
        rows.append([name, "greedy", greedy.utility, False, time.perf_counter() - started])

        started = time.perf_counter()
        random_best = solve_random(model, budget, WEIGHTS, samples=30, seed=1)
        rows.append([name, "random", random_best.utility, False, time.perf_counter() - started])

        agreement.append(
            abs(methods["scipy"].utility - methods["branch-and-bound"].utility)
        )
        assert greedy.utility <= methods["scipy"].utility + 1e-9
        assert random_best.utility <= methods["scipy"].utility + 1e-9
    return rows, agreement


def test_f7_solver_ablation(benchmark, web_model, results_dir):
    rows, agreement = benchmark.pedantic(
        run_matrix, args=(web_model,), rounds=1, iterations=1
    )
    table = render_table(
        ["instance", "method", "utility", "proven optimal", "seconds"],
        rows,
        precision=4,
        title=f"F7 — Solver comparison at budget fraction {BUDGET_FRACTION}",
    )
    publish(results_dir, "f7_solver_ablation", table)
    assert all(gap < 1e-6 for gap in agreement), "exact backends disagree"
