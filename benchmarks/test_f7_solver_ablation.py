"""F7 — Solver ablation: exact backends and heuristics head-to-head.

The methodology needs *an* exact solver, not a specific one.  This
experiment solves identical case-study and synthetic instances with the
HiGHS backend, the from-scratch branch-and-bound, and the heuristics,
comparing solution quality and wall-clock time.

Expected shape: both exact backends return the same optimal utility
(agreement is asserted); HiGHS is markedly faster on the larger
instance; greedy is near-optimal at a fraction of the cost; random
trails everything.
"""

import time

from repro.analysis.tables import render_table
from repro.casestudy import synthetic_model
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.greedy import solve_greedy
from repro.optimize.pareto import budget_sweep
from repro.optimize.problem import MaxUtilityProblem
from repro.optimize.random_search import solve_random

from conftest import publish, publish_json

WEIGHTS = UtilityWeights()
BUDGET_FRACTION = 0.25


def instances(web_model):
    return [
        ("case-study", web_model),
        ("synthetic-40m", synthetic_model(assets=12, monitors=40, attacks=30, seed=5)),
    ]


def run_matrix(web_model):
    rows = []
    agreement = []
    for name, model in instances(web_model):
        budget = Budget.fraction_of_total(model, BUDGET_FRACTION)
        methods = {}

        for backend in ("scipy", "branch-and-bound"):
            started = time.perf_counter()
            result = MaxUtilityProblem(model, budget, WEIGHTS).solve(backend)
            elapsed = time.perf_counter() - started
            methods[backend] = result
            rows.append([name, f"ilp/{backend}", result.utility, result.optimal, elapsed])

        started = time.perf_counter()
        greedy = solve_greedy(model, budget, WEIGHTS)
        rows.append([name, "greedy", greedy.utility, False, time.perf_counter() - started])

        started = time.perf_counter()
        random_best = solve_random(model, budget, WEIGHTS, samples=30, seed=1)
        rows.append([name, "random", random_best.utility, False, time.perf_counter() - started])

        agreement.append(
            abs(methods["scipy"].utility - methods["branch-and-bound"].utility)
        )
        assert greedy.utility <= methods["scipy"].utility + 1e-9
        assert random_best.utility <= methods["scipy"].utility + 1e-9
    return rows, agreement


def test_f7_solver_ablation(benchmark, web_model, results_dir):
    rows, agreement = benchmark.pedantic(
        run_matrix, args=(web_model,), rounds=1, iterations=1
    )
    table = render_table(
        ["instance", "method", "utility", "proven optimal", "seconds"],
        rows,
        precision=4,
        title=f"F7 — Solver comparison at budget fraction {BUDGET_FRACTION}",
    )
    publish(results_dir, "f7_solver_ablation", table)
    assert all(gap < 1e-6 for gap in agreement), "exact backends disagree"


# F3-scale sweep for the presolve+session ablation (assets/monitors/
# attacks/seed match benchmarks/test_f3_scaling_monitors.py at its
# largest point).  The fractions sample the post-knee region where the
# per-point formulation cost — the part sessions amortize — is a large
# share of wall time; very tight budgets degenerate into multi-second
# HiGHS solves that are identical under both configurations and only
# dilute the comparison.
SWEEP_FRACTIONS = [round(0.45 + 0.45 * i / 19, 4) for i in range(20)]


def run_sweep_pair(model):
    started = time.perf_counter()
    cold = budget_sweep(model, SWEEP_FRACTIONS, workers=1)
    cold_seconds = time.perf_counter() - started
    started = time.perf_counter()
    warm = budget_sweep(model, SWEEP_FRACTIONS, workers=1, presolve=True)
    warm_seconds = time.perf_counter() - started
    return cold, cold_seconds, warm, warm_seconds


def test_f7_presolve_session_sweep(benchmark, results_dir):
    """Warm sessions beat cold solves ≥2x on an F3-scale sweep, bit-identically.

    ``presolve=True`` on a serial sweep upgrades to a
    :class:`~repro.solver.session.SolveSession` plus a shared
    :class:`~repro.optimize.family.ProblemFamily` core.  Both are exact
    accelerations, so every point's objective and chosen deployment
    must equal the cold solve's *bit for bit* — asserted below — while
    the sweep as a whole runs at least twice as fast.
    """
    model = synthetic_model(assets=80, monitors=400, attacks=100, seed=7)
    cold, cold_seconds, warm, warm_seconds = benchmark.pedantic(
        run_sweep_pair, args=(model,), rounds=1, iterations=1
    )

    for c, w in zip(cold, warm):
        assert w.result.deployment.monitor_ids == c.result.deployment.monitor_ids, (
            f"warm sweep chose a different deployment at fraction {c.fraction}"
        )
        assert w.result.objective == c.result.objective, (
            f"warm objective drifted at fraction {c.fraction}: "
            f"{w.result.objective!r} != {c.result.objective!r}"
        )

    speedup = cold_seconds / warm_seconds
    rows = [
        ["cold (per-point build + solve)", cold_seconds, 1.0],
        ["warm (session + shared family core)", warm_seconds, speedup],
    ]
    table = render_table(
        ["configuration", "sweep seconds", "speedup"],
        rows,
        precision=4,
        title=f"F7b — Presolve+session sweep, {len(SWEEP_FRACTIONS)} budgets, 400 monitors",
    )
    publish(results_dir, "f7_presolve_session_sweep", table)
    publish_json(
        results_dir,
        "f7_presolve_session_sweep",
        {
            "fractions": SWEEP_FRACTIONS,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
            "cold_point_seconds": [p.result.solve_seconds for p in cold],
            "warm_point_seconds": [p.result.solve_seconds for p in warm],
        },
    )
    assert speedup >= 2.0, (
        f"warm sweep only {speedup:.2f}x faster ({warm_seconds:.2f}s vs {cold_seconds:.2f}s)"
    )


def test_f7_session_node_guard(benchmark, results_dir):
    """Warm branch-and-bound explores no more nodes than cold solves.

    A *descending* sweep makes every point a tightening of the last, so
    the session hands branch-and-bound the previous proven optimum as a
    dual bound; with the seeded incumbent this can only prune.  The
    warm incumbent's objective is summed in a different order than the
    cold LP dot product, so objectives here match to tolerance rather
    than bit-for-bit (the scipy sweep above asserts strict equality).
    """
    model = synthetic_model(assets=12, monitors=40, attacks=30, seed=5)
    fractions = [0.5, 0.45, 0.4, 0.35, 0.3, 0.25, 0.2]

    def run_pair():
        cold = budget_sweep(model, fractions, workers=1, backend="branch-and-bound")
        warm = budget_sweep(
            model, fractions, workers=1, backend="branch-and-bound", presolve=True
        )
        return cold, warm

    cold, warm = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    cold_nodes = sum(p.result.stats["nodes"] for p in cold)
    warm_nodes = sum(p.result.stats["nodes"] for p in warm)
    for c, w in zip(cold, warm):
        assert w.result.deployment.monitor_ids == c.result.deployment.monitor_ids
        assert abs(w.result.objective - c.result.objective) <= 1e-9
    publish_json(
        results_dir,
        "f7_session_node_guard",
        {
            "fractions": fractions,
            "cold_nodes": [p.result.stats["nodes"] for p in cold],
            "warm_nodes": [p.result.stats["nodes"] for p in warm],
            "cold_total": cold_nodes,
            "warm_total": warm_nodes,
        },
    )
    assert warm_nodes <= cold_nodes, (
        f"warm branch-and-bound explored more nodes ({warm_nodes} > {cold_nodes})"
    )
