"""F9 — Cross-domain generality: the methodology on a SCADA substation.

Extension experiment (not in the paper, but in the authors' follow-up
domain): the identical model/metrics/ILP pipeline applied to an
electrical-substation SCADA system with IT/OT segmentation and
constrained field devices.  Reports the budget sweep and the monitors
the optimum buys first.

Expected shape: the same qualitative behavior as the Web case study —
concave utility curve, ILP ≥ greedy — with a domain twist: network
(protocol-level) sensors and the relay/control audit logs dominate
early picks because field hosts cannot carry rich telemetry.
"""

from repro.analysis.tables import render_table
from repro.casestudy import scada_substation
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.greedy import solve_greedy
from repro.optimize.pareto import budget_sweep, heuristic_sweep
from repro.optimize.problem import MaxUtilityProblem

from conftest import publish

FRACTIONS = [0.05, 0.10, 0.20, 0.30, 0.50, 0.80]
WEIGHTS = UtilityWeights()


def run_experiment():
    model = scada_substation()
    optimal = budget_sweep(model, FRACTIONS, WEIGHTS)
    greedy = heuristic_sweep(model, FRACTIONS, solve_greedy, WEIGHTS)
    rows = [
        [o.fraction, len(o.result.deployment), o.utility, g.utility]
        for o, g in zip(optimal, greedy)
    ]
    first_picks = MaxUtilityProblem(
        model, Budget.fraction_of_total(model, 0.10), WEIGHTS
    ).solve()
    return model, rows, sorted(first_picks.monitor_ids)


def test_f9_scada_generality(benchmark, results_dir):
    model, rows, first_picks = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = render_table(
        ["budget frac", "#monitors", "ILP utility", "greedy utility"],
        rows,
        title="F9 — SCADA substation: utility vs. budget",
    )
    picks = "First monitors bought (10% budget):\n" + "\n".join(
        f"  {m}" for m in first_picks
    )
    publish(results_dir, "f9_scada_generality", table + "\n\n" + picks)

    utilities = [row[2] for row in rows]
    assert utilities == sorted(utilities)
    assert all(row[3] <= row[2] + 1e-9 for row in rows)
    # Domain twist: at a 10% budget at least one network-scoped sensor
    # is selected (field hosts are telemetry-poor).
    network_picks = [
        m
        for m in first_picks
        if model.monitor_type(model.monitor(m).monitor_type_id).scope.value == "network"
    ]
    assert network_picks, "expected early network-sensor picks on the SCADA model"
