"""Shared fixtures and helpers for the experiment benchmarks.

Every file in this directory regenerates one table (T*) or figure (F*)
of the reconstructed evaluation suite (see DESIGN.md) and prints the
rows the paper-style experiment reports.  Run with::

    pytest benchmarks/ --benchmark-only

Printed output appears in the captured-output section of failing tests
or with ``-s``; every experiment also appends its rendered table to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.casestudy import enterprise_web_service

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def web_model():
    """The enterprise Web service case study (shared across benches)."""
    return enterprise_web_service()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, experiment: str, text: str) -> None:
    """Print an experiment's output and persist it under results/."""
    banner = f"\n=== {experiment} ===\n"
    print(banner + text)
    (results_dir / f"{experiment}.txt").write_text(text + "\n")


def publish_json(results_dir: Path, experiment: str, payload: dict) -> None:
    """Persist an experiment's machine-readable results under results/.

    Written alongside the rendered ``.txt`` table so wall-clock series
    can be diffed/plotted across runs without re-parsing tables.
    """
    path = results_dir / f"{experiment}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session", autouse=True)
def registry_snapshot():
    """Persist the ambient metrics registry after the benchmark session.

    Every solver/engine/cache/simulation call in the session increments
    the ambient registry; dumping it once at teardown gives a free
    aggregate view (solve-time histograms, cache hit rates, node
    counts) next to the per-experiment JSON.  ``repro stats
    benchmarks/results/registry_snapshot.json`` renders it.
    """
    from repro import obs

    obs.registry().reset()
    yield
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "registry_snapshot.json"
    path.write_text(json.dumps(obs.registry().snapshot(), indent=2, sort_keys=True) + "\n")
