"""F8 — Failure robustness: why the redundancy term earns its weight.

Extension experiment pairing the static robustness analysis with
campaign failure injection.  Two optimal deployments at the same budget
— one maximizing the full utility (with redundancy), one coverage-only
— face monitor outages:

* statically: worst-case utility after an adversary disables k monitors
  (`repro.analysis.robustness`);
* operationally: simulated detection rate when each monitor is down per
  run with probability p (`run_campaign(monitor_failure_rate=...)`).

Expected shape: at failure rate 0 the coverage-only deployment can
match or beat the redundancy-aware one *on coverage*; as failures rise,
the redundancy-aware deployment's detection rate degrades more slowly,
crossing over — corroboration is insurance, and this experiment prices
it.
"""

from repro.analysis.robustness import worst_case_utility
from repro.analysis.tables import render_table
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.problem import MaxUtilityProblem
from repro.simulation.campaign import run_campaign

from conftest import publish

BUDGET_FRACTION = 0.25
FAILURE_RATES = [0.0, 0.1, 0.25, 0.5]
COVERAGE_ONLY = UtilityWeights.coverage_only()
REDUNDANCY_HEAVY = UtilityWeights(coverage=0.5, redundancy=0.5, richness=0.0)
REPETITIONS = 10
SEED = 88


def build_deployments(model):
    budget = Budget.fraction_of_total(model, BUDGET_FRACTION)
    breadth = MaxUtilityProblem(model, budget, COVERAGE_ONLY).solve().deployment
    depth = MaxUtilityProblem(model, budget, REDUNDANCY_HEAVY).solve().deployment
    return breadth, depth


def run_experiment(model):
    breadth, depth = build_deployments(model)

    operational_rows = []
    for rate in FAILURE_RATES:
        breadth_campaign = run_campaign(
            model, breadth, repetitions=REPETITIONS, seed=SEED, monitor_failure_rate=rate
        )
        depth_campaign = run_campaign(
            model, depth, repetitions=REPETITIONS, seed=SEED, monitor_failure_rate=rate
        )
        operational_rows.append(
            [
                rate,
                breadth_campaign.detection_rate,
                depth_campaign.detection_rate,
                depth_campaign.detection_rate - breadth_campaign.detection_rate,
            ]
        )

    static_rows = []
    for k in (0, 1, 2, 3):
        breadth_worst, _ = worst_case_utility(model, breadth, k, COVERAGE_ONLY)
        depth_worst, _ = worst_case_utility(model, depth, k, COVERAGE_ONLY)
        static_rows.append([k, breadth_worst, depth_worst])

    return breadth, depth, operational_rows, static_rows


def test_f8_failure_robustness(benchmark, web_model, results_dir):
    breadth, depth, operational_rows, static_rows = benchmark.pedantic(
        run_experiment, args=(web_model,), rounds=1, iterations=1
    )
    operational = render_table(
        ["failure rate", "coverage-only detect", "redundancy-aware detect", "advantage"],
        operational_rows,
        title=(
            f"F8a — Simulated detection under per-run monitor failures "
            f"(budget {BUDGET_FRACTION}, {len(breadth)} vs {len(depth)} monitors)"
        ),
    )
    static = render_table(
        ["k disabled", "coverage-only worst-case cov.", "redundancy-aware worst-case cov."],
        static_rows,
        title="F8b — Static worst-case coverage after targeted disabling",
    )
    publish(results_dir, "f8_failure_robustness", operational + "\n\n" + static)

    # At zero failures the breadth deployment maximizes coverage by
    # construction; under heavy failures the depth deployment must hold
    # up at least as well (the insurance pays out).
    zero_rate = operational_rows[0]
    heavy_rate = operational_rows[-1]
    assert zero_rate[1] >= zero_rate[2] - 0.05
    assert heavy_rate[2] >= heavy_rate[1] - 1e-9
    # Advantage of redundancy must grow with the failure rate overall.
    assert operational_rows[-1][3] >= operational_rows[0][3] - 1e-9
    # Static story: by k=2 the redundancy-aware deployment retains at
    # least as much coverage.
    assert static_rows[2][2] >= static_rows[2][1] - 1e-9
