"""F13 — Solve-service throughput under seeded mixed-tenant load.

Drives :mod:`repro.service` with the load generator's sweep-heavy
traffic mix on an F3-scale synthetic model (100 monitors), after a
warmup phase so families, sessions, and result caches are in their
steady state.  The headline claims pinned here:

* sustained throughput of at least 1000 delivered solve answers per
  minute on warm families (a sweep of N fractions delivers N);
* a warm hit rate of at least 50% on the sweep-heavy mix — the
  digest-keyed caches, not raw solver speed, carry repeat traffic;
* p50/p99 end-to-end job latency recorded to the committed JSON
  artifact so regressions show up in review, not in production.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.casestudy import synthetic_model
from repro.service import ServiceConfig
from repro.service.loadgen import generate_load

from conftest import publish, publish_json

MONITORS = 100
ATTACKS = 50
MODEL_SEED = 7
TRAFFIC_SEED = 13
JOBS = 100
WARMUP = 25
TENANTS = 4
WORKERS = 4

MIN_SOLVES_PER_MINUTE = 1000.0
MIN_HIT_RATE = 0.5


def test_f13_service_throughput(results_dir):
    model = synthetic_model(monitors=MONITORS, attacks=ATTACKS, seed=MODEL_SEED)
    report = generate_load(
        model,
        jobs=JOBS,
        tenants=TENANTS,
        seed=TRAFFIC_SEED,
        warmup=WARMUP,
        config=ServiceConfig(workers=WORKERS),
    )

    assert report.failed == 0
    assert report.completed == JOBS
    assert report.solves_per_minute >= MIN_SOLVES_PER_MINUTE, (
        f"only {report.solves_per_minute:.0f} solves/min "
        f"(target {MIN_SOLVES_PER_MINUTE:.0f})"
    )
    assert report.hit_rate >= MIN_HIT_RATE, (
        f"warm hit rate {report.hit_rate:.2f} below {MIN_HIT_RATE:.2f}"
    )

    table = render_table(
        ["jobs", "solve units", "wall s", "solves/min", "p50 s", "p99 s", "hit rate"],
        [
            [
                report.jobs,
                report.solve_units,
                report.wall_seconds,
                report.solves_per_minute,
                report.p50_seconds,
                report.p99_seconds,
                report.hit_rate,
            ]
        ],
        title=(
            f"F13 — service throughput ({MONITORS} monitors, {TENANTS} tenants, "
            f"{WORKERS} workers, warmup {WARMUP})"
        ),
    )
    answered = (
        f"answered: {report.executed_jobs} executed, {report.cached} result-cache, "
        f"{report.deduped} dedup-joined; {report.rejections} rejections"
    )
    publish(results_dir, "f13_service_throughput", table + "\n\n" + answered)
    publish_json(
        results_dir,
        "f13_service_throughput",
        {
            "experiment": "f13_service_throughput",
            "model": {"monitors": MONITORS, "attacks": ATTACKS, "seed": MODEL_SEED},
            "traffic": {
                "jobs": JOBS,
                "warmup": WARMUP,
                "tenants": TENANTS,
                "seed": TRAFFIC_SEED,
            },
            "workers": WORKERS,
            "targets": {
                "min_solves_per_minute": MIN_SOLVES_PER_MINUTE,
                "min_hit_rate": MIN_HIT_RATE,
            },
            "report": report.to_dict(),
        },
    )
