"""F14 — Catalog scale: thousands of monitors in seconds.

The sparse end-to-end core's headline experiment, on zone-structured
synthetic catalogs (multizone topology, zone-correlated costs).  Three
claims pinned here:

* **Scale** — the 2000-monitor / 500-attack catalog, whose standard
  form is ~58M cells (a ~466 MB dense image before copies), compiles
  to a sub-megabyte CSR and solves to proven optimality in seconds on
  the production backend.  The presolve dominated-monitor rule
  collapses hundreds of near-duplicate placements first.
* **Dense guard** — that same formulation is past
  :data:`~repro.solver.model.MAX_DENSE_CELLS`, so ``compile(dense=True)``
  refuses with a pointer at the sparse default instead of thrashing
  the allocator.
* **Speedup** — at the largest dense-completable size (2000 monitors /
  300 attacks: 24.4M cells, just under the limit) the branch-and-bound
  exact solve runs >=5x faster through CSR than through the dense path
  it replaced — identical node sequence, bit-identical objective, only
  the per-node matrix handling differs (measured ~9x).
"""

from __future__ import annotations

import time

from repro import obs
from repro.analysis.tables import render_table
from repro.casestudy.scaling import ScalingConfig, synthetic_model
from repro.errors import SolverError
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.problem import MaxUtilityProblem
from repro.solver import presolve
from repro.solver.branch_and_bound import solve_branch_and_bound
from repro.solver.model import MAX_DENSE_CELLS

from conftest import publish, publish_json

WEIGHTS = UtilityWeights()
ZONES = 8
MODEL_SEED = 5

#: The headline instance: past the dense cell limit, sparse-only.
SCALE_MONITORS, SCALE_ATTACKS = 2000, 500
SCALE_BUDGET_FRACTION = 0.35
CATALOG_CLAIM_SECONDS = 30.0  # "in seconds"; measured ~1s on the dev box

#: The speedup instance: the largest dense-completable size.  At
#: budget fraction 0.34 branch & bound explores a real (14-node) tree
#: and still terminates, so the sparse/dense race does identical work.
RACE_MONITORS, RACE_ATTACKS = 2000, 300
RACE_BUDGET_FRACTION = 0.34
MIN_SPEEDUP = 5.0


def catalog(monitors: int, attacks: int):
    return synthetic_model(
        ScalingConfig(
            assets=300,
            monitor_types=20,
            monitors=monitors,
            attacks=attacks,
            seed=MODEL_SEED,
            topology="multizone",
            zones=ZONES,
        )
    )


def build_milp(model, fraction: float):
    problem = MaxUtilityProblem(
        model, Budget.fraction_of_total(model, fraction), WEIGHTS
    )
    milp, _ = problem.build()
    return problem, milp


def test_f14_catalog_scale(results_dir):
    # --- scale: 2000 monitors / 500 attacks, sparse-only territory ----
    scale_model = catalog(SCALE_MONITORS, SCALE_ATTACKS)
    problem, milp = build_milp(scale_model, SCALE_BUDGET_FRACTION)

    form = milp.compile()
    rows, cols = form.A_ub.shape
    cells = rows * cols
    sparse_nbytes = int(obs.gauge("solver.matrix.nbytes").value)
    dense_nbytes = int(obs.gauge("solver.matrix.dense_nbytes").value)
    assert cells > MAX_DENSE_CELLS  # past the guard: sparse-only
    with_raises = False
    try:
        milp.compile(dense=True)
    except SolverError:
        with_raises = True
    assert with_raises, "dense compile must refuse past MAX_DENSE_CELLS"

    started = time.perf_counter()
    result = problem.solve("scipy")
    scale_seconds = time.perf_counter() - started
    assert result.optimal
    assert scale_seconds < CATALOG_CLAIM_SECONDS, (
        f"catalog solve took {scale_seconds:.1f}s "
        f"(claim: seconds, limit {CATALOG_CLAIM_SECONDS:.0f}s)"
    )

    # The dominated-monitor collapse: zone-correlated costs make many
    # placements provably droppable before any branching happens.
    reduction = presolve(milp)
    assert reduction.stats.dominated_columns > 0

    # --- speedup: the largest dense-completable size -------------------
    race_model = catalog(RACE_MONITORS, RACE_ATTACKS)
    _, race_milp = build_milp(race_model, RACE_BUDGET_FRACTION)
    race_form = race_milp.compile()
    race_cells = race_form.A_ub.shape[0] * race_form.A_ub.shape[1]
    assert race_cells < MAX_DENSE_CELLS  # dense still completes here

    started = time.perf_counter()
    via_sparse = solve_branch_and_bound(race_milp)
    sparse_seconds = time.perf_counter() - started
    started = time.perf_counter()
    via_dense = solve_branch_and_bound(race_milp, dense=True)
    dense_seconds = time.perf_counter() - started

    # Identical work, bit-identical answer: the race times the matrix
    # handling, nothing else.
    assert via_sparse.status is via_dense.status
    assert via_sparse.objective == via_dense.objective
    assert via_sparse.values == via_dense.values
    assert via_sparse.nodes_explored == via_dense.nodes_explored
    speedup = dense_seconds / sparse_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"sparse only {speedup:.1f}x faster "
        f"({dense_seconds:.2f}s vs {sparse_seconds:.2f}s)"
    )

    table = render_table(
        ["instance", "rows", "vars", "cells", "CSR bytes", "dense bytes", "seconds"],
        [
            [
                f"{SCALE_MONITORS}m/{SCALE_ATTACKS}a (sparse-only)",
                rows,
                cols,
                cells,
                sparse_nbytes,
                dense_nbytes,
                scale_seconds,
            ],
            [
                f"{RACE_MONITORS}m/{RACE_ATTACKS}a sparse B&B",
                race_form.A_ub.shape[0],
                race_form.A_ub.shape[1],
                race_cells,
                "-",
                "-",
                sparse_seconds,
            ],
            [
                f"{RACE_MONITORS}m/{RACE_ATTACKS}a dense B&B",
                race_form.A_ub.shape[0],
                race_form.A_ub.shape[1],
                race_cells,
                "-",
                "-",
                dense_seconds,
            ],
        ],
        title="F14 — Catalog scale: 2000-monitor exact solves",
    )
    notes = (
        f"catalog solve: {result.stats['variables']} vars OPTIMAL in "
        f"{scale_seconds:.2f}s; CSR {sparse_nbytes:,} bytes vs "
        f"{dense_nbytes:,} dense-equivalent "
        f"({1 - sparse_nbytes / dense_nbytes:.1%} saved); dense compile refuses\n"
        f"presolve collapse: {reduction.stats.dominated_columns} dominated "
        f"placements of {reduction.stats.columns_before} columns\n"
        f"B&B race @ largest dense-completable size: {speedup:.1f}x "
        f"({dense_seconds:.2f}s dense vs {sparse_seconds:.2f}s sparse, "
        f"{via_sparse.nodes_explored} identical nodes, bit-identical objective)"
    )
    publish(results_dir, "f14_catalog_scale", table + "\n\n" + notes)
    publish_json(
        results_dir,
        "f14_catalog_scale",
        {
            "experiment": "f14_catalog_scale",
            "max_dense_cells": MAX_DENSE_CELLS,
            "scale": {
                "monitors": SCALE_MONITORS,
                "attacks": SCALE_ATTACKS,
                "budget_fraction": SCALE_BUDGET_FRACTION,
                "rows": rows,
                "vars": cols,
                "cells": cells,
                "csr_bytes": sparse_nbytes,
                "dense_equivalent_bytes": dense_nbytes,
                "solve_seconds": scale_seconds,
                "optimal": result.optimal,
                "dense_compile_refused": True,
                "presolve_dominated_columns": reduction.stats.dominated_columns,
                "presolve_columns_before": reduction.stats.columns_before,
            },
            "speedup": {
                "monitors": RACE_MONITORS,
                "attacks": RACE_ATTACKS,
                "budget_fraction": RACE_BUDGET_FRACTION,
                "cells": race_cells,
                "sparse_seconds": sparse_seconds,
                "dense_seconds": dense_seconds,
                "speedup": speedup,
                "nodes": via_sparse.nodes_explored,
                "objective": via_sparse.objective,
            },
        },
    )
