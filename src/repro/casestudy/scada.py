"""A second case study: SCADA monitoring for an electrical substation.

The paper's research group applies the same methodology to power-grid
control systems (PERFORM/smart-grid line of work), and monitor
placement is if anything harder there: field devices cannot host rich
telemetry, so network-level and historian-level monitors carry more of
the burden.  This model exercises exactly that asymmetry:

* an IT/OT-segmented topology — corporate workstation, control-center
  servers (SCADA front end, EMS, historian, HMI), and field devices
  (RTUs, PLC, protective relay) behind a WAN gateway;
* OT-specific data types (protocol function-code logs, control-command
  audit, RTU/relay event logs, firmware hashes, badge access);
* seven multi-step attacks from the ICS literature: false data
  injection, unauthorized control, IT-to-OT lateral movement, firmware
  tampering, telemetry denial of service, historian exfiltration, and
  insider misuse.

Everything is built with the same `repro.core` machinery as the Web
case study — the methodology itself is domain-agnostic.
"""

from __future__ import annotations

from repro.core.assets import AssetKind
from repro.core.builder import ModelBuilder
from repro.core.model import SystemModel
from repro.core.monitors import MonitorScope

__all__ = ["scada_substation"]


def _add_topology(builder: ModelBuilder) -> None:
    builder.asset("corp-ws", "Corporate workstation", AssetKind.WORKSTATION,
                  zone="corporate", criticality=0.4)
    builder.asset("corp-fw", "IT/OT firewall", AssetKind.FIREWALL,
                  zone="perimeter", criticality=0.9)
    builder.asset("ctrl-sw", "Control-center switch", AssetKind.NETWORK_DEVICE,
                  zone="control", criticality=0.8)
    builder.asset("scada-fe", "SCADA front end", AssetKind.SERVER,
                  zone="control", criticality=1.0, tags=["role:scada"])
    builder.asset("ems-1", "Energy management system", AssetKind.SERVER,
                  zone="control", criticality=0.95, tags=["role:ems"])
    builder.asset("hist-1", "Historian", AssetKind.DATABASE,
                  zone="control", criticality=0.85, tags=["role:historian"])
    builder.asset("hmi-1", "Operator HMI", AssetKind.WORKSTATION,
                  zone="control", criticality=0.9, tags=["role:hmi"])
    builder.asset("wan-gw", "Field WAN gateway", AssetKind.NETWORK_DEVICE,
                  zone="field", criticality=0.85)
    builder.asset("rtu-1", "Remote terminal unit 1", AssetKind.HOST,
                  zone="field", criticality=0.9, tags=["role:rtu"])
    builder.asset("rtu-2", "Remote terminal unit 2", AssetKind.HOST,
                  zone="field", criticality=0.9, tags=["role:rtu"])
    builder.asset("plc-1", "Programmable logic controller", AssetKind.HOST,
                  zone="field", criticality=0.95, tags=["role:plc"])
    builder.asset("relay-1", "Protective relay", AssetKind.HOST,
                  zone="field", criticality=1.0, tags=["role:relay"])

    builder.link("corp-ws", "corp-fw")
    builder.link("corp-fw", "ctrl-sw")
    for control_asset in ("scada-fe", "ems-1", "hist-1", "hmi-1", "wan-gw"):
        builder.link("ctrl-sw", control_asset)
    builder.link("wan-gw", "rtu-1", medium="wan")
    builder.link("wan-gw", "rtu-2", medium="wan")
    builder.link("wan-gw", "plc-1", medium="wan")
    builder.link("rtu-1", "relay-1")


def _add_data_types(builder: ModelBuilder) -> None:
    builder.data_type(
        "proto_log", "SCADA protocol log",
        fields=["src", "dst", "protocol", "function_code", "point_id", "value"],
        description="DNP3/Modbus function-code level capture", volume_hint=20_000,
    )
    builder.data_type(
        "ics_alert", "ICS IDS alert",
        fields=["signature", "src", "dst", "protocol", "severity"],
        description="ICS-aware NIDS signature match", volume_hint=100,
    )
    builder.data_type(
        "flow", "Network flow record",
        fields=["src", "dst", "bytes", "packets", "duration"],
        volume_hint=15_000,
    )
    builder.data_type(
        "control_audit", "Control command audit",
        fields=["operator", "command", "target_point", "origin", "sequence"],
        description="Every supervisory control action at the master", volume_hint=500,
    )
    builder.data_type(
        "hmi_log", "HMI session log",
        fields=["operator", "screen", "action", "session_start"],
        volume_hint=2_000,
    )
    builder.data_type(
        "historian_audit", "Historian query audit",
        fields=["user", "query", "tag_count", "origin"],
        volume_hint=5_000,
    )
    builder.data_type(
        "rtu_events", "RTU event log",
        fields=["event_code", "point_id", "quality_flag", "config_hash"],
        volume_hint=1_000,
    )
    builder.data_type(
        "relay_events", "Relay event log",
        fields=["element", "action", "setting_group", "trigger"],
        volume_hint=200,
    )
    builder.data_type(
        "firmware_hash", "Firmware integrity record",
        fields=["device", "image_hash", "version", "change_type"],
        volume_hint=5,
    )
    builder.data_type(
        "badge_log", "Physical access log",
        fields=["badge_id", "door", "direction", "granted"],
        volume_hint=300,
    )
    builder.data_type(
        "host_syslog", "Host syslog",
        fields=["process", "severity", "message"],
        volume_hint=8_000,
    )


def _add_monitor_types(builder: ModelBuilder) -> None:
    fabric = [AssetKind.FIREWALL, AssetKind.NETWORK_DEVICE]
    hosts = [AssetKind.SERVER, AssetKind.WORKSTATION, AssetKind.DATABASE, AssetKind.HOST]

    builder.monitor_type(
        "ics_nids", "ICS-aware network IDS",
        data_types=["ics_alert", "proto_log"],
        cost={"cpu": 20, "memory": 1024, "storage": 5, "network": 10, "admin": 14},
        scope=MonitorScope.NETWORK, deployable_kinds=fabric, quality=0.9,
    )
    builder.monitor_type(
        "flow_sensor", "Flow sensor",
        data_types=["flow"],
        cost={"cpu": 4, "memory": 128, "storage": 2, "network": 3, "admin": 2},
        scope=MonitorScope.NETWORK, deployable_kinds=fabric, quality=0.97,
    )
    builder.monitor_type(
        "control_logger", "Control command auditing",
        data_types=["control_audit"],
        cost={"cpu": 3, "memory": 128, "storage": 2, "network": 1, "admin": 4},
        deployable_kinds=[AssetKind.SERVER], quality=0.98,
    )
    builder.monitor_type(
        "hmi_monitor", "HMI session recording",
        data_types=["hmi_log"],
        cost={"cpu": 4, "memory": 256, "storage": 3, "network": 2, "admin": 3},
        deployable_kinds=[AssetKind.WORKSTATION], quality=0.95,
    )
    builder.monitor_type(
        "historian_audit_logger", "Historian query auditing",
        data_types=["historian_audit"],
        cost={"cpu": 5, "memory": 256, "storage": 4, "network": 2, "admin": 3},
        deployable_kinds=[AssetKind.DATABASE], quality=0.97,
    )
    builder.monitor_type(
        "rtu_logger", "RTU event collection",
        data_types=["rtu_events"],
        cost={"cpu": 2, "memory": 32, "storage": 1, "network": 2, "admin": 5},
        deployable_kinds=[AssetKind.HOST], quality=0.92,
        description="Event upload over the constrained field link",
    )
    builder.monitor_type(
        "relay_logger", "Relay event collection",
        data_types=["relay_events"],
        cost={"cpu": 1, "memory": 16, "storage": 1, "network": 1, "admin": 5},
        deployable_kinds=[AssetKind.HOST], quality=0.93,
    )
    builder.monitor_type(
        "firmware_attestation", "Firmware integrity attestation",
        data_types=["firmware_hash"],
        cost={"cpu": 2, "memory": 32, "storage": 1, "network": 1, "admin": 8},
        deployable_kinds=[AssetKind.HOST], quality=0.99,
        description="Periodic hash attestation of device firmware",
    )
    builder.monitor_type(
        "badge_system", "Physical access logging",
        data_types=["badge_log"],
        cost={"cpu": 1, "memory": 16, "storage": 1, "network": 1, "admin": 2},
        deployable_kinds=[AssetKind.WORKSTATION], quality=0.99,
    )
    builder.monitor_type(
        "host_agent", "Host log agent",
        data_types=["host_syslog"],
        cost={"cpu": 2, "memory": 64, "storage": 2, "network": 2, "admin": 2},
        deployable_kinds=[AssetKind.SERVER, AssetKind.WORKSTATION, AssetKind.DATABASE],
        quality=0.95,
    )


def _place_monitors(builder: ModelBuilder) -> None:
    for monitor_type_id in (
        "ics_nids",
        "flow_sensor",
        "hmi_monitor",
        "historian_audit_logger",
        "badge_system",
        "host_agent",
    ):
        builder.monitor_everywhere(monitor_type_id)
    # Control auditing belongs on the two supervisory servers only.
    builder.monitor("control_logger", "scada-fe")
    builder.monitor("control_logger", "ems-1")
    # Field telemetry: RTUs, PLC, relay — costly admin, limited hosts.
    for field_asset in ("rtu-1", "rtu-2", "plc-1"):
        builder.monitor("rtu_logger", field_asset)
        builder.monitor("firmware_attestation", field_asset)
    builder.monitor("relay_logger", "relay-1")
    builder.monitor("firmware_attestation", "relay-1")


def _event(builder, created, event_id, name, asset, evidence):
    if event_id in created:
        return event_id
    builder.event(event_id, name, asset=asset)
    for data_type_id, weight in evidence:
        builder.evidence(data_type_id, event_id, weight)
    created.add(event_id)
    return event_id


def _add_attacks(builder: ModelBuilder) -> None:
    created: set[str] = set()

    def e(event_id, name, asset, evidence):
        return _event(builder, created, event_id, name, asset, evidence)

    # Shared events
    rtu_compromise = e(
        "rtu-compromise@rtu-1", "RTU compromise", "rtu-1",
        [("rtu_events", 0.7), ("firmware_hash", 0.5), ("proto_log", 0.4)],
    )
    rogue_cmd = e(
        "rogue-control-cmd@scada-fe", "Unauthorized control command", "scada-fe",
        [("control_audit", 0.95), ("proto_log", 0.6), ("ics_alert", 0.5)],
    )

    builder.attack(
        "false-data-injection",
        "False data injection against state estimation",
        steps=[
            (rtu_compromise, 1.0),
            (e("falsified-telemetry@wan-gw", "Falsified telemetry stream", "wan-gw",
               [("proto_log", 0.8), ("ics_alert", 0.6), ("flow", 0.2)]), 1.0),
            (e("estimation-anomaly@ems-1", "State estimation residual anomaly", "ems-1",
               [("host_syslog", 0.5), ("historian_audit", 0.3)]), 0.6),
        ],
        importance=1.0,
    )

    builder.attack(
        "unauthorized-control",
        "Unauthorized breaker operation",
        steps=[
            (e("hmi-hijack@hmi-1", "HMI session hijack", "hmi-1",
               [("hmi_log", 0.9), ("host_syslog", 0.4)]), 1.0),
            (rogue_cmd, 1.0),
            (e("breaker-trip@relay-1", "Unexpected breaker trip", "relay-1",
               [("relay_events", 1.0), ("rtu_events", 0.4)]), 1.0),
        ],
        importance=1.0,
    )

    from repro.core.attacks import AttackStep

    builder.attack(
        "it-ot-lateral",
        "IT-to-OT lateral movement",
        steps=[
            AttackStep(e("corp-phish@corp-ws", "Corporate workstation compromise", "corp-ws",
                         [("host_syslog", 0.5), ("flow", 0.3)]), weight=0.5, required=False),
            AttackStep(e("fw-traversal@corp-fw", "IT/OT boundary traversal", "corp-fw",
                         [("flow", 0.7), ("ics_alert", 0.8)]), weight=1.0),
            AttackStep(e("ot-scan@ctrl-sw", "OT network scan", "ctrl-sw",
                         [("flow", 0.8), ("ics_alert", 0.85), ("proto_log", 0.5)]), weight=1.0),
            AttackStep(rtu_compromise, weight=1.0),
        ],
        importance=0.9,
    )

    builder.attack(
        "firmware-tamper",
        "PLC firmware tampering",
        steps=[
            (e("firmware-upload@plc-1", "Unauthorized firmware upload", "plc-1",
               [("firmware_hash", 1.0), ("proto_log", 0.6), ("rtu_events", 0.3)]), 1.0),
            (e("logic-change@plc-1", "Control logic change", "plc-1",
               [("firmware_hash", 0.9), ("rtu_events", 0.5)]), 1.0),
            (e("process-anomaly@relay-1", "Protection behavior anomaly", "relay-1",
               [("relay_events", 0.8)]), 0.5),
        ],
        importance=0.95,
    )

    builder.attack(
        "telemetry-dos",
        "Telemetry denial of service",
        steps=[
            (e("field-flood@wan-gw", "Field link flood", "wan-gw",
               [("flow", 0.9), ("ics_alert", 0.6)]), 1.0),
            (e("telemetry-loss@scada-fe", "Telemetry blackout at master", "scada-fe",
               [("host_syslog", 0.8), ("control_audit", 0.4)]), 1.0),
        ],
        importance=0.8,
    )

    builder.attack(
        "historian-exfil",
        "Historian data exfiltration",
        steps=[
            (e("hist-bulk-query@hist-1", "Bulk historian query", "hist-1",
               [("historian_audit", 1.0), ("host_syslog", 0.3)]), 1.0),
            (e("ot-exfil@corp-fw", "Exfiltration across IT/OT boundary", "corp-fw",
               [("flow", 0.9), ("ics_alert", 0.5)]), 1.0),
        ],
        importance=0.7,
    )

    builder.attack(
        "insider-misuse",
        "Insider control misuse",
        steps=[
            AttackStep(e("badge-after-hours@hmi-1", "After-hours control-room access", "hmi-1",
                         [("badge_log", 0.9)]), weight=0.5, required=False),
            AttackStep(e("hmi-misuse@hmi-1", "Unusual HMI operation pattern", "hmi-1",
                         [("hmi_log", 0.95)]), weight=1.0),
            AttackStep(rogue_cmd, weight=1.0),
        ],
        importance=0.75,
    )


def scada_substation() -> SystemModel:
    """Build the SCADA substation case-study model."""
    builder = ModelBuilder("scada-substation")
    _add_topology(builder)
    _add_data_types(builder)
    _add_monitor_types(builder)
    _place_monitors(builder)
    _add_attacks(builder)
    return builder.build()
