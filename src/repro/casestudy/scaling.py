"""Seeded synthetic model generator for the scalability experiments.

The paper's headline scalability claim — optimal deployments for
systems with *hundreds of monitors and attacks* computed within minutes
— needs models whose size is a free parameter.  :func:`synthetic_model`
generates random but structurally realistic models: a connected asset
graph, monitor types with scope/cost diversity, an evidence relation
with realistic sharing, and multi-step attacks drawing from a common
event pool (so attacks overlap, as real kill chains do).

Generation is fully deterministic for a given :class:`ScalingConfig`,
including its ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assets import AssetKind
from repro.core.builder import ModelBuilder
from repro.core.model import SystemModel
from repro.core.monitors import DEFAULT_COST_DIMENSIONS, MonitorScope
from repro.errors import ModelError

__all__ = ["ScalingConfig", "synthetic_model"]

#: Pool of field names shared across generated data types; overlap
#: between types is what gives the richness metric structure.
_FIELD_POOL = [
    "src_ip", "dst_ip", "src_port", "dst_port", "protocol", "bytes", "user",
    "url", "status", "query", "path", "process", "uid", "session", "outcome",
    "duration", "payload", "signature", "severity", "action", "rule", "table",
    "method", "host", "latency", "hash", "timestamp_skew", "size", "count",
]


@dataclass(frozen=True)
class ScalingConfig:
    """Size and randomness knobs for :func:`synthetic_model`.

    The defaults produce a model comparable to the case study; the
    scalability benches sweep ``monitors`` and ``attacks``.

    ``topology`` selects the generator's structure.  ``"flat"`` (the
    default) is the historical single-domain tree and is byte-identical
    to what earlier versions generated.  ``"multizone"`` partitions the
    assets into ``zones`` contiguous blocks joined by gateway links,
    offers each zone only a subset of the monitor types, and draws a
    per-zone base cost multiplier so costs *correlate within a zone* —
    the structure that makes 2000+-monitor catalogs realistic (zones
    full of near-duplicate placements are exactly what presolve's
    dominated-monitor rule must collapse).
    """

    assets: int = 30
    data_types: int = 12
    monitor_types: int = 10
    monitors: int = 100
    events: int | None = None  # default: 2 * attacks
    attacks: int = 50
    min_steps: int = 2
    max_steps: int = 5
    min_evidence: int = 1
    max_evidence: int = 4
    network_monitor_fraction: float = 0.25
    topology: str = "flat"
    zones: int = 4
    seed: int = 0

    @property
    def types_per_zone(self) -> int:
        """How many monitor types each multizone zone offers (~70%)."""
        return max(1, (self.monitor_types * 7 + 9) // 10)

    @property
    def max_placements(self) -> int:
        """Distinct (monitor type, asset) placements this config allows."""
        if self.topology == "multizone":
            return self.assets * self.types_per_zone
        return self.monitor_types * self.assets

    def __post_init__(self) -> None:
        if self.assets < 2:
            raise ModelError("synthetic model needs at least 2 assets")
        if self.data_types < 1 or self.monitor_types < 1:
            raise ModelError("synthetic model needs data types and monitor types")
        if self.monitors < 1 or self.attacks < 1:
            raise ModelError("synthetic model needs monitors and attacks")
        if not 1 <= self.min_steps <= self.max_steps:
            raise ModelError("step bounds must satisfy 1 <= min_steps <= max_steps")
        if not 1 <= self.min_evidence <= self.max_evidence:
            raise ModelError("evidence bounds must satisfy 1 <= min <= max")
        if not 0.0 <= self.network_monitor_fraction <= 1.0:
            raise ModelError("network_monitor_fraction must lie in [0, 1]")
        if self.topology not in ("flat", "multizone"):
            raise ModelError(
                f"unknown topology {self.topology!r}: expected 'flat' or 'multizone'"
            )
        if self.topology == "multizone":
            if not 2 <= self.zones <= self.assets:
                raise ModelError(
                    f"multizone topology needs 2 <= zones <= assets, got "
                    f"zones={self.zones} with assets={self.assets}"
                )
            if self.monitors > self.max_placements:
                raise ModelError(
                    f"cannot place {self.monitors} monitors under the multizone "
                    f"topology: only {self.max_placements} zone-compatible "
                    f"(type, asset) placements exist ({self.assets} assets x "
                    f"{self.types_per_zone} monitor types offered per zone); "
                    f"lower monitors or raise assets/monitor_types"
                )


def synthetic_model(config: ScalingConfig | None = None, **overrides) -> SystemModel:
    """Generate a synthetic model; keyword overrides patch the config."""
    if config is None:
        config = ScalingConfig(**overrides)
    elif overrides:
        raise ModelError("pass either a ScalingConfig or keyword overrides, not both")
    rng = np.random.default_rng(config.seed)
    multizone = config.topology == "multizone"
    suffix = f"-z{config.zones}" if multizone else ""
    builder = ModelBuilder(
        f"synthetic-{config.monitors}m-{config.attacks}a-s{config.seed}{suffix}"
    )

    # -- assets: random tree, guaranteed connected ----------------------
    asset_kinds = [AssetKind.SERVER, AssetKind.HOST, AssetKind.DATABASE, AssetKind.NETWORK_DEVICE]
    kind_probabilities = [0.45, 0.3, 0.1, 0.15]
    asset_ids = [f"asset-{i}" for i in range(config.assets)]
    # Multizone: contiguous asset blocks, one per zone.  zone_start[z] is
    # the first asset index in zone z; a zone's first asset is its
    # gateway, linked into the previous zone.
    zone_of: list[int] = [i * config.zones // config.assets for i in range(config.assets)]
    zone_start = [zone_of.index(z) for z in range(config.zones)] if multizone else []
    for i, asset_id in enumerate(asset_ids):
        kind = asset_kinds[int(rng.choice(len(asset_kinds), p=kind_probabilities))]
        builder.asset(asset_id, kind=kind, criticality=float(rng.uniform(0.2, 1.0)))
        if i == 0:
            continue
        if multizone:
            start = zone_start[zone_of[i]]
            if i == start:  # gateway: attach to a random asset in the previous zone
                parent = int(rng.integers(zone_start[zone_of[i] - 1], start))
            else:  # intra-zone tree edge
                parent = int(rng.integers(start, i))
            builder.link(asset_ids[parent], asset_id)
        else:
            builder.link(asset_ids[int(rng.integers(i))], asset_id)
    # A few cross links so network monitors see more than a chain.  In
    # the multizone topology these stay inside one zone: zones talk only
    # through their gateways.
    extra_links = max(2, config.assets // 5)
    for _ in range(extra_links):
        if multizone:
            z = int(rng.integers(config.zones))
            start = zone_start[z]
            end = zone_start[z + 1] if z + 1 < config.zones else config.assets
            if end - start < 2:
                continue
            a, b = rng.choice(np.arange(start, end), size=2, replace=False)
        else:
            a, b = rng.choice(config.assets, size=2, replace=False)
        try:
            builder.link(asset_ids[int(a)], asset_ids[int(b)])
        except ValueError:
            continue  # duplicate links are allowed; self-links are not

    # -- data types ------------------------------------------------------
    data_type_ids = [f"dt-{i}" for i in range(config.data_types)]
    for data_type_id in data_type_ids:
        field_count = int(rng.integers(3, 9))
        fields = list(rng.choice(_FIELD_POOL, size=field_count, replace=False))
        builder.data_type(data_type_id, fields=fields)

    # -- monitor types ------------------------------------------------------
    monitor_type_ids = [f"mt-{i}" for i in range(config.monitor_types)]
    for monitor_type_id in monitor_type_ids:
        generated = list(
            rng.choice(data_type_ids, size=int(rng.integers(1, min(4, config.data_types + 1))), replace=False)
        )
        network = bool(rng.random() < config.network_monitor_fraction)
        magnitude = 3.0 if network else 1.0
        cost = {
            dim: float(np.round(rng.uniform(1, 10) * magnitude, 2))
            for dim in DEFAULT_COST_DIMENSIONS
        }
        builder.monitor_type(
            monitor_type_id,
            data_types=generated,
            cost=cost,
            scope=MonitorScope.NETWORK if network else MonitorScope.HOST,
            quality=float(rng.uniform(0.85, 0.99)),
        )

    # -- monitors: distinct (type, asset) placements ------------------------
    if multizone:
        # Each zone offers only ~70% of the monitor types and draws one
        # base cost level; placements within a zone share that level with
        # a small jitter, so catalogs fill with near-duplicate monitors —
        # the structure presolve's dominated-monitor rule collapses.
        zone_types = [
            sorted(
                int(t)
                for t in rng.choice(
                    config.monitor_types, size=config.types_per_zone, replace=False
                )
            )
            for _ in range(config.zones)
        ]
        zone_base = [float(rng.uniform(0.7, 1.6)) for _ in range(config.zones)]
        placements = [
            (type_index, asset_index)
            for asset_index in range(config.assets)
            for type_index in zone_types[zone_of[asset_index]]
        ]
        # monitors <= len(placements) is guaranteed by ScalingConfig
        # validation, which raises a clear ModelError at config time.
        chosen = rng.choice(len(placements), size=config.monitors, replace=False)
        for index in sorted(int(i) for i in chosen):
            type_index, asset_index = placements[index]
            base = zone_base[zone_of[asset_index]]
            builder.monitor(
                monitor_type_ids[type_index],
                asset_ids[asset_index],
                cost_multiplier=float(np.round(base * rng.uniform(0.95, 1.05), 2)),
            )
    else:
        max_placements = config.monitor_types * config.assets
        if config.monitors > max_placements:
            raise ModelError(
                f"cannot place {config.monitors} monitors: only {max_placements} "
                f"distinct (type, asset) pairs exist"
            )
        placement_indices = rng.choice(max_placements, size=config.monitors, replace=False)
        for index in sorted(int(i) for i in placement_indices):
            type_index, asset_index = divmod(index, config.assets)
            builder.monitor(
                monitor_type_ids[type_index],
                asset_ids[asset_index],
                cost_multiplier=float(np.round(rng.uniform(0.8, 1.5), 2)),
            )

    # -- events with evidence -------------------------------------------------
    event_count = config.events if config.events is not None else 2 * config.attacks
    event_ids = [f"event-{i}" for i in range(event_count)]
    for event_id in event_ids:
        asset_id = asset_ids[int(rng.integers(config.assets))]
        builder.event(event_id, asset=asset_id)
        evidence_count = int(
            rng.integers(config.min_evidence, min(config.max_evidence, config.data_types) + 1)
        )
        for data_type_id in rng.choice(data_type_ids, size=evidence_count, replace=False):
            builder.evidence(
                str(data_type_id), event_id, weight=float(np.round(rng.uniform(0.3, 1.0), 3))
            )

    # -- attacks drawing from the shared event pool ------------------------------
    for i in range(config.attacks):
        # A tiny event pool caps how many distinct steps an attack can have.
        low = min(config.min_steps, event_count)
        high = min(config.max_steps, event_count)
        step_count = int(rng.integers(low, high + 1))
        chosen = rng.choice(event_count, size=step_count, replace=False)
        steps = [
            (event_ids[int(e)], float(np.round(rng.uniform(0.5, 1.0), 3))) for e in chosen
        ]
        builder.attack(
            f"attack-{i}", steps=steps, importance=float(np.round(rng.uniform(0.3, 1.0), 3))
        )

    return builder.build()
