"""The paper's enterprise Web service use case, assembled.

A three-tier enterprise Web deployment behind a DMZ:

.. code-block:: text

    internet -- fw-edge -- lb-1 -- web-1..web-N  (DMZ)
                              \\        |
                               \\    fw-int -- sw-core -- app-1..app-M
                                                    |      db-1
                                                    |      auth-1
                                                    |      admin-ws

All monitor types from :mod:`repro.casestudy.monitor_catalog` are placed
at every compatible asset (the *deployable* set the optimizer selects
from), and the attack catalog from
:mod:`repro.casestudy.attack_catalog` is instantiated against the
topology.  The default configuration — two web servers, two app servers
— yields roughly 45 deployable monitors, 50 events, and 26 attacks.
"""

from __future__ import annotations

from repro.core.assets import AssetKind
from repro.core.builder import ModelBuilder
from repro.core.model import SystemModel
from repro.casestudy.attack_catalog import add_attacks
from repro.casestudy.data_catalog import add_data_types
from repro.casestudy.monitor_catalog import add_monitor_types, place_monitors
from repro.errors import ModelError

__all__ = ["enterprise_web_service"]


def enterprise_web_service(web_servers: int = 2, app_servers: int = 2) -> SystemModel:
    """Build the enterprise Web service case-study model.

    Parameters
    ----------
    web_servers:
        Number of DMZ web servers (>= 1).
    app_servers:
        Number of internal application servers (>= 1).
    """
    if web_servers < 1:
        raise ModelError(f"need at least one web server, got {web_servers}")
    if app_servers < 1:
        raise ModelError(f"need at least one app server, got {app_servers}")

    builder = ModelBuilder("enterprise-web-service")

    # -- topology -----------------------------------------------------
    builder.asset("internet", "Internet", AssetKind.EXTERNAL, zone="external", criticality=0.1)
    builder.asset("fw-edge", "Edge firewall", AssetKind.FIREWALL, zone="perimeter", criticality=0.9)
    builder.asset("lb-1", "Load balancer", AssetKind.LOAD_BALANCER, zone="dmz", criticality=0.8)
    web_ids = [f"web-{i + 1}" for i in range(web_servers)]
    for web in web_ids:
        builder.asset(web, f"Web server {web}", AssetKind.SERVER, zone="dmz", criticality=0.8,
                      tags=["role:web", "os:linux"])
    builder.asset("fw-int", "Internal firewall", AssetKind.FIREWALL, zone="perimeter", criticality=0.9)
    builder.asset("sw-core", "Core switch", AssetKind.NETWORK_DEVICE, zone="internal", criticality=0.7)
    app_ids = [f"app-{i + 1}" for i in range(app_servers)]
    for app in app_ids:
        builder.asset(app, f"Application server {app}", AssetKind.SERVER, zone="internal",
                      criticality=0.85, tags=["role:app", "os:linux"])
    builder.asset("db-1", "Database server", AssetKind.DATABASE, zone="internal", criticality=1.0,
                  tags=["role:db", "os:linux", "pci"])
    builder.asset("auth-1", "Directory server", AssetKind.SERVER, zone="internal", criticality=0.95,
                  tags=["role:auth", "os:linux"])
    builder.asset("admin-ws", "Admin workstation", AssetKind.WORKSTATION, zone="internal",
                  criticality=0.6, tags=["role:admin"])

    builder.link("internet", "fw-edge", medium="wan")
    builder.link("fw-edge", "lb-1")
    for web in web_ids:
        builder.link("lb-1", web)
        builder.link(web, "fw-int")
    builder.link("fw-int", "sw-core")
    for app in app_ids:
        builder.link("sw-core", app)
    builder.link("sw-core", "db-1")
    builder.link("sw-core", "auth-1")
    builder.link("sw-core", "admin-ws")

    # -- data, monitors, attacks --------------------------------------
    add_data_types(builder)
    add_monitor_types(builder)
    place_monitors(builder, auth_asset="auth-1")
    add_attacks(
        builder,
        web_servers=web_ids,
        app_server=app_ids[0],
        db_server="db-1",
        auth_server="auth-1",
        edge_firewall="fw-edge",
        internal_firewall="fw-int",
        load_balancer="lb-1",
        core_switch="sw-core",
    )
    return builder.build()
