"""Attack catalog for the enterprise Web service case study.

Fourteen attack classes covering the common attacks on Web servers the
paper's use case studies, drawn from the CAPEC attack-pattern catalog
(the public source this line of work builds its intrusion models from).
Attacks that directly target a web server are instantiated once per web
server in the topology; infrastructure-wide attacks (flood, lateral
movement, database exfiltration) appear once.

Each attack is an ordered sequence of *events* located at the asset
where they manifest, and each event carries *evidence* entries: which
data types indicate it, and how strongly.  Reconnaissance events are
deliberately shared between attacks — covering the perimeter scan helps
detect several attack classes at once, which is what makes joint
optimization outperform per-attack reasoning.
"""

from __future__ import annotations

from repro.core.attacks import AttackStep
from repro.core.builder import ModelBuilder

__all__ = ["add_attacks", "ATTACK_CLASSES"]

#: Event specifications: slug -> (display name, [(data type, weight), ...]).
#: The asset is bound when the event is instantiated.
_EVENT_SPECS: dict[str, tuple[str, list[tuple[str, float]]]] = {
    "port-scan": (
        "External port scan",
        [("firewall_log", 0.8), ("net_flow", 0.7), ("ids_alert", 0.9)],
    ),
    "web-probe": (
        "Aggressive URL probing",
        [("http_access_log", 0.8), ("waf_log", 0.9), ("ids_alert", 0.6)],
    ),
    "sqli-request": (
        "SQL injection request",
        [("waf_log", 1.0), ("http_access_log", 0.85), ("ids_alert", 0.8)],
    ),
    "db-query-anomaly": (
        "Anomalous database query",
        [("db_audit", 1.0), ("db_slow_query", 0.6), ("net_flow", 0.25)],
    ),
    "data-exfil": (
        "Data exfiltration over HTTP",
        [("net_flow", 0.9), ("firewall_log", 0.7), ("ids_alert", 0.6)],
    ),
    "xss-payload-upload": (
        "Stored XSS payload submission",
        [("waf_log", 0.9), ("http_access_log", 0.7)],
    ),
    "stored-xss-served": (
        "Stored XSS served to victims",
        [("http_access_log", 0.6), ("waf_log", 0.5)],
    ),
    "traversal-request": (
        "Path traversal request",
        [("waf_log", 0.95), ("http_access_log", 0.9), ("http_error_log", 0.5), ("ids_alert", 0.7)],
    ),
    "sensitive-file-read": (
        "Sensitive file read outside web root",
        [("os_audit", 0.95), ("syslog", 0.3)],
    ),
    "webshell-upload": (
        "Web shell upload",
        [("waf_log", 0.9), ("http_access_log", 0.7), ("file_integrity", 0.95)],
    ),
    "webshell-exec": (
        "Web shell command execution",
        [("os_audit", 0.95), ("process_accounting", 0.8), ("syslog", 0.4)],
    ),
    "c2-beacon": (
        "Command-and-control beaconing",
        [("net_flow", 0.85), ("firewall_log", 0.7), ("ids_alert", 0.75)],
    ),
    "login-bruteforce": (
        "Login brute forcing",
        [("auth_log", 0.95), ("http_access_log", 0.7), ("waf_log", 0.6)],
    ),
    "account-compromise": (
        "Successful anomalous login",
        [("auth_log", 0.9), ("syslog", 0.4)],
    ),
    "ldap-spray": (
        "Password spraying against directory",
        [("ldap_log", 0.95), ("auth_log", 0.8), ("net_flow", 0.3)],
    ),
    "http-flood": (
        "HTTP request flood",
        [("net_flow", 0.9), ("waf_log", 0.8), ("ids_alert", 0.7), ("firewall_log", 0.6)],
    ),
    "resource-exhaustion": (
        "Service resource exhaustion",
        [("syslog", 0.8), ("http_error_log", 0.7), ("process_accounting", 0.5)],
    ),
    "defacement-write": (
        "Web content defacement",
        [("file_integrity", 1.0), ("os_audit", 0.8), ("http_access_log", 0.4)],
    ),
    "local-priv-exploit": (
        "Local privilege-escalation exploit",
        [("os_audit", 0.9), ("process_accounting", 0.7), ("syslog", 0.5)],
    ),
    "rogue-admin-account": (
        "Rogue administrator account creation",
        [("os_audit", 0.85), ("auth_log", 0.8), ("syslog", 0.6)],
    ),
    "internal-scan": (
        "Internal network scan",
        [("net_flow", 0.85), ("ids_alert", 0.8)],
    ),
    "lateral-login": (
        "Lateral-movement login",
        [("auth_log", 0.9), ("os_audit", 0.6), ("syslog", 0.5)],
    ),
    "unusual-db-access": (
        "Database access from unusual source",
        [("db_audit", 0.95), ("auth_log", 0.5), ("net_flow", 0.4)],
    ),
    "bulk-db-read": (
        "Bulk database read",
        [("db_audit", 1.0), ("db_slow_query", 0.8)],
    ),
    "large-outbound-transfer": (
        "Large outbound data transfer",
        [("net_flow", 0.95), ("firewall_log", 0.8), ("ids_alert", 0.5)],
    ),
    "cmd-injection-request": (
        "OS command injection request",
        [("waf_log", 0.95), ("http_access_log", 0.8), ("ids_alert", 0.75)],
    ),
    "spawned-shell": (
        "Unexpected shell spawned by web process",
        [("os_audit", 0.95), ("process_accounting", 0.85), ("syslog", 0.5)],
    ),
    "session-token-theft": (
        "Session token theft pattern",
        [("http_access_log", 0.5), ("waf_log", 0.6), ("ids_alert", 0.4)],
    ),
    "concurrent-session-anomaly": (
        "Concurrent session anomaly",
        [("app_log", 0.9), ("auth_log", 0.5)],
    ),
    "csrf-request": (
        "Cross-site request forgery pattern",
        [("http_access_log", 0.6), ("waf_log", 0.7)],
    ),
    "state-change-anomaly": (
        "Unexpected state-changing request",
        [("app_log", 0.85)],
    ),
    "xxe-request": (
        "XML external entity payload",
        [("waf_log", 0.9), ("http_access_log", 0.7), ("ids_alert", 0.65)],
    ),
    "xxe-file-disclosure": (
        "Server file disclosed via entity expansion",
        [("os_audit", 0.85), ("http_error_log", 0.6), ("syslog", 0.3)],
    ),
    "ssrf-request": (
        "Server-side request forgery payload",
        [("waf_log", 0.85), ("http_access_log", 0.7), ("ids_alert", 0.6)],
    ),
    "ssrf-internal-fetch": (
        "Server-initiated fetch of internal resource",
        [("net_flow", 0.8), ("firewall_log", 0.6), ("ids_alert", 0.5)],
    ),
}

#: Attack classes instantiated **per web server** (CAPEC ids noted).
#: Step tuples are (event slug, asset placeholder, weight, required);
#: ``WEB`` binds to the target web server at instantiation.
_PER_WEB_ATTACKS: list[dict] = [
    {
        "slug": "sql-injection",
        "name": "SQL injection (CAPEC-66)",
        "importance": 0.9,
        "steps": [
            ("port-scan", "EDGE", 0.5, False),
            ("web-probe", "WEB", 1.0, True),
            ("sqli-request", "WEB", 1.0, True),
            ("db-query-anomaly", "DB", 1.0, True),
            ("data-exfil", "EDGE", 0.5, False),
        ],
    },
    {
        "slug": "stored-xss",
        "name": "Stored cross-site scripting (CAPEC-592)",
        "importance": 0.6,
        "steps": [
            ("web-probe", "WEB", 1.0, True),
            ("xss-payload-upload", "WEB", 1.0, True),
            ("stored-xss-served", "WEB", 0.5, False),
        ],
    },
    {
        "slug": "dir-traversal",
        "name": "Path traversal (CAPEC-126)",
        "importance": 0.7,
        "steps": [
            ("web-probe", "WEB", 0.5, False),
            ("traversal-request", "WEB", 1.0, True),
            ("sensitive-file-read", "WEB", 1.0, True),
        ],
    },
    {
        "slug": "webshell",
        "name": "Web shell installation (CAPEC-650)",
        "importance": 0.95,
        "steps": [
            ("web-probe", "WEB", 0.5, False),
            ("webshell-upload", "WEB", 1.0, True),
            ("webshell-exec", "WEB", 1.0, True),
            ("c2-beacon", "EDGE", 0.7, False),
        ],
    },
    {
        "slug": "brute-force",
        "name": "Login brute force (CAPEC-49)",
        "importance": 0.65,
        "steps": [
            ("login-bruteforce", "WEB", 1.0, True),
            ("account-compromise", "WEB", 1.0, True),
        ],
    },
    {
        "slug": "defacement",
        "name": "Website defacement (CAPEC-148)",
        "importance": 0.5,
        "steps": [
            ("web-probe", "WEB", 0.5, False),
            ("defacement-write", "WEB", 1.0, True),
        ],
    },
    {
        "slug": "priv-escalation",
        "name": "Privilege escalation (CAPEC-233)",
        "importance": 0.75,
        "steps": [
            ("local-priv-exploit", "WEB", 1.0, True),
            ("rogue-admin-account", "WEB", 1.0, True),
        ],
    },
    {
        "slug": "cmd-injection",
        "name": "OS command injection (CAPEC-88)",
        "importance": 0.8,
        "steps": [
            ("web-probe", "WEB", 0.5, False),
            ("cmd-injection-request", "WEB", 1.0, True),
            ("spawned-shell", "WEB", 1.0, True),
        ],
    },
    {
        "slug": "xxe",
        "name": "XML external entity injection (CAPEC-221)",
        "importance": 0.7,
        "steps": [
            ("web-probe", "WEB", 0.5, False),
            ("xxe-request", "WEB", 1.0, True),
            ("xxe-file-disclosure", "WEB", 1.0, True),
        ],
    },
    {
        "slug": "ssrf",
        "name": "Server-side request forgery (CAPEC-664)",
        "importance": 0.75,
        "steps": [
            ("ssrf-request", "WEB", 1.0, True),
            ("ssrf-internal-fetch", "FWINT", 1.0, True),
        ],
    },
]

#: Infrastructure-wide attack classes, instantiated once.  Placeholders:
#: ``EDGE`` edge firewall, ``LB`` load balancer, ``CORE`` core switch,
#: ``DB`` database, ``AUTH`` directory server, ``APP`` first app server,
#: ``WEB_ALL`` expands to one step per web server.
_GLOBAL_ATTACKS: list[dict] = [
    {
        "slug": "http-flood",
        "name": "HTTP flood denial of service (CAPEC-469)",
        "importance": 0.8,
        "steps": [
            ("http-flood", "LB", 1.0, True),
            ("resource-exhaustion", "WEB_ALL", 0.5, False),
        ],
    },
    {
        "slug": "password-spray",
        "name": "Password spraying (CAPEC-565)",
        "importance": 0.6,
        "steps": [
            ("ldap-spray", "AUTH", 1.0, True),
            ("lateral-login", "APP", 0.7, False),
        ],
    },
    {
        "slug": "lateral-movement",
        "name": "Lateral movement to data tier (CAPEC-555)",
        "importance": 0.85,
        "steps": [
            ("internal-scan", "CORE", 1.0, True),
            ("lateral-login", "APP", 1.0, True),
            ("unusual-db-access", "DB", 1.0, True),
        ],
    },
    {
        "slug": "db-exfiltration",
        "name": "Database exfiltration (CAPEC-118)",
        "importance": 1.0,
        "steps": [
            ("bulk-db-read", "DB", 1.0, True),
            ("large-outbound-transfer", "EDGE", 1.0, True),
        ],
    },
    {
        "slug": "session-hijack",
        "name": "Session hijacking (CAPEC-593)",
        "importance": 0.55,
        "steps": [
            ("session-token-theft", "WEB_FIRST", 1.0, True),
            ("concurrent-session-anomaly", "APP", 1.0, True),
        ],
    },
    {
        "slug": "csrf",
        "name": "Cross-site request forgery (CAPEC-62)",
        "importance": 0.45,
        "steps": [
            ("csrf-request", "WEB_FIRST", 1.0, True),
            ("state-change-anomaly", "APP", 1.0, True),
        ],
    },
]

#: Public view of the catalog: (slug, name, per-web?) rows for reports.
ATTACK_CLASSES: list[tuple[str, str, bool]] = [
    (a["slug"], a["name"], True) for a in _PER_WEB_ATTACKS
] + [(a["slug"], a["name"], False) for a in _GLOBAL_ATTACKS]


class _EventFactory:
    """Instantiates shared events (with their evidence) exactly once."""

    def __init__(self, builder: ModelBuilder):
        self.builder = builder
        self._created: set[str] = set()

    def event_id(self, slug: str, asset_id: str) -> str:
        event_id = f"{slug}@{asset_id}"
        if event_id not in self._created:
            name, evidence = _EVENT_SPECS[slug]
            self.builder.event(event_id, name, asset=asset_id)
            for data_type_id, weight in evidence:
                self.builder.evidence(data_type_id, event_id, weight)
            self._created.add(event_id)
        return event_id


def add_attacks(
    builder: ModelBuilder,
    *,
    web_servers: list[str],
    app_server: str,
    db_server: str,
    auth_server: str,
    edge_firewall: str,
    internal_firewall: str,
    load_balancer: str,
    core_switch: str,
) -> ModelBuilder:
    """Instantiate the attack catalog against the given topology roles."""
    factory = _EventFactory(builder)
    placeholders = {
        "EDGE": edge_firewall,
        "FWINT": internal_firewall,
        "LB": load_balancer,
        "CORE": core_switch,
        "DB": db_server,
        "AUTH": auth_server,
        "APP": app_server,
        "WEB_FIRST": web_servers[0],
    }

    for spec in _PER_WEB_ATTACKS:
        for web in web_servers:
            bindings = dict(placeholders)
            bindings["WEB"] = web
            steps = [
                AttackStep(
                    event_id=factory.event_id(slug, bindings[place]),
                    weight=weight,
                    required=required,
                )
                for slug, place, weight, required in spec["steps"]
            ]
            builder.attack(
                f"{spec['slug']}@{web}",
                f"{spec['name']} against {web}",
                steps=steps,
                importance=spec["importance"],
            )

    for spec in _GLOBAL_ATTACKS:
        steps: list[AttackStep] = []
        for slug, place, weight, required in spec["steps"]:
            if place == "WEB_ALL":
                steps.extend(
                    AttackStep(
                        event_id=factory.event_id(slug, web), weight=weight, required=required
                    )
                    for web in web_servers
                )
            else:
                steps.append(
                    AttackStep(
                        event_id=factory.event_id(slug, placeholders[place]),
                        weight=weight,
                        required=required,
                    )
                )
        builder.attack(
            spec["slug"], spec["name"], steps=steps, importance=spec["importance"]
        )

    return builder
