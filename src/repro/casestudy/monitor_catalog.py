"""Monitor-type catalog for the enterprise Web service case study.

Twelve monitor types spanning the standard mid-2010s enterprise stack:
network sensors (NIDS, flow collection, firewall logging), perimeter
application inspection (WAF), and host-side telemetry (web/app/DB logs,
auth logs, syslog, audit daemon, file integrity).

Cost vectors use the five default dimensions with interpretable units:

* ``cpu`` — % of a host core consumed by the monitor,
* ``memory`` — resident MB,
* ``storage`` — GB/day of generated data retained,
* ``network`` — Mbps shipped to the log aggregation tier,
* ``admin`` — analyst/operator hours per month (tuning, triage).

Absolute values are synthetic but ordered realistically: deep packet
inspection and kernel auditing are expensive, passive log collection is
cheap; network-scoped sensors trade high unit cost for multi-asset
visibility, which is exactly the trade-off the optimizer explores.
"""

from __future__ import annotations

from repro.core.assets import AssetKind
from repro.core.builder import ModelBuilder
from repro.core.monitors import MonitorScope

__all__ = ["add_monitor_types", "place_monitors"]

_HOST_KINDS = frozenset(
    {AssetKind.SERVER, AssetKind.WORKSTATION, AssetKind.DATABASE}
)


def add_monitor_types(builder: ModelBuilder) -> ModelBuilder:
    """Register the full case-study monitor-type catalog on ``builder``."""
    builder.monitor_type(
        "nids",
        "Network IDS (Snort/Bro)",
        data_types=["ids_alert", "net_flow"],
        cost={"cpu": 25, "memory": 2048, "storage": 8, "network": 20, "admin": 12},
        scope=MonitorScope.NETWORK,
        deployable_kinds=[
            AssetKind.FIREWALL,
            AssetKind.LOAD_BALANCER,
            AssetKind.NETWORK_DEVICE,
        ],
        quality=0.9,
        description="Deep packet inspection on all links adjacent to the deployment point",
    )
    builder.monitor_type(
        "flow_collector",
        "NetFlow collector",
        data_types=["net_flow"],
        cost={"cpu": 5, "memory": 256, "storage": 3, "network": 5, "admin": 2},
        scope=MonitorScope.NETWORK,
        deployable_kinds=[
            AssetKind.FIREWALL,
            AssetKind.LOAD_BALANCER,
            AssetKind.NETWORK_DEVICE,
        ],
        quality=0.98,
        description="Flow export from the network device; no payload visibility",
    )
    builder.monitor_type(
        "firewall_logger",
        "Firewall logging",
        data_types=["firewall_log"],
        cost={"cpu": 3, "memory": 128, "storage": 2, "network": 3, "admin": 2},
        scope=MonitorScope.NETWORK,
        deployable_kinds=[AssetKind.FIREWALL],
        quality=0.97,
        description="Allow/deny logging on the packet filter itself",
    )
    builder.monitor_type(
        "waf",
        "Web application firewall",
        data_types=["waf_log"],
        cost={"cpu": 15, "memory": 1024, "storage": 2, "network": 8, "admin": 10},
        scope=MonitorScope.NETWORK,
        deployable_kinds=[AssetKind.LOAD_BALANCER],
        quality=0.92,
        description="Inline HTTP inspection in front of the web tier",
    )
    builder.monitor_type(
        "web_logger",
        "Web server logging",
        data_types=["http_access_log", "http_error_log"],
        cost={"cpu": 2, "memory": 64, "storage": 4, "network": 4, "admin": 1},
        scope=MonitorScope.HOST,
        deployable_kinds=[AssetKind.SERVER],
        quality=0.99,
        description="Access and error logs of the HTTP daemon",
    )
    builder.monitor_type(
        "app_logger",
        "Application logging",
        data_types=["app_log"],
        cost={"cpu": 2, "memory": 128, "storage": 3, "network": 3, "admin": 2},
        scope=MonitorScope.HOST,
        deployable_kinds=[AssetKind.SERVER],
        quality=0.97,
        description="Structured request logging in the application tier",
    )
    builder.monitor_type(
        "db_audit",
        "Database audit logging",
        data_types=["db_audit", "db_slow_query"],
        cost={"cpu": 10, "memory": 512, "storage": 6, "network": 4, "admin": 6},
        scope=MonitorScope.HOST,
        deployable_kinds=[AssetKind.DATABASE],
        quality=0.96,
        description="Statement-level auditing plus slow-query capture",
    )
    builder.monitor_type(
        "auth_logger",
        "Authentication logging",
        data_types=["auth_log"],
        cost={"cpu": 1, "memory": 32, "storage": 1, "network": 1, "admin": 1},
        scope=MonitorScope.HOST,
        deployable_kinds=list(_HOST_KINDS),
        quality=0.99,
        description="PAM/sshd/web-auth attempt logging",
    )
    builder.monitor_type(
        "syslog_agent",
        "Syslog forwarding",
        data_types=["syslog"],
        cost={"cpu": 1, "memory": 32, "storage": 2, "network": 2, "admin": 1},
        scope=MonitorScope.HOST,
        deployable_kinds=list(_HOST_KINDS),
        quality=0.95,
        description="Host syslog stream shipped to the aggregation tier",
    )
    builder.monitor_type(
        "audit_daemon",
        "OS audit daemon (auditd)",
        data_types=["os_audit", "process_accounting"],
        cost={"cpu": 12, "memory": 256, "storage": 10, "network": 6, "admin": 8},
        scope=MonitorScope.HOST,
        deployable_kinds=list(_HOST_KINDS),
        quality=0.93,
        description="Kernel-level syscall and process auditing",
    )
    builder.monitor_type(
        "fim",
        "File integrity monitoring",
        data_types=["file_integrity"],
        cost={"cpu": 4, "memory": 128, "storage": 1, "network": 1, "admin": 3},
        scope=MonitorScope.HOST,
        deployable_kinds=list(_HOST_KINDS),
        quality=0.97,
        description="Hash-based change detection on watched paths",
    )
    builder.monitor_type(
        "ldap_logger",
        "Directory service logging",
        data_types=["ldap_log"],
        cost={"cpu": 2, "memory": 64, "storage": 1, "network": 1, "admin": 2},
        scope=MonitorScope.HOST,
        deployable_kinds=[AssetKind.SERVER],
        quality=0.98,
        description="LDAP operation logging on the directory server",
    )
    return builder


def place_monitors(builder: ModelBuilder, *, auth_asset: str = "auth-1") -> ModelBuilder:
    """Place every monitor type at each compatible asset.

    Network sensors go everywhere their kind constraint allows (each
    firewall, the load balancer, the core switch); host telemetry goes
    on every server/database/workstation.  The LDAP logger is special-
    cased to the directory server — it is meaningless elsewhere.

    The result is the full *deployable* monitor set; the optimizer
    selects the subset to actually run.
    """
    for monitor_type_id in (
        "nids",
        "flow_collector",
        "firewall_logger",
        "waf",
        "web_logger",
        "app_logger",
        "db_audit",
        "auth_logger",
        "syslog_agent",
        "audit_daemon",
        "fim",
    ):
        builder.monitor_everywhere(monitor_type_id)
    builder.monitor("ldap_logger", auth_asset)
    return builder
