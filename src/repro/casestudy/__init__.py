"""Case-study models: the paper's use case and synthetic scaling models.

* :func:`~repro.casestudy.webservice.enterprise_web_service` — the
  enterprise Web service from the paper's evaluation: DMZ topology,
  full monitor catalog, CAPEC-style Web attack catalog;
* :func:`~repro.casestudy.scaling.synthetic_model` — seeded random but
  structurally realistic models at parameterized size, used by the
  scalability experiments (F3/F4).
"""

from repro.casestudy.attack_catalog import ATTACK_CLASSES, add_attacks
from repro.casestudy.data_catalog import add_data_types
from repro.casestudy.monitor_catalog import add_monitor_types, place_monitors
from repro.casestudy.scada import scada_substation
from repro.casestudy.scaling import ScalingConfig, synthetic_model
from repro.casestudy.webservice import enterprise_web_service

__all__ = [
    "ATTACK_CLASSES",
    "add_attacks",
    "add_data_types",
    "add_monitor_types",
    "place_monitors",
    "ScalingConfig",
    "scada_substation",
    "synthetic_model",
    "enterprise_web_service",
]
