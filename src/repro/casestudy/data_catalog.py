"""Data-type catalog for the enterprise Web service case study.

Fifteen data types covering the monitoring stack of a mid-2010s
enterprise Web deployment — the period the paper evaluates.  Field sets
matter: they drive the richness metric, and deliberately overlap
(``src_ip`` appears in flows, IDS alerts, access logs and firewall logs)
so redundancy and richness pull deployments in different directions.
"""

from __future__ import annotations

from repro.core.builder import ModelBuilder

__all__ = ["add_data_types"]


def add_data_types(builder: ModelBuilder) -> ModelBuilder:
    """Register the full case-study data-type catalog on ``builder``."""
    builder.data_type(
        "net_flow",
        "Network flow record",
        fields=["src_ip", "dst_ip", "src_port", "dst_port", "protocol", "bytes", "packets", "duration"],
        description="NetFlow/IPFIX per-connection summary",
        volume_hint=50_000,
    )
    builder.data_type(
        "ids_alert",
        "Network IDS alert",
        fields=["signature_id", "src_ip", "dst_ip", "payload_excerpt", "severity", "classification"],
        description="Signature match from a network intrusion detection system",
        volume_hint=200,
    )
    builder.data_type(
        "http_access_log",
        "Web server access log",
        fields=["src_ip", "url", "method", "status", "user_agent", "referer", "response_bytes"],
        description="Per-request access log (Apache/nginx combined format)",
        volume_hint=30_000,
    )
    builder.data_type(
        "http_error_log",
        "Web server error log",
        fields=["src_ip", "url", "error_message", "module"],
        description="Server-side errors and module diagnostics",
        volume_hint=500,
    )
    builder.data_type(
        "waf_log",
        "Web application firewall log",
        fields=["src_ip", "url", "rule_id", "action", "payload_excerpt", "anomaly_score"],
        description="ModSecurity-style request inspection verdicts",
        volume_hint=1_000,
    )
    builder.data_type(
        "firewall_log",
        "Firewall connection log",
        fields=["src_ip", "dst_ip", "dst_port", "action", "rule_id", "bytes"],
        description="Allow/deny decisions at a packet filter",
        volume_hint=40_000,
    )
    builder.data_type(
        "auth_log",
        "Authentication log",
        fields=["user", "source_ip", "outcome", "auth_method", "service"],
        description="Login attempts and their outcomes (sshd, PAM, web auth)",
        volume_hint=2_000,
    )
    builder.data_type(
        "syslog",
        "System log",
        fields=["facility", "severity", "process", "message"],
        description="General-purpose host syslog stream",
        volume_hint=10_000,
    )
    builder.data_type(
        "os_audit",
        "OS audit trail",
        fields=["syscall", "process", "uid", "path", "arguments", "exit_code"],
        description="Kernel audit records (auditd): syscalls, execs, file access",
        volume_hint=100_000,
    )
    builder.data_type(
        "file_integrity",
        "File integrity event",
        fields=["path", "change_type", "hash_before", "hash_after", "actor_uid"],
        description="Tripwire/OSSEC-style change detection on watched paths",
        volume_hint=50,
    )
    builder.data_type(
        "process_accounting",
        "Process accounting record",
        fields=["process", "parent_process", "uid", "cpu_seconds", "start_time"],
        description="Per-process lifecycle accounting",
        volume_hint=20_000,
    )
    builder.data_type(
        "db_audit",
        "Database audit log",
        fields=["db_user", "query_text", "table", "rows_affected", "source_host"],
        description="Statement-level database audit trail",
        volume_hint=15_000,
    )
    builder.data_type(
        "db_slow_query",
        "Database slow-query log",
        fields=["query_text", "duration", "rows_examined", "db_user"],
        description="Queries exceeding the latency threshold",
        volume_hint=100,
    )
    builder.data_type(
        "app_log",
        "Application log",
        fields=["request_id", "endpoint", "session_id", "user", "outcome", "latency"],
        description="Structured application-tier request log",
        volume_hint=25_000,
    )
    builder.data_type(
        "ldap_log",
        "Directory service log",
        fields=["bind_dn", "operation", "result", "source_ip"],
        description="LDAP bind/search/modify operations",
        volume_hint=3_000,
    )
    return builder
