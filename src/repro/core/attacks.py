"""Intrusion events, attack steps, and attacks.

The top layer of the paper's model describes *what we want to detect*.
An :class:`Event` is an atomic intrusion activity occurring at an asset
(e.g. "SQL query anomaly at db-1").  An :class:`Attack` is an ordered
sequence of :class:`AttackStep`\\ s, each referring to an event; steps
may be shared between attacks (reconnaissance steps typically are),
which is what makes joint monitor placement strictly better than
per-attack placement.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Event", "AttackStep", "Attack"]


@dataclass(frozen=True, slots=True)
class Event:
    """An atomic intrusion event occurring at a specific asset.

    Parameters
    ----------
    event_id:
        Unique identifier within a model.
    name:
        Human-readable label.
    asset_id:
        The asset at which the event manifests; monitors must observe
        this asset to collect evidence of the event.
    """

    event_id: str
    name: str
    asset_id: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.event_id:
            raise ValueError("event_id must be a non-empty string")
        if not self.asset_id:
            raise ValueError(f"event {self.event_id!r} must occur at an asset")


@dataclass(frozen=True, slots=True)
class AttackStep:
    """One step of an attack: a reference to an event plus its weight.

    ``weight`` expresses the step's relative importance to detecting
    the enclosing attack; weights need not sum to one (coverage metrics
    normalize).  ``required`` marks steps the attack cannot proceed
    without — a deployment covering every required step of an attack is
    said to *fully cover* it even if optional steps remain unobserved.
    """

    event_id: str
    weight: float = 1.0
    required: bool = True

    def __post_init__(self) -> None:
        if not self.event_id:
            raise ValueError("attack step must reference an event")
        if self.weight <= 0:
            raise ValueError(f"attack step weight must be > 0, got {self.weight!r}")


@dataclass(frozen=True, slots=True)
class Attack:
    """A multi-step intrusion, the unit of the utility metrics.

    Parameters
    ----------
    attack_id:
        Unique identifier within a model.
    name:
        Human-readable label (case study uses CAPEC-style names).
    steps:
        Ordered steps; an attack must have at least one.
    importance:
        Relative weight of this attack in aggregate utility, ``(0, 1]``.
        The case study derives it from likelihood and impact.
    """

    attack_id: str
    name: str
    steps: tuple[AttackStep, ...]
    importance: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.attack_id:
            raise ValueError("attack_id must be a non-empty string")
        if not self.steps:
            raise ValueError(f"attack {self.attack_id!r} must have at least one step")
        if not 0.0 < self.importance <= 1.0:
            raise ValueError(
                f"attack importance must lie in (0, 1], got {self.importance!r} "
                f"for attack {self.attack_id!r}"
            )
        if len({s.event_id for s in self.steps}) != len(self.steps):
            raise ValueError(f"attack {self.attack_id!r} references an event in two steps")

    @property
    def event_ids(self) -> tuple[str, ...]:
        """The event ids of the steps, in attack order."""
        return tuple(s.event_id for s in self.steps)

    @property
    def required_event_ids(self) -> frozenset[str]:
        """Event ids of the required steps."""
        return frozenset(s.event_id for s in self.steps if s.required)

    @property
    def total_step_weight(self) -> float:
        """Sum of step weights (the coverage normalizer)."""
        return sum(s.weight for s in self.steps)

    def step_for_event(self, event_id: str) -> AttackStep:
        """The step referencing ``event_id``.

        Raises
        ------
        KeyError
            If no step of this attack references the event.
        """
        for step in self.steps:
            if step.event_id == event_id:
                return step
        raise KeyError(f"attack {self.attack_id!r} has no step for event {event_id!r}")
