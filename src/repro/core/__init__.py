"""Core system model: assets, monitors, data, events, and attacks.

This package implements the paper's three-layer model:

1. **Assets & topology** (:mod:`repro.core.assets`) — what the system is
   made of and how it is connected;
2. **Monitors & data** (:mod:`repro.core.monitors`,
   :mod:`repro.core.data`) — what can be observed, where, at what cost;
3. **Events & attacks** (:mod:`repro.core.attacks`) — what must be
   detected, expressed as multi-step intrusions over events.

:class:`~repro.core.model.SystemModel` assembles the layers and exposes
the precomputed coverage relation consumed by the metrics
(:mod:`repro.metrics`) and the optimizer (:mod:`repro.optimize`).
"""

from repro.core.assets import Asset, AssetKind, Link, Topology
from repro.core.attacks import Attack, AttackStep, Event
from repro.core.builder import ModelBuilder
from repro.core.data import DataField, DataType, Evidence
from repro.core.model import SystemModel
from repro.core.monitors import (
    DEFAULT_COST_DIMENSIONS,
    CostVector,
    Monitor,
    MonitorScope,
    MonitorType,
)
from repro.core.serialization import load_model, model_from_dict, model_to_dict, save_model
from repro.core.validation import Finding, Severity, audit_model

__all__ = [
    "Asset",
    "AssetKind",
    "Link",
    "Topology",
    "Attack",
    "AttackStep",
    "Event",
    "ModelBuilder",
    "DataField",
    "DataType",
    "Evidence",
    "SystemModel",
    "DEFAULT_COST_DIMENSIONS",
    "CostVector",
    "Monitor",
    "MonitorScope",
    "MonitorType",
    "load_model",
    "model_from_dict",
    "model_to_dict",
    "save_model",
    "Finding",
    "Severity",
    "audit_model",
]
