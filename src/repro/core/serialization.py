"""JSON serialization for system models.

Models round-trip through a versioned, human-editable JSON document so
case studies can be stored in files, diffed, and exchanged.  The format
is deliberately flat — one array per entity layer — mirroring how the
paper's methodology presents its model tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.assets import AssetKind, Topology, Asset
from repro.core.attacks import Attack, AttackStep, Event
from repro.core.data import DataField, DataType, Evidence
from repro.core.monitors import CostVector, Monitor, MonitorScope, MonitorType
from repro.core.model import SystemModel
from repro.errors import SerializationError

__all__ = ["model_to_dict", "model_from_dict", "save_model", "load_model", "FORMAT_VERSION"]

#: Version stamp written into every document; bumped on breaking changes.
FORMAT_VERSION = 1


def model_to_dict(model: SystemModel) -> dict[str, Any]:
    """Serialize ``model`` into a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": model.name,
        "assets": [
            {
                "id": a.asset_id,
                "name": a.name,
                "kind": a.kind.value,
                "zone": a.zone,
                "criticality": a.criticality,
                "tags": sorted(a.tags),
            }
            for a in model.assets.values()
        ],
        "links": [
            {"a": link.a, "b": link.b, "medium": link.medium} for link in model.topology.links
        ],
        "data_types": [
            {
                "id": d.data_type_id,
                "name": d.name,
                "fields": [{"name": f.name, "description": f.description} for f in d.fields],
                "description": d.description,
                "volume_hint": d.volume_hint,
            }
            for d in model.data_types.values()
        ],
        "monitor_types": [
            {
                "id": t.monitor_type_id,
                "name": t.name,
                "data_types": list(t.data_type_ids),
                "cost": t.cost.as_dict(),
                "scope": t.scope.value,
                "deployable_kinds": (
                    None if t.deployable_kinds is None else sorted(k.value for k in t.deployable_kinds)
                ),
                "quality": t.quality,
                "description": t.description,
            }
            for t in model.monitor_types.values()
        ],
        "monitors": [
            {
                "id": m.monitor_id,
                "type": m.monitor_type_id,
                "asset": m.asset_id,
                "cost_multiplier": m.cost_multiplier,
            }
            for m in model.monitors.values()
        ],
        "events": [
            {"id": e.event_id, "name": e.name, "asset": e.asset_id, "description": e.description}
            for e in model.events.values()
        ],
        "evidence": [
            {
                "data_type": ev.data_type_id,
                "event": ev.event_id,
                "weight": ev.weight,
                "fields_used": sorted(ev.fields_used),
            }
            for ev in model.evidence
        ],
        "attacks": [
            {
                "id": a.attack_id,
                "name": a.name,
                "importance": a.importance,
                "description": a.description,
                "steps": [
                    {"event": s.event_id, "weight": s.weight, "required": s.required}
                    for s in a.steps
                ],
            }
            for a in model.attacks.values()
        ],
    }


def model_from_dict(document: dict[str, Any]) -> SystemModel:
    """Deserialize a document produced by :func:`model_to_dict`.

    Raises
    ------
    repro.errors.SerializationError
        On malformed documents or unsupported format versions.
    """
    try:
        version = document.get("format_version", FORMAT_VERSION)
        if version != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported model format version {version!r} (expected {FORMAT_VERSION})"
            )

        topology = Topology()
        for entry in document.get("assets", []):
            topology.add_asset(
                Asset(
                    asset_id=entry["id"],
                    name=entry.get("name", entry["id"]),
                    kind=AssetKind(entry.get("kind", "host")),
                    zone=entry.get("zone", ""),
                    criticality=entry.get("criticality", 0.5),
                    tags=frozenset(entry.get("tags", ())),
                )
            )
        for entry in document.get("links", []):
            topology.add_link(entry["a"], entry["b"], entry.get("medium", "lan"))

        data_types = [
            DataType(
                data_type_id=entry["id"],
                name=entry.get("name", entry["id"]),
                fields=tuple(
                    DataField(f["name"], f.get("description", ""))
                    for f in entry.get("fields", ())
                ),
                description=entry.get("description", ""),
                volume_hint=entry.get("volume_hint", 100.0),
            )
            for entry in document.get("data_types", [])
        ]

        monitor_types = [
            MonitorType(
                monitor_type_id=entry["id"],
                name=entry.get("name", entry["id"]),
                data_type_ids=tuple(entry["data_types"]),
                cost=CostVector(entry.get("cost", {})),
                scope=MonitorScope(entry.get("scope", "host")),
                deployable_kinds=(
                    None
                    if entry.get("deployable_kinds") is None
                    else frozenset(AssetKind(k) for k in entry["deployable_kinds"])
                ),
                quality=entry.get("quality", 0.95),
                description=entry.get("description", ""),
            )
            for entry in document.get("monitor_types", [])
        ]

        monitors = [
            Monitor(
                monitor_id=entry["id"],
                monitor_type_id=entry["type"],
                asset_id=entry["asset"],
                cost_multiplier=entry.get("cost_multiplier", 1.0),
            )
            for entry in document.get("monitors", [])
        ]

        events = [
            Event(
                event_id=entry["id"],
                name=entry.get("name", entry["id"]),
                asset_id=entry["asset"],
                description=entry.get("description", ""),
            )
            for entry in document.get("events", [])
        ]

        evidence = [
            Evidence(
                data_type_id=entry["data_type"],
                event_id=entry["event"],
                weight=entry.get("weight", 1.0),
                fields_used=frozenset(entry.get("fields_used", ())),
            )
            for entry in document.get("evidence", [])
        ]

        attacks = [
            Attack(
                attack_id=entry["id"],
                name=entry.get("name", entry["id"]),
                steps=tuple(
                    AttackStep(
                        event_id=s["event"],
                        weight=s.get("weight", 1.0),
                        required=s.get("required", True),
                    )
                    for s in entry["steps"]
                ),
                importance=entry.get("importance", 1.0),
                description=entry.get("description", ""),
            )
            for entry in document.get("attacks", [])
        ]

        return SystemModel(
            name=document.get("name", "model"),
            topology=topology,
            data_types=data_types,
            monitor_types=monitor_types,
            monitors=monitors,
            events=events,
            evidence=evidence,
            attacks=attacks,
        )
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed model document: {exc}") from exc


def save_model(model: SystemModel, path: str | Path) -> None:
    """Write ``model`` to ``path`` as pretty-printed, strict JSON.

    Serialization goes through :mod:`repro.export.jsonsafe` so a model
    carrying a non-finite float (say, a NaN criticality from a buggy
    upstream computation) fails loudly here instead of producing a
    document that ``load_model`` — or any spec-compliant parser —
    rejects later.
    """
    # Imported here, not at module top: repro.export's package __init__
    # pulls in the optimize stack, whose metrics imports land back on
    # repro.core while core/__init__ is still importing this module —
    # an eager import would close that cycle.
    from repro.export.jsonsafe import dumps as strict_dumps

    Path(path).write_text(strict_dumps(model_to_dict(model), indent=2, sort_keys=False))


def load_model(path: str | Path) -> SystemModel:
    """Read a model previously written by :func:`save_model`."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return model_from_dict(document)
