"""Assets and the asset topology.

The bottom layer of the paper's system model is the set of *assets*:
hosts, network devices, and services that make up the monitored system,
together with the communication topology connecting them.  Monitors are
deployed *at* assets, and intrusion events *occur at* assets, so the
asset layer anchors both the cost side (where can a monitor go) and the
utility side (which events can a monitor observe) of the methodology.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import DuplicateIdError, UnknownIdError

__all__ = ["AssetKind", "Asset", "Link", "Topology"]


class AssetKind(str, enum.Enum):
    """Coarse classification of an asset, used to scope monitor deployability.

    The enumeration mirrors the asset classes in the paper's enterprise
    Web service use case: perimeter devices, network fabric, server
    hosts, and the services running on them.
    """

    HOST = "host"
    SERVER = "server"
    WORKSTATION = "workstation"
    NETWORK_DEVICE = "network_device"
    FIREWALL = "firewall"
    LOAD_BALANCER = "load_balancer"
    SERVICE = "service"
    DATABASE = "database"
    STORAGE = "storage"
    EXTERNAL = "external"

    def is_network_fabric(self) -> bool:
        """Whether assets of this kind forward traffic for other assets."""
        return self in _NETWORK_FABRIC_KINDS


_NETWORK_FABRIC_KINDS = frozenset(
    {AssetKind.NETWORK_DEVICE, AssetKind.FIREWALL, AssetKind.LOAD_BALANCER}
)


@dataclass(frozen=True, slots=True)
class Asset:
    """A monitorable system component.

    Parameters
    ----------
    asset_id:
        Unique identifier within a :class:`~repro.core.model.SystemModel`.
    name:
        Human-readable label used in reports.
    kind:
        Coarse classification, see :class:`AssetKind`.
    zone:
        Optional network zone (e.g. ``"dmz"``, ``"internal"``); purely
        descriptive but used by the case study and by report grouping.
    criticality:
        Relative importance of the asset in ``[0, 1]``; feeds asset-
        weighted coverage metrics.
    tags:
        Free-form labels (e.g. ``{"os:linux", "pci"}``).
    """

    asset_id: str
    name: str
    kind: AssetKind
    zone: str = ""
    criticality: float = 0.5
    tags: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.asset_id:
            raise ValueError("asset_id must be a non-empty string")
        if not 0.0 <= self.criticality <= 1.0:
            raise ValueError(
                f"criticality must lie in [0, 1], got {self.criticality!r} "
                f"for asset {self.asset_id!r}"
            )

    def has_tag(self, tag: str) -> bool:
        """Whether the asset carries ``tag``."""
        return tag in self.tags


@dataclass(frozen=True, slots=True)
class Link:
    """An undirected communication link between two assets.

    Links determine which assets a network-scoped monitor can observe:
    a NIDS deployed on a firewall sees the traffic of every asset the
    firewall is linked to.
    """

    a: str
    b: str
    medium: str = "lan"

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"self-link on asset {self.a!r} is not allowed")

    @property
    def endpoints(self) -> frozenset[str]:
        """The unordered pair of linked asset ids."""
        return frozenset((self.a, self.b))

    def other(self, asset_id: str) -> str:
        """The endpoint opposite ``asset_id``.

        Raises
        ------
        ValueError
            If ``asset_id`` is not an endpoint of this link.
        """
        if asset_id == self.a:
            return self.b
        if asset_id == self.b:
            return self.a
        raise ValueError(f"{asset_id!r} is not an endpoint of link {self.a!r}--{self.b!r}")


class Topology:
    """The asset graph: assets as nodes, communication links as edges.

    The topology is a mutable registry used while building a model; once
    embedded in a :class:`~repro.core.model.SystemModel` it should be
    treated as read-only.
    """

    def __init__(self) -> None:
        self._assets: dict[str, Asset] = {}
        self._links: list[Link] = []
        self._adjacency: dict[str, set[str]] = {}

    # -- construction ---------------------------------------------------

    def add_asset(self, asset: Asset) -> Asset:
        """Register ``asset``; raises :class:`DuplicateIdError` on reuse."""
        if asset.asset_id in self._assets:
            raise DuplicateIdError("asset", asset.asset_id)
        self._assets[asset.asset_id] = asset
        self._adjacency[asset.asset_id] = set()
        return asset

    def add_link(self, a: str, b: str, medium: str = "lan") -> Link:
        """Connect assets ``a`` and ``b``; both must already exist."""
        for endpoint in (a, b):
            if endpoint not in self._assets:
                raise UnknownIdError("asset", endpoint, context=f"link {a!r}--{b!r}")
        link = Link(a, b, medium)
        self._links.append(link)
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        return link

    # -- queries ----------------------------------------------------------

    def __contains__(self, asset_id: str) -> bool:
        return asset_id in self._assets

    def __len__(self) -> int:
        return len(self._assets)

    @property
    def assets(self) -> dict[str, Asset]:
        """Mapping of asset id to :class:`Asset` (insertion-ordered)."""
        return dict(self._assets)

    @property
    def links(self) -> list[Link]:
        """All registered links, in insertion order."""
        return list(self._links)

    def asset(self, asset_id: str) -> Asset:
        """Look up an asset; raises :class:`UnknownIdError` if absent."""
        try:
            return self._assets[asset_id]
        except KeyError:
            raise UnknownIdError("asset", asset_id) from None

    def asset_ids(self) -> list[str]:
        """All asset ids, in insertion order."""
        return list(self._assets)

    def neighbors(self, asset_id: str) -> frozenset[str]:
        """Ids of assets directly linked to ``asset_id``."""
        if asset_id not in self._adjacency:
            raise UnknownIdError("asset", asset_id)
        return frozenset(self._adjacency[asset_id])

    def assets_of_kind(self, kind: AssetKind) -> list[Asset]:
        """All assets of the given kind, in insertion order."""
        return [a for a in self._assets.values() if a.kind == kind]

    def assets_in_zone(self, zone: str) -> list[Asset]:
        """All assets whose ``zone`` equals ``zone``."""
        return [a for a in self._assets.values() if a.zone == zone]

    def observation_domain(self, asset_id: str, network_scope: bool) -> frozenset[str]:
        """Assets observable by a monitor deployed at ``asset_id``.

        Host-scoped monitors observe only their own asset.  Network-scoped
        monitors additionally observe every directly linked asset, which
        models a packet tap on the links terminating at the deployment
        point (the semantics used throughout the case study).
        """
        if asset_id not in self._assets:
            raise UnknownIdError("asset", asset_id)
        if not network_scope:
            return frozenset((asset_id,))
        return frozenset((asset_id,)) | self.neighbors(asset_id)

    def connected_components(self) -> list[frozenset[str]]:
        """Connected components of the asset graph (for validation)."""
        unvisited = set(self._assets)
        components: list[frozenset[str]] = []
        while unvisited:
            root = next(iter(unvisited))
            stack = [root]
            component: set[str] = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(self._adjacency[node] - component)
            unvisited -= component
            components.append(frozenset(component))
        return components
