"""Data types, fields, and the evidence relation.

The middle layer of the paper's model describes *what monitors produce*
and *how that data relates to intrusions*.  A :class:`DataType` is a
class of records a monitor can emit (an Apache access-log line, a
NetFlow record, a syscall audit event) with named :class:`DataField`\\ s.
An :class:`Evidence` entry states that records of a given data type,
observed at the asset where an intrusion event occurs, constitute
evidence for that event with a given weight.

Separating data types from monitors is what makes the richness and
redundancy metrics meaningful: two different monitors may produce the
same data type (redundant evidence), and one monitor may produce several
data types with distinct fields (richer forensic record).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DataField", "DataType", "Evidence"]


@dataclass(frozen=True, slots=True)
class DataField:
    """A named field within a data type (e.g. ``src_ip`` in a flow record)."""

    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("data field name must be non-empty")


@dataclass(frozen=True, slots=True)
class DataType:
    """A class of records that monitors can generate.

    Parameters
    ----------
    data_type_id:
        Unique identifier within a model.
    name:
        Human-readable label.
    fields:
        The named fields each record of this type carries.  Field sets
        drive the *richness* metric: a deployment that captures more
        distinct fields supports deeper forensic analysis.
    volume_hint:
        Rough records-per-hour magnitude under normal load; used by the
        simulation substrate to scale benign noise, not by the metrics.
    """

    data_type_id: str
    name: str
    fields: tuple[DataField, ...] = ()
    description: str = ""
    volume_hint: float = 100.0

    def __post_init__(self) -> None:
        if not self.data_type_id:
            raise ValueError("data_type_id must be a non-empty string")
        if self.volume_hint < 0:
            raise ValueError(
                f"volume_hint must be non-negative, got {self.volume_hint!r} "
                f"for data type {self.data_type_id!r}"
            )
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate field names in data type {self.data_type_id!r}")

    @property
    def field_names(self) -> frozenset[str]:
        """The set of field names carried by this data type."""
        return frozenset(f.name for f in self.fields)


@dataclass(frozen=True, slots=True)
class Evidence:
    """A weighted link from a data type to an intrusion event.

    ``weight`` in ``(0, 1]`` expresses how strongly records of
    ``data_type_id`` indicate the occurrence of ``event_id`` when
    observed at the event's asset: ``1.0`` is a definitive indicator
    (e.g. a database audit record for a malicious query), lower values
    are circumstantial (e.g. a flow record for the same query).

    ``fields_used`` optionally restricts which fields of the data type
    actually contribute to the evidence; when empty, all fields count.
    """

    data_type_id: str
    event_id: str
    weight: float = 1.0
    fields_used: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.data_type_id:
            raise ValueError("evidence data_type_id must be non-empty")
        if not self.event_id:
            raise ValueError("evidence event_id must be non-empty")
        if not 0.0 < self.weight <= 1.0:
            raise ValueError(
                f"evidence weight must lie in (0, 1], got {self.weight!r} "
                f"({self.data_type_id!r} -> {self.event_id!r})"
            )

    @property
    def key(self) -> tuple[str, str]:
        """The (data type, event) pair identifying this evidence entry."""
        return (self.data_type_id, self.event_id)
