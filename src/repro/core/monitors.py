"""Monitor types, deployable monitors, and deployment costs.

A :class:`MonitorType` describes a *kind* of monitor (a NIDS, a web
server access log, a host audit daemon): the data types it generates,
where it may be deployed, whether it observes only its own asset or the
surrounding network, and what it costs to run.  A :class:`Monitor` is a
concrete deployable instance — a monitor type placed at a specific
asset — and is the unit over which the placement optimization decides.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from repro.core.assets import AssetKind

__all__ = ["CostVector", "MonitorScope", "MonitorType", "Monitor", "DEFAULT_COST_DIMENSIONS"]

#: The cost dimensions used throughout the case study, mirroring the
#: operational cost categories the paper's methodology accounts for:
#: compute and memory overhead on the monitored host, storage for the
#: generated data, network bandwidth for shipping it, and recurring
#: administrative effort to maintain the monitor.
DEFAULT_COST_DIMENSIONS: tuple[str, ...] = ("cpu", "memory", "storage", "network", "admin")


@dataclass(frozen=True, slots=True)
class CostVector:
    """An immutable multi-dimensional deployment cost.

    Costs are non-negative and keyed by dimension name.  Missing
    dimensions are treated as zero, so vectors with different dimension
    sets combine naturally.
    """

    values: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        frozen: dict[str, float] = {}
        for dim, value in dict(self.values).items():
            value = float(value)
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"cost for dimension {dim!r} must be finite and >= 0, got {value!r}")
            if value != 0.0:
                frozen[dim] = value
        object.__setattr__(self, "values", frozen)

    # -- constructors -----------------------------------------------------

    @classmethod
    def zero(cls) -> "CostVector":
        """The all-zero cost vector."""
        return cls({})

    @classmethod
    def uniform(cls, value: float, dimensions: Iterable[str] = DEFAULT_COST_DIMENSIONS) -> "CostVector":
        """A vector with ``value`` in every listed dimension."""
        return cls({dim: value for dim in dimensions})

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "CostVector") -> "CostVector":
        dims = set(self.values) | set(other.values)
        return CostVector({d: self.get(d) + other.get(d) for d in dims})

    def __mul__(self, factor: float) -> "CostVector":
        if factor < 0:
            raise ValueError(f"cost scaling factor must be >= 0, got {factor!r}")
        return CostVector({d: v * factor for d, v in self.values.items()})

    __rmul__ = __mul__

    @classmethod
    def total(cls, vectors: Iterable["CostVector"]) -> "CostVector":
        """Sum an iterable of cost vectors."""
        acc = cls.zero()
        for v in vectors:
            acc = acc + v
        return acc

    # -- queries -----------------------------------------------------------

    def get(self, dimension: str) -> float:
        """The cost along ``dimension`` (zero when absent)."""
        return self.values.get(dimension, 0.0)

    @property
    def dimensions(self) -> frozenset[str]:
        """Dimensions with a non-zero entry."""
        return frozenset(self.values)

    def scalarize(self, weights: Mapping[str, float] | None = None) -> float:
        """Collapse to a single number: weighted sum over dimensions.

        With ``weights`` omitted every dimension contributes with weight 1,
        which is the scalar-budget ablation used in experiment F6.
        """
        if weights is None:
            return sum(self.values.values())
        return sum(v * weights.get(d, 0.0) for d, v in self.values.items())

    def fits_within(self, budget: "CostVector") -> bool:
        """Whether this cost is dominated by ``budget`` in every dimension."""
        return all(v <= budget.get(d) for d, v in self.values.items())

    def is_zero(self) -> bool:
        """Whether every dimension is zero."""
        return not self.values

    def as_dict(self) -> dict[str, float]:
        """A plain-dict copy of the non-zero entries."""
        return dict(self.values)


class MonitorScope(str, enum.Enum):
    """What a deployed monitor can observe.

    ``HOST`` monitors (logs, audit daemons) observe only the asset they
    run on.  ``NETWORK`` monitors (NIDS, flow collectors, firewall logs)
    observe their asset and every directly linked asset, modeling a tap
    on the adjacent links.
    """

    HOST = "host"
    NETWORK = "network"


@dataclass(frozen=True, slots=True)
class MonitorType:
    """A class of monitor that can be instantiated at compatible assets.

    Parameters
    ----------
    monitor_type_id:
        Unique identifier within a model.
    name:
        Human-readable label.
    data_type_ids:
        The data types every instance of this monitor generates.
    cost:
        Baseline per-instance deployment cost; individual
        :class:`Monitor` instances may scale it via ``cost_multiplier``.
    scope:
        Host- or network-scoped observation, see :class:`MonitorScope`.
    deployable_kinds:
        Asset kinds this monitor may be placed at; ``None`` means any.
    quality:
        Probability in ``(0, 1]`` that the monitor actually records an
        observable event (used by the simulation substrate to model
        missed observations; the static metrics treat monitors as ideal,
        exactly as the paper's model does).
    """

    monitor_type_id: str
    name: str
    data_type_ids: tuple[str, ...]
    cost: CostVector = field(default_factory=CostVector.zero)
    scope: MonitorScope = MonitorScope.HOST
    deployable_kinds: frozenset[AssetKind] | None = None
    quality: float = 0.95
    description: str = ""

    def __post_init__(self) -> None:
        if not self.monitor_type_id:
            raise ValueError("monitor_type_id must be a non-empty string")
        if not self.data_type_ids:
            raise ValueError(f"monitor type {self.monitor_type_id!r} must generate at least one data type")
        if len(set(self.data_type_ids)) != len(self.data_type_ids):
            raise ValueError(f"duplicate data types on monitor type {self.monitor_type_id!r}")
        if not 0.0 < self.quality <= 1.0:
            raise ValueError(
                f"quality must lie in (0, 1], got {self.quality!r} "
                f"for monitor type {self.monitor_type_id!r}"
            )

    def can_deploy_at_kind(self, kind: AssetKind) -> bool:
        """Whether instances may be placed at assets of ``kind``."""
        return self.deployable_kinds is None or kind in self.deployable_kinds


@dataclass(frozen=True, slots=True)
class Monitor:
    """A concrete deployable monitor: a monitor type placed at an asset.

    This is the decision unit of the placement problem — the optimizer
    selects a subset of the model's monitors.

    Parameters
    ----------
    monitor_id:
        Unique identifier within a model.
    monitor_type_id:
        The :class:`MonitorType` being instantiated.
    asset_id:
        The asset the instance is deployed at.
    cost_multiplier:
        Scales the type's baseline cost for this placement (e.g. a NIDS
        on a core switch inspects more traffic and costs more).
    """

    monitor_id: str
    monitor_type_id: str
    asset_id: str
    cost_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if not self.monitor_id:
            raise ValueError("monitor_id must be a non-empty string")
        if self.cost_multiplier < 0:
            raise ValueError(
                f"cost_multiplier must be >= 0, got {self.cost_multiplier!r} "
                f"for monitor {self.monitor_id!r}"
            )

    def effective_cost(self, monitor_type: MonitorType) -> CostVector:
        """The placement-specific cost: type baseline times multiplier."""
        if monitor_type.monitor_type_id != self.monitor_type_id:
            raise ValueError(
                f"monitor {self.monitor_id!r} has type {self.monitor_type_id!r}, "
                f"not {monitor_type.monitor_type_id!r}"
            )
        return monitor_type.cost * self.cost_multiplier
