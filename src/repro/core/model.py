"""The assembled system model.

:class:`SystemModel` gathers the three layers of the paper's model —
assets/topology, monitors/data, and events/attacks — validates their
referential integrity, and precomputes the cross-layer indices that the
metrics and the optimizer consume:

* which monitors can provide evidence for which events (the *coverage
  relation*), derived from monitor placement, observation scope, the
  data types each monitor generates, and the data-to-event evidence
  entries; and
* which attacks each event participates in.

Models are built through :class:`~repro.core.builder.ModelBuilder` (or
deserialized); once constructed they are immutable from the caller's
perspective, and all derived indices are computed eagerly so metric and
optimizer code paths are pure lookups.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.assets import Asset, Topology
from repro.core.attacks import Attack, Event
from repro.core.data import DataType, Evidence
from repro.core.monitors import CostVector, Monitor, MonitorScope, MonitorType
from repro.errors import UnknownIdError, ValidationError

__all__ = ["SystemModel"]


class SystemModel:
    """An immutable, fully-indexed security monitoring model.

    Construct via :class:`~repro.core.builder.ModelBuilder`; the raw
    constructor validates referential integrity and raises
    :class:`~repro.errors.ValidationError` listing every problem found.
    """

    def __init__(
        self,
        *,
        name: str,
        topology: Topology,
        data_types: Iterable[DataType],
        monitor_types: Iterable[MonitorType],
        monitors: Iterable[Monitor],
        events: Iterable[Event],
        evidence: Iterable[Evidence],
        attacks: Iterable[Attack],
    ) -> None:
        self.name = name
        self._topology = topology
        self._data_types = {d.data_type_id: d for d in data_types}
        self._monitor_types = {t.monitor_type_id: t for t in monitor_types}
        self._monitors = {m.monitor_id: m for m in monitors}
        self._events = {e.event_id: e for e in events}
        self._evidence = list(evidence)
        self._attacks = {a.attack_id: a for a in attacks}

        problems = self._check_integrity()
        if problems:
            raise ValidationError(problems)

        self._build_indices()

    # ------------------------------------------------------------------
    # integrity checking
    # ------------------------------------------------------------------

    def _check_integrity(self) -> list[str]:
        problems: list[str] = []

        for type_id, mtype in self._monitor_types.items():
            for dt in mtype.data_type_ids:
                if dt not in self._data_types:
                    problems.append(f"monitor type {type_id!r} generates unknown data type {dt!r}")

        for monitor_id, monitor in self._monitors.items():
            mtype = self._monitor_types.get(monitor.monitor_type_id)
            if mtype is None:
                problems.append(f"monitor {monitor_id!r} has unknown type {monitor.monitor_type_id!r}")
            if monitor.asset_id not in self._topology:
                problems.append(f"monitor {monitor_id!r} is placed at unknown asset {monitor.asset_id!r}")
            elif mtype is not None:
                kind = self._topology.asset(monitor.asset_id).kind
                if not mtype.can_deploy_at_kind(kind):
                    problems.append(
                        f"monitor {monitor_id!r} of type {mtype.monitor_type_id!r} "
                        f"is not deployable at assets of kind {kind.value!r}"
                    )

        for event_id, event in self._events.items():
            if event.asset_id not in self._topology:
                problems.append(f"event {event_id!r} occurs at unknown asset {event.asset_id!r}")

        seen_pairs: set[tuple[str, str]] = set()
        for ev in self._evidence:
            if ev.data_type_id not in self._data_types:
                problems.append(f"evidence references unknown data type {ev.data_type_id!r}")
            if ev.event_id not in self._events:
                problems.append(f"evidence references unknown event {ev.event_id!r}")
            if ev.key in seen_pairs:
                problems.append(f"duplicate evidence entry {ev.key!r}")
            seen_pairs.add(ev.key)
            if ev.data_type_id in self._data_types and ev.fields_used:
                known = self._data_types[ev.data_type_id].field_names
                for fname in ev.fields_used - known:
                    problems.append(
                        f"evidence {ev.key!r} uses field {fname!r} absent from "
                        f"data type {ev.data_type_id!r}"
                    )

        for attack_id, attack in self._attacks.items():
            for step in attack.steps:
                if step.event_id not in self._events:
                    problems.append(f"attack {attack_id!r} references unknown event {step.event_id!r}")

        return problems

    # ------------------------------------------------------------------
    # derived indices
    # ------------------------------------------------------------------

    def _build_indices(self) -> None:
        # evidence entries grouped by data type
        evidence_by_data_type: dict[str, list[Evidence]] = {}
        for ev in self._evidence:
            evidence_by_data_type.setdefault(ev.data_type_id, []).append(ev)

        # cache observation domains per (asset, scope)
        domain_cache: dict[tuple[str, MonitorScope], frozenset[str]] = {}

        def domain(asset_id: str, scope: MonitorScope) -> frozenset[str]:
            key = (asset_id, scope)
            if key not in domain_cache:
                domain_cache[key] = self._topology.observation_domain(
                    asset_id, network_scope=(scope is MonitorScope.NETWORK)
                )
            return domain_cache[key]

        # monitor -> {event -> best evidence weight}, and the transpose
        self._monitor_event_weight: dict[str, dict[str, float]] = {}
        self._event_monitor_weight: dict[str, dict[str, float]] = {e: {} for e in self._events}
        # monitor -> {event -> evidencing data type ids} (richness needs this)
        self._monitor_event_data_types: dict[str, dict[str, frozenset[str]]] = {}

        for monitor_id, monitor in self._monitors.items():
            mtype = self._monitor_types[monitor.monitor_type_id]
            observable = domain(monitor.asset_id, mtype.scope)
            weights: dict[str, float] = {}
            data_types_per_event: dict[str, set[str]] = {}
            for dt in mtype.data_type_ids:
                for ev in evidence_by_data_type.get(dt, ()):
                    event = self._events[ev.event_id]
                    if event.asset_id not in observable:
                        continue
                    previous = weights.get(ev.event_id, 0.0)
                    weights[ev.event_id] = max(previous, ev.weight)
                    data_types_per_event.setdefault(ev.event_id, set()).add(dt)
            self._monitor_event_weight[monitor_id] = weights
            self._monitor_event_data_types[monitor_id] = {
                e: frozenset(dts) for e, dts in data_types_per_event.items()
            }
            for event_id, weight in weights.items():
                self._event_monitor_weight[event_id][monitor_id] = weight

        # (data type, event) -> field names contributing to that evidence
        self._evidence_fields: dict[tuple[str, str], frozenset[str]] = {}
        for ev in self._evidence:
            fields = ev.fields_used or self._data_types[ev.data_type_id].field_names
            self._evidence_fields[ev.key] = frozenset(fields)

        # event -> attacks using it
        self._attacks_by_event: dict[str, frozenset[str]] = {}
        usage: dict[str, set[str]] = {e: set() for e in self._events}
        for attack in self._attacks.values():
            for step in attack.steps:
                usage[step.event_id].add(attack.attack_id)
        self._attacks_by_event = {e: frozenset(a) for e, a in usage.items()}

        # per-monitor effective cost
        self._monitor_cost: dict[str, CostVector] = {
            m.monitor_id: m.effective_cost(self._monitor_types[m.monitor_type_id])
            for m in self._monitors.values()
        }

    # ------------------------------------------------------------------
    # entity accessors
    # ------------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The asset graph."""
        return self._topology

    @property
    def assets(self) -> dict[str, Asset]:
        """Mapping of asset id to asset."""
        return self._topology.assets

    @property
    def data_types(self) -> dict[str, DataType]:
        """Mapping of data type id to data type."""
        return dict(self._data_types)

    @property
    def monitor_types(self) -> dict[str, MonitorType]:
        """Mapping of monitor type id to monitor type."""
        return dict(self._monitor_types)

    @property
    def monitors(self) -> dict[str, Monitor]:
        """Mapping of monitor id to deployable monitor."""
        return dict(self._monitors)

    @property
    def events(self) -> dict[str, Event]:
        """Mapping of event id to event."""
        return dict(self._events)

    @property
    def evidence(self) -> list[Evidence]:
        """All evidence entries, in insertion order."""
        return list(self._evidence)

    @property
    def attacks(self) -> dict[str, Attack]:
        """Mapping of attack id to attack."""
        return dict(self._attacks)

    def monitor(self, monitor_id: str) -> Monitor:
        """Look up a monitor; raises :class:`UnknownIdError` if absent."""
        try:
            return self._monitors[monitor_id]
        except KeyError:
            raise UnknownIdError("monitor", monitor_id) from None

    def monitor_type(self, monitor_type_id: str) -> MonitorType:
        """Look up a monitor type; raises :class:`UnknownIdError` if absent."""
        try:
            return self._monitor_types[monitor_type_id]
        except KeyError:
            raise UnknownIdError("monitor type", monitor_type_id) from None

    def data_type(self, data_type_id: str) -> DataType:
        """Look up a data type; raises :class:`UnknownIdError` if absent."""
        try:
            return self._data_types[data_type_id]
        except KeyError:
            raise UnknownIdError("data type", data_type_id) from None

    def event(self, event_id: str) -> Event:
        """Look up an event; raises :class:`UnknownIdError` if absent."""
        try:
            return self._events[event_id]
        except KeyError:
            raise UnknownIdError("event", event_id) from None

    def attack(self, attack_id: str) -> Attack:
        """Look up an attack; raises :class:`UnknownIdError` if absent."""
        try:
            return self._attacks[attack_id]
        except KeyError:
            raise UnknownIdError("attack", attack_id) from None

    # ------------------------------------------------------------------
    # coverage-relation queries (precomputed)
    # ------------------------------------------------------------------

    def monitors_for_event(self, event_id: str) -> Mapping[str, float]:
        """Monitors able to evidence ``event_id``, with their best weight."""
        if event_id not in self._events:
            raise UnknownIdError("event", event_id)
        return dict(self._event_monitor_weight[event_id])

    def events_for_monitor(self, monitor_id: str) -> Mapping[str, float]:
        """Events the monitor can evidence, with the best weight per event."""
        if monitor_id not in self._monitors:
            raise UnknownIdError("monitor", monitor_id)
        return dict(self._monitor_event_weight[monitor_id])

    def evidencing_data_types(self, monitor_id: str, event_id: str) -> frozenset[str]:
        """Data types through which ``monitor_id`` evidences ``event_id``."""
        if monitor_id not in self._monitors:
            raise UnknownIdError("monitor", monitor_id)
        return self._monitor_event_data_types[monitor_id].get(event_id, frozenset())

    def evidence_fields(self, data_type_id: str, event_id: str) -> frozenset[str]:
        """Field names through which a data type evidences an event.

        When the evidence entry restricts ``fields_used`` those fields
        are returned; otherwise all fields of the data type.  Pairs with
        no evidence entry return the empty set.
        """
        return self._evidence_fields.get((data_type_id, event_id), frozenset())

    def fields_for_event(self, event_id: str, monitor_ids: Iterable[str]) -> frozenset[str]:
        """Distinct data fields the given monitors capture about an event.

        This is the raw material of the *richness* metric: the union of
        contributing fields across every (deployed monitor, data type)
        pair evidencing ``event_id``.
        """
        if event_id not in self._events:
            raise UnknownIdError("event", event_id)
        fields: set[str] = set()
        for monitor_id in monitor_ids:
            for dt in self.evidencing_data_types(monitor_id, event_id):
                fields |= self._evidence_fields[(dt, event_id)]
        return frozenset(fields)

    def max_fields_for_event(self, event_id: str) -> frozenset[str]:
        """Fields capturable for an event by deploying *every* monitor."""
        return self.fields_for_event(event_id, self._event_monitor_weight[event_id])

    def attacks_using_event(self, event_id: str) -> frozenset[str]:
        """Ids of attacks with a step referencing ``event_id``."""
        if event_id not in self._events:
            raise UnknownIdError("event", event_id)
        return self._attacks_by_event[event_id]

    def monitor_cost(self, monitor_id: str) -> CostVector:
        """The effective (multiplier-scaled) cost of a monitor."""
        if monitor_id not in self._monitors:
            raise UnknownIdError("monitor", monitor_id)
        return self._monitor_cost[monitor_id]

    def deployment_cost(self, monitor_ids: Iterable[str]) -> CostVector:
        """Total cost of deploying the given monitors."""
        return CostVector.total(self.monitor_cost(m) for m in monitor_ids)

    def total_cost(self) -> CostVector:
        """Cost of deploying every monitor in the model."""
        return CostVector.total(self._monitor_cost.values())

    def coverable_events(self) -> frozenset[str]:
        """Events evidenced by at least one monitor in the model."""
        return frozenset(e for e, mons in self._event_monitor_weight.items() if mons)

    # ------------------------------------------------------------------
    # summary
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Entity counts, for reports and sanity checks."""
        return {
            "assets": len(self._topology),
            "links": len(self._topology.links),
            "data_types": len(self._data_types),
            "monitor_types": len(self._monitor_types),
            "monitors": len(self._monitors),
            "events": len(self._events),
            "evidence": len(self._evidence),
            "attacks": len(self._attacks),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"SystemModel({self.name!r}: {s['assets']} assets, {s['monitors']} monitors, "
            f"{s['events']} events, {s['attacks']} attacks)"
        )
