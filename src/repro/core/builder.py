"""Fluent construction of :class:`~repro.core.model.SystemModel`.

The builder accumulates entities with early, local error checking
(duplicate ids are rejected immediately; cross-references are validated
at :meth:`ModelBuilder.build` time by the model itself) and offers small
conveniences — auto-generated monitor ids, bulk placement of a monitor
type across all compatible assets — that keep case-study and generator
code declarative.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.assets import Asset, AssetKind, Topology
from repro.core.attacks import Attack, AttackStep, Event
from repro.core.data import DataField, DataType, Evidence
from repro.core.monitors import CostVector, Monitor, MonitorScope, MonitorType
from repro.core.model import SystemModel
from repro.errors import DuplicateIdError, UnknownIdError

__all__ = ["ModelBuilder"]


class ModelBuilder:
    """Accumulates model entities and assembles a validated SystemModel."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._topology = Topology()
        self._data_types: dict[str, DataType] = {}
        self._monitor_types: dict[str, MonitorType] = {}
        self._monitors: dict[str, Monitor] = {}
        self._events: dict[str, Event] = {}
        self._evidence: list[Evidence] = []
        self._evidence_keys: set[tuple[str, str]] = set()
        self._attacks: dict[str, Attack] = {}

    # -- assets ------------------------------------------------------------

    def asset(
        self,
        asset_id: str,
        name: str | None = None,
        kind: AssetKind = AssetKind.HOST,
        *,
        zone: str = "",
        criticality: float = 0.5,
        tags: Iterable[str] = (),
    ) -> "ModelBuilder":
        """Add an asset; ``name`` defaults to the id."""
        self._topology.add_asset(
            Asset(
                asset_id=asset_id,
                name=name if name is not None else asset_id,
                kind=kind,
                zone=zone,
                criticality=criticality,
                tags=frozenset(tags),
            )
        )
        return self

    def link(self, a: str, b: str, medium: str = "lan") -> "ModelBuilder":
        """Connect two existing assets."""
        self._topology.add_link(a, b, medium)
        return self

    # -- data --------------------------------------------------------------

    def data_type(
        self,
        data_type_id: str,
        name: str | None = None,
        *,
        fields: Iterable[str | DataField] = (),
        description: str = "",
        volume_hint: float = 100.0,
    ) -> "ModelBuilder":
        """Add a data type; string fields are wrapped into DataField."""
        if data_type_id in self._data_types:
            raise DuplicateIdError("data type", data_type_id)
        wrapped = tuple(f if isinstance(f, DataField) else DataField(f) for f in fields)
        self._data_types[data_type_id] = DataType(
            data_type_id=data_type_id,
            name=name if name is not None else data_type_id,
            fields=wrapped,
            description=description,
            volume_hint=volume_hint,
        )
        return self

    # -- monitors ------------------------------------------------------------

    def monitor_type(
        self,
        monitor_type_id: str,
        name: str | None = None,
        *,
        data_types: Iterable[str],
        cost: CostVector | dict[str, float] | None = None,
        scope: MonitorScope = MonitorScope.HOST,
        deployable_kinds: Iterable[AssetKind] | None = None,
        quality: float = 0.95,
        description: str = "",
    ) -> "ModelBuilder":
        """Add a monitor type; ``cost`` accepts a plain dict for brevity."""
        if monitor_type_id in self._monitor_types:
            raise DuplicateIdError("monitor type", monitor_type_id)
        if cost is None:
            cost_vector = CostVector.zero()
        elif isinstance(cost, CostVector):
            cost_vector = cost
        else:
            cost_vector = CostVector(cost)
        self._monitor_types[monitor_type_id] = MonitorType(
            monitor_type_id=monitor_type_id,
            name=name if name is not None else monitor_type_id,
            data_type_ids=tuple(data_types),
            cost=cost_vector,
            scope=scope,
            deployable_kinds=None if deployable_kinds is None else frozenset(deployable_kinds),
            quality=quality,
            description=description,
        )
        return self

    def monitor(
        self,
        monitor_type_id: str,
        asset_id: str,
        *,
        monitor_id: str | None = None,
        cost_multiplier: float = 1.0,
    ) -> "ModelBuilder":
        """Place a monitor type at an asset.

        The monitor id defaults to ``"<type>@<asset>"``, which is unique
        as long as a type is placed at most once per asset.
        """
        if monitor_id is None:
            monitor_id = f"{monitor_type_id}@{asset_id}"
        if monitor_id in self._monitors:
            raise DuplicateIdError("monitor", monitor_id)
        self._monitors[monitor_id] = Monitor(
            monitor_id=monitor_id,
            monitor_type_id=monitor_type_id,
            asset_id=asset_id,
            cost_multiplier=cost_multiplier,
        )
        return self

    def monitor_everywhere(
        self, monitor_type_id: str, *, cost_multiplier: float = 1.0
    ) -> "ModelBuilder":
        """Place a monitor type at every asset its kind constraint allows."""
        mtype = self._monitor_types.get(monitor_type_id)
        if mtype is None:
            raise UnknownIdError("monitor type", monitor_type_id, context="monitor_everywhere")
        for asset in self._topology.assets.values():
            if mtype.can_deploy_at_kind(asset.kind):
                self.monitor(monitor_type_id, asset.asset_id, cost_multiplier=cost_multiplier)
        return self

    # -- events, evidence, attacks -------------------------------------------

    def event(
        self, event_id: str, name: str | None = None, *, asset: str, description: str = ""
    ) -> "ModelBuilder":
        """Add an intrusion event occurring at ``asset``."""
        if event_id in self._events:
            raise DuplicateIdError("event", event_id)
        self._events[event_id] = Event(
            event_id=event_id,
            name=name if name is not None else event_id,
            asset_id=asset,
            description=description,
        )
        return self

    def evidence(
        self,
        data_type_id: str,
        event_id: str,
        weight: float = 1.0,
        *,
        fields_used: Iterable[str] = (),
    ) -> "ModelBuilder":
        """Declare that a data type evidences an event with ``weight``."""
        entry = Evidence(
            data_type_id=data_type_id,
            event_id=event_id,
            weight=weight,
            fields_used=frozenset(fields_used),
        )
        if entry.key in self._evidence_keys:
            raise DuplicateIdError("evidence", f"{data_type_id}->{event_id}")
        self._evidence_keys.add(entry.key)
        self._evidence.append(entry)
        return self

    def attack(
        self,
        attack_id: str,
        name: str | None = None,
        *,
        steps: Iterable[AttackStep | str | tuple[str, float]],
        importance: float = 1.0,
        description: str = "",
    ) -> "ModelBuilder":
        """Add an attack.

        ``steps`` entries may be :class:`AttackStep` objects, bare event
        ids (weight 1, required), or ``(event_id, weight)`` pairs.
        """
        if attack_id in self._attacks:
            raise DuplicateIdError("attack", attack_id)
        normalized: list[AttackStep] = []
        for step in steps:
            if isinstance(step, AttackStep):
                normalized.append(step)
            elif isinstance(step, str):
                normalized.append(AttackStep(event_id=step))
            else:
                event_id, weight = step
                normalized.append(AttackStep(event_id=event_id, weight=weight))
        self._attacks[attack_id] = Attack(
            attack_id=attack_id,
            name=name if name is not None else attack_id,
            steps=tuple(normalized),
            importance=importance,
            description=description,
        )
        return self

    # -- assembly ----------------------------------------------------------

    def build(self) -> SystemModel:
        """Assemble and validate the model.

        Raises
        ------
        repro.errors.ValidationError
            Listing every cross-reference problem found.
        """
        return SystemModel(
            name=self.name,
            topology=self._topology,
            data_types=self._data_types.values(),
            monitor_types=self._monitor_types.values(),
            monitors=self._monitors.values(),
            events=self._events.values(),
            evidence=self._evidence,
            attacks=self._attacks.values(),
        )
