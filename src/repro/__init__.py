"""repro — reproduction of *A Quantitative Methodology for Security
Monitor Deployment* (Thakore, Weaver, Sanders; DSN 2016).

The library implements the paper's full pipeline:

1. **Model** a system's assets, deployable monitors, the data they
   generate, and the intrusions that data evidences
   (:mod:`repro.core`);
2. **Quantify** deployments with utility metrics — coverage,
   redundancy, richness, confidence — and multi-dimensional cost
   (:mod:`repro.metrics`);
3. **Optimize** monitor placement: maximum utility under budget, or
   minimum cost meeting utility floors, via an exact ILP with heuristic
   baselines (:mod:`repro.optimize`, :mod:`repro.solver`);
4. **Validate** operationally with a monitoring simulation
   (:mod:`repro.simulation`) and ship the paper's enterprise Web
   service case study (:mod:`repro.casestudy`).

Quickstart::

    from repro import casestudy, metrics, optimize

    model = casestudy.enterprise_web_service()
    budget = metrics.Budget.fraction_of_total(model, 0.4)
    result = optimize.MaxUtilityProblem(model, budget).solve()
    print(sorted(result.deployment.monitor_ids), result.utility)
"""

from repro.core import (
    Asset,
    AssetKind,
    Attack,
    AttackStep,
    CostVector,
    DataField,
    DataType,
    Event,
    Evidence,
    ModelBuilder,
    Monitor,
    MonitorScope,
    MonitorType,
    SystemModel,
    audit_model,
    load_model,
    save_model,
)
from repro.errors import ReproError
from repro.metrics import Budget, UtilityWeights, utility

__version__ = "1.0.0"

__all__ = [
    "Asset",
    "AssetKind",
    "Attack",
    "AttackStep",
    "CostVector",
    "DataField",
    "DataType",
    "Event",
    "Evidence",
    "ModelBuilder",
    "Monitor",
    "MonitorScope",
    "MonitorType",
    "SystemModel",
    "audit_model",
    "load_model",
    "save_model",
    "ReproError",
    "Budget",
    "UtilityWeights",
    "utility",
    "__version__",
]
