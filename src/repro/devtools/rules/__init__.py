"""The rule registry: every AST rule the linter ships, in report order.

Adding a rule is three steps (see docs/static-analysis.md):

1. write ``rules/<name>.py`` with a :class:`~repro.devtools.base.Rule`
   subclass (one bad + one good golden fixture in ``tests/devtools``);
2. import and list it in :data:`ALL_RULES` here;
3. if it needs configuration, put the data in
   :mod:`repro.devtools.contract`, not in the rule.
"""

from __future__ import annotations

from repro.devtools.base import Rule
from repro.devtools.rules.clock_inject import ClockInjectRule
from repro.devtools.rules.exc_silent import ExcSilentRule
from repro.devtools.rules.json_strict import JsonStrictRule
from repro.devtools.rules.mut_default import MutDefaultRule
from repro.devtools.rules.obs_span import ObsSpanRule
from repro.devtools.rules.pickle_safe import PickleSafeRule
from repro.devtools.rules.rng_seed import RngSeedRule
from repro.devtools.rules.shm_safe import ShmSafeRule
from repro.devtools.rules.typecheck_import import TypecheckImportRule

__all__ = ["ALL_RULES", "rule_index"]

#: Every AST rule, instantiated once (rules are stateless).
ALL_RULES: tuple[Rule, ...] = (
    RngSeedRule(),
    ClockInjectRule(),
    JsonStrictRule(),
    ExcSilentRule(),
    PickleSafeRule(),
    ShmSafeRule(),
    TypecheckImportRule(),
    MutDefaultRule(),
    ObsSpanRule(),
)


def rule_index() -> dict[str, Rule]:
    """Rule id -> rule instance, for ``--rule`` filtering."""
    return {rule.rule_id: rule for rule in ALL_RULES}
