"""TYPECHECK-IMPORT: export modules keep upper layers behind TYPE_CHECKING.

``repro.export`` is imported by :mod:`repro.simulation` (and the CLI),
while its formatters annotate against types from :mod:`repro.analysis`.
PR 3 fixed the resulting circular-import crash (``import repro.cli``
died while ``analysis`` was mid-import) by moving those imports under
``if TYPE_CHECKING:``.  This rule pins the fix: inside any
``repro.export.*`` module, an eager module-level runtime import of the
packages that transitively import ``export`` back
(:data:`repro.devtools.contract.EXPORT_TYPE_ONLY_PREFIXES`) is a
finding.  Function-local (lazy) imports are exempt — deferral past
module init is exactly how a cycle is legitimately broken.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools import contract
from repro.devtools.base import Finding, LintContext, Rule

__all__ = ["TypecheckImportRule"]


def _forbidden(target: str) -> bool:
    return any(
        target == prefix or target.startswith(prefix + ".")
        for prefix in contract.EXPORT_TYPE_ONLY_PREFIXES
    )


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: TypecheckImportRule, ctx: LintContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.type_checking = False
        self.depth = 0
        self.findings: list[Finding] = []

    def visit_If(self, node: ast.If) -> None:
        if "TYPE_CHECKING" in ast.dump(node.test):
            previous = self.type_checking
            self.type_checking = True
            for child in node.body:
                self.visit(child)
            self.type_checking = previous
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    def _visit_function(self, node: ast.AST) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _check(self, target: str, node: ast.stmt) -> None:
        if self.type_checking or self.depth > 0:
            return
        if _forbidden(target):
            self.findings.append(
                self.rule.finding(
                    self.ctx,
                    node,
                    f"runtime import of {target} from an export module closes "
                    "the export/analysis cycle; move it under `if "
                    "TYPE_CHECKING:` (annotation-only) or into the using "
                    "function",
                )
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check(alias.name, node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and not node.level:
            self._check(node.module, node)


class TypecheckImportRule(Rule):
    rule_id = "TYPECHECK-IMPORT"
    description = (
        "repro.export modules import analysis/simulation/cli only under "
        "TYPE_CHECKING (pins the PR 3 circular-import fix)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro.export."):
            return
        visitor = _Visitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
