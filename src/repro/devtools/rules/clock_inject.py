"""CLOCK-INJECT: timestamps come from injected clocks, not the OS.

The determinism suite compares span trees and latency histograms
bit-for-bit across runs, which only works because instrumented code
reads time through an injected :class:`repro.obs.clock.Clock`.  A bare
``time.time()``/``time.perf_counter()``/``datetime.now()`` reintroduces
wall-clock noise that no test can pin down.

The allowlist (:data:`repro.devtools.contract.CLOCK_ALLOWLIST`) admits
the clock implementations themselves plus the two *deadline* sites
(process-pool timeouts, branch-and-bound time limits), where real wall
time is the point: a fake clock there would make a hung worker
immortal.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools import contract
from repro.devtools.base import Finding, LintContext, Rule, dotted

__all__ = ["ClockInjectRule"]

#: Dotted call names that read an ambient clock.  ``time.sleep`` is
#: deliberately absent — sleeping is a delay, not a measurement.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)


class ClockInjectRule(Rule):
    rule_id = "CLOCK-INJECT"
    description = (
        "no direct wall-clock reads outside repro.obs.clock and the "
        "deadline allowlist; use an injected Clock"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        allowed = contract.CLOCK_ALLOWLIST.get(ctx.module, frozenset())
        if "*" in allowed:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted(node.func)
            if name in _CLOCK_CALLS and name not in allowed:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() reads the ambient clock; thread a "
                    "repro.obs.clock.Clock through instead (or add this "
                    "site to contract.CLOCK_ALLOWLIST if it is a real "
                    "wall-clock deadline)",
                )
