"""SHM-SAFE: shared-memory segments are constructed only by the pool.

A ``multiprocessing.shared_memory.SharedMemory`` segment is a named
OS object with manual lifetime: whoever creates one owns an unlink
obligation, and a handle that crosses a ``parallel_map`` boundary
without that lifetime pinned to a :class:`~repro.runtime.pool.
PersistentPool` fails in one of two silent ways — the segment is
unlinked while workers still hold the handle (stale attach, a
``PoolError`` at best), or never unlinked at all (a leak in
``/dev/shm`` that survives the run).  :mod:`repro.runtime.pool` is the
one module that owns this discipline: ``publish_arrays`` creates,
``PersistentPool.share`` pins, ``close`` unlinks, and the tracker
double-unlink pitfall is handled in exactly one place.  Everyone else
publishes through the pool and attaches through its handles.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools import contract
from repro.devtools.base import Finding, LintContext, Rule, dotted

__all__ = ["ShmSafeRule"]

#: Spellings of the segment constructor (import style varies).
_CONSTRUCTORS = frozenset(
    {
        "SharedMemory",
        "shared_memory.SharedMemory",
        "multiprocessing.shared_memory.SharedMemory",
        "ShareableList",
        "shared_memory.ShareableList",
        "multiprocessing.shared_memory.ShareableList",
    }
)


class ShmSafeRule(Rule):
    rule_id = "SHM-SAFE"
    description = (
        "no direct shared_memory segment construction outside "
        "repro.runtime.pool; publish via PersistentPool.share so segment "
        "lifetime stays pinned to a pool"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.module in contract.SHM_ALLOWLIST:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted(node.func)
            if name in _CONSTRUCTORS:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() constructs an unpinned shared-memory segment; "
                    "publish through repro.runtime.pool (PersistentPool.share / "
                    "publish_arrays) so unlink responsibility stays with the pool",
                )
