"""OBS-SPAN: registered hot paths must open a tracer span.

The performance story (docs/performance.md) is told from trace spans:
``solve_seconds`` comes from the ``optimize.*`` spans, the substrate
speedup assertions read ``engine.*``/``parallel.map``, and ``repro
stats`` renders what the spans recorded.  Deleting a span doesn't fail
any functional test — the timing just silently disappears from every
artifact.  So the instrumented hot paths are a closed registry
(:data:`repro.devtools.contract.HOT_PATHS`): each listed function must
contain a ``with obs.span(...)`` (or ``tracer().span(...)``), and a
registry entry whose function no longer exists is itself a finding, so
renames keep the registry honest.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools import contract
from repro.devtools.base import Finding, LintContext, Rule, dotted

__all__ = ["ObsSpanRule"]


def _collect_functions(tree: ast.Module) -> dict[str, ast.AST]:
    """Qualname -> def node, one class level deep (``Class.method``)."""
    functions: dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions[f"{node.name}.{child.name}"] = child
    return functions


def _opens_span(function: ast.AST) -> bool:
    for node in ast.walk(function):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                name = dotted(expr.func)
                if name.rsplit(".", 1)[-1] == "span":
                    return True
                # tracer().span(...): receiver is itself a call
                if (
                    isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "span"
                ):
                    return True
    return False


class ObsSpanRule(Rule):
    rule_id = "OBS-SPAN"
    description = (
        "functions in the instrumented-hot-path registry must open a "
        "tracer span (contract.HOT_PATHS)"
    )
    severity = "warning"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        expected = contract.HOT_PATHS.get(ctx.module)
        if not expected:
            return
        functions = _collect_functions(ctx.tree)
        for qualname in expected:
            node = functions.get(qualname)
            if node is None:
                yield self.finding(
                    ctx,
                    ctx.tree.body[0] if ctx.tree.body else ctx.tree,
                    f"hot-path registry names {ctx.module}.{qualname} but no "
                    "such function exists; update contract.HOT_PATHS "
                    "alongside the rename",
                )
            elif not _opens_span(node):
                yield self.finding(
                    ctx,
                    node,
                    f"{qualname} is a registered hot path but opens no "
                    "obs.span(); its timings back the performance docs — "
                    "restore the span or amend contract.HOT_PATHS",
                )
