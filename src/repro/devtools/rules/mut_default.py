"""MUT-DEFAULT: no mutable default arguments.

A ``def f(x, acc=[])`` shares one list across every call — the classic
Python footgun, and in this codebase a determinism hazard too (state
leaking between supposedly independent solves).  Flags list/dict/set
displays and comprehensions, and calls to the mutable constructors,
used as parameter defaults.  Use ``None`` plus an in-body default.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.base import Finding, LintContext, Rule, dotted

__all__ = ["MutDefaultRule"]

_MUTABLE_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict", "collections.defaultdict", "collections.deque",
     "collections.Counter", "collections.OrderedDict"}
)


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_DISPLAYS):
        return True
    if isinstance(node, ast.Call):
        return dotted(node.func) in _MUTABLE_CONSTRUCTORS
    return False


class MutDefaultRule(Rule):
    rule_id = "MUT-DEFAULT"
    description = "no mutable default arguments; default to None and fill in the body"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable(default):
                    where = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {where}(); one instance "
                        "is shared across all calls — default to None",
                    )
