"""PICKLE-SAFE: callables crossing the process pool must pickle.

``parallel_map`` ships its function to worker processes by pickling;
lambdas and functions defined inside another function don't pickle, so
such a call *silently* falls back to the serial path — correct answers,
none of the speedup, no error to tell you why.  The rule flags a
lambda or a locally-defined function passed as the callable argument to
any name in :data:`repro.devtools.contract.PARALLEL_MAP_NAMES`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools import contract
from repro.devtools.base import Finding, LintContext, Rule, dotted

__all__ = ["PickleSafeRule"]


def _callable_argument(node: ast.Call) -> ast.expr | None:
    """The argument holding the mapped callable (first positional or fn=)."""
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "fn":
            return keyword.value
    return None


class _Scope(ast.NodeVisitor):
    """Walks function bodies tracking locally-defined function names."""

    def __init__(self, rule: PickleSafeRule, ctx: LintContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.local_defs: list[set[str]] = []  # one frame per enclosing function
        self.findings: list[Finding] = []

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self.local_defs:
            self.local_defs[-1].add(node.name)
        self.local_defs.append(set())
        self.generic_visit(node)
        self.local_defs.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted(node.func)
        if name.rsplit(".", 1)[-1] in contract.PARALLEL_MAP_NAMES:
            argument = _callable_argument(node)
            if isinstance(argument, ast.Lambda):
                self.findings.append(
                    self.rule.finding(
                        self.ctx,
                        argument,
                        "lambda passed to parallel_map cannot pickle into the "
                        "pool (runs serially); use a module-level function",
                    )
                )
            elif isinstance(argument, ast.Name) and any(
                argument.id in frame for frame in self.local_defs
            ):
                self.findings.append(
                    self.rule.finding(
                        self.ctx,
                        argument,
                        f"locally-defined function {argument.id!r} passed to "
                        "parallel_map cannot pickle into the pool (runs "
                        "serially); hoist it to module level",
                    )
                )
        self.generic_visit(node)


class PickleSafeRule(Rule):
    rule_id = "PICKLE-SAFE"
    description = (
        "no lambdas or locally-defined functions as the parallel_map "
        "callable; workers need picklable module-level functions"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        scope = _Scope(self, ctx)
        scope.visit(ctx.tree)
        yield from scope.findings
