"""RNG-SEED: every random stream is derived from an explicit seed.

Determinism is the repo's load-bearing invariant — parallel runs must
be bit-identical to serial ones, and a campaign must replay from its
seed.  That dies the moment anyone constructs an OS-entropy generator:
``np.random.default_rng()`` with no argument, ``random.Random()`` with
no argument, any call into the *global* ``random`` module stream, or
``np.random.seed``/global ``np.random.*`` draws (shared mutable state
that parallel workers would race on even when seeded).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools import contract
from repro.devtools.base import Finding, LintContext, Rule, dotted

__all__ = ["RngSeedRule"]

#: Module-level functions of ``random`` that draw from the hidden
#: global stream; seeding cannot make them safe to share.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``np.random.<fn>`` draws on numpy's legacy global RandomState.
_GLOBAL_NUMPY_FNS = frozenset(
    {
        "choice", "normal", "permutation", "rand", "randint", "randn",
        "random", "random_sample", "seed", "shuffle", "uniform",
    }
)

#: Constructors that are fine *with* an explicit seed argument.
_SEEDABLE = frozenset(
    {
        "np.random.default_rng",
        "numpy.random.default_rng",
        "random.Random",
    }
)


class RngSeedRule(Rule):
    rule_id = "RNG-SEED"
    description = (
        "random streams must be constructed from an explicit seed "
        "(no default_rng()/Random() without arguments, no global "
        "random/np.random state)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.module in contract.RNG_ALLOWLIST:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted(node.func)
            if not name:
                continue
            if name in _SEEDABLE:
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}() without a seed draws OS entropy; pass an "
                        "explicit seed (derive child streams with "
                        "repro.runtime.parallel.spawn_seeds)",
                    )
                continue
            parts = name.split(".")
            if len(parts) == 2 and parts[0] == "random" and parts[1] in _GLOBAL_RANDOM_FNS:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() uses the global random stream; construct "
                    "random.Random(seed) (or a numpy Generator) instead",
                )
            elif (
                len(parts) == 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] in _GLOBAL_NUMPY_FNS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() touches numpy's global RandomState; use "
                    "np.random.default_rng(seed)",
                )
