"""JSON-STRICT: all JSON leaves the process through ``repro.export.jsonsafe``.

Python's ``json`` happily writes ``NaN``/``Infinity`` tokens the JSON
grammar does not contain; campaign metrics produce both (NaN latency
means, inf utilization).  :mod:`repro.export.jsonsafe` is the single
choke point that sanitizes non-finite floats and pins
``allow_nan=False`` — so a raw ``json.dumps``/``json.dump`` anywhere
else is a latent corrupt-artifact bug, even when today's payload
happens to be finite.  ``json.loads`` is fine; strictness is a writer
property.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools import contract
from repro.devtools.base import Finding, LintContext, Rule, dotted

__all__ = ["JsonStrictRule"]

_WRITERS = frozenset({"json.dump", "json.dumps"})


class JsonStrictRule(Rule):
    rule_id = "JSON-STRICT"
    description = (
        "no raw json.dumps/json.dump outside repro.export.jsonsafe; "
        "route writers through jsonsafe.dumps"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.module in contract.JSON_ALLOWLIST:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted(node.func)
            if name in _WRITERS:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() can emit NaN/Infinity tokens; use "
                    "repro.export.jsonsafe.dumps (sanitizes non-finite "
                    "floats, allow_nan=False)",
                )
