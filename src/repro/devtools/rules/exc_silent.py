"""EXC-SILENT: broad exception handlers must account for what they ate.

A ``except:``/``except Exception:`` that neither re-raises nor records
the failure is how a fault-tolerant runtime silently returns wrong
answers.  The runtime's own contract (see ``repro.runtime.parallel``'s
docstring: "never a silent ``except Exception``") is that every broad
handler does at least one of:

* re-raise (any ``raise`` in the handler body, including a translated
  exception like ``_PoolAbandoned``);
* record a structured failure (:class:`TaskFailure` construction or a
  ``_record_failure``/``handle_task_fault`` call);
* bump an observability counter (``obs.counter(...).inc()``).

Handlers that are intentional-and-visible by some other means carry a
``# repro: noqa[EXC-SILENT] <reason>`` on the ``except`` line.
Narrowly-typed handlers (``except OSError:``) are out of scope — they
state what they expect.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.base import Finding, LintContext, Rule, dotted

__all__ = ["ExcSilentRule"]

_BROAD = frozenset({"Exception", "BaseException"})

#: Callables whose invocation counts as structured failure accounting.
_RECORDERS = frozenset({"TaskFailure", "_record_failure", "handle_task_fault"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names: list[ast.expr] = (
        list(handler.type.elts) if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for name in names:
        text = dotted(name)
        if text.rsplit(".", 1)[-1] in _BROAD:
            return True
    return False


def _accounts_for_failure(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = dotted(node.func)
            if name.rsplit(".", 1)[-1] in _RECORDERS:
                return True
            # obs.counter("...").inc() / registry().counter("...").inc():
            # an .inc()/.observe() whose receiver chain goes through a
            # counter()/histogram() call.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("inc", "observe")
                and isinstance(node.func.value, ast.Call)
            ):
                inner = dotted(node.func.value.func)
                if inner.rsplit(".", 1)[-1] in ("counter", "histogram"):
                    return True
    return False


class ExcSilentRule(Rule):
    rule_id = "EXC-SILENT"
    description = (
        "broad except handlers must re-raise, record a TaskFailure, or "
        "bump an obs counter"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _accounts_for_failure(node):
                continue
            caught = "bare except" if node.type is None else f"except {ast.unparse(node.type)}"
            yield self.finding(
                ctx,
                node,
                f"{caught} swallows failures silently; re-raise, record a "
                "TaskFailure, or increment an obs counter (annotate with "
                "`# repro: noqa[EXC-SILENT] <reason>` if intentional)",
            )
