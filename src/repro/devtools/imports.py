"""Import-graph analysis by parsing, never importing.

Builds the intra-package module graph of a Python package directory
with :mod:`ast`, then checks two structural invariants:

* **IMPORT-CYCLE** — no cycle among *eager* runtime imports.  The
  graph models what the interpreter actually executes: importing
  ``a.b.c`` runs ``a/__init__`` and ``a/b/__init__`` first, so every
  edge to a module implies edges to its enclosing packages (except the
  importer's own ancestors, which are always mid-initialization
  already and therefore never *new* work).  ``if TYPE_CHECKING:``
  imports and imports nested inside functions (lazy, by construction
  deferred past init) are excluded — a lazy import is the sanctioned
  way to break a cycle, as ``repro.obs.export`` does for ``jsonsafe``.

* **LAYER-CONTRACT** — every runtime import (eager *or* lazy; a lazy
  import is still a dependency) must respect the package layering
  declared in :mod:`repro.devtools.contract`, after exempting the
  shared leaf modules.

Everything returns :class:`~repro.devtools.base.Finding` records so the
lint driver treats graph rules exactly like AST rules, including
``# repro: noqa[...]`` suppression on the offending import line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools import contract
from repro.devtools.base import Finding

__all__ = [
    "CYCLE_RULE_ID",
    "LAYER_RULE_ID",
    "ImportEdge",
    "ModuleGraph",
    "build_graph",
    "cycle_findings",
    "find_cycles",
    "graph_findings",
    "layering_findings",
    "package_dependencies",
]

CYCLE_RULE_ID = "IMPORT-CYCLE"
LAYER_RULE_ID = "LAYER-CONTRACT"


@dataclass(frozen=True, slots=True)
class ImportEdge:
    """One import statement, resolved to the module it loads."""

    src: str
    target: str
    line: int
    type_checking: bool
    lazy: bool

    @property
    def runtime(self) -> bool:
        return not self.type_checking


@dataclass(slots=True)
class ModuleGraph:
    """All modules of one package and every intra-package import."""

    root: str
    modules: dict[str, Path] = field(default_factory=dict)
    edges: list[ImportEdge] = field(default_factory=list)

    def edges_from(self, module: str) -> list[ImportEdge]:
        return [edge for edge in self.edges if edge.src == module]


class _ImportVisitor(ast.NodeVisitor):
    """Collects intra-package imports with TYPE_CHECKING/lazy flags."""

    def __init__(self, module: str, is_package: bool, graph: ModuleGraph) -> None:
        self.module = module
        self.is_package = is_package
        self.graph = graph
        self._type_checking = False
        self._depth = 0  # function nesting; >0 means the import is lazy

    # -- scope tracking ------------------------------------------------
    def visit_If(self, node: ast.If) -> None:
        guarded = "TYPE_CHECKING" in ast.dump(node.test)
        if guarded:
            previous = self._type_checking
            self._type_checking = True
            for child in node.body:
                self.visit(child)
            self._type_checking = previous
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    def _visit_function(self, node: ast.AST) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    # -- imports -------------------------------------------------------
    def _add(self, target: str, line: int) -> None:
        root = self.graph.root
        if target != root and not target.startswith(root + "."):
            return
        self.graph.edges.append(
            ImportEdge(
                src=self.module,
                target=target,
                line=line,
                type_checking=self._type_checking,
                lazy=self._depth > 0,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add(alias.name, node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            parts = self.module.split(".")
            if not self.is_package:
                parts = parts[:-1]
            if node.level > 1:
                parts = parts[: len(parts) - (node.level - 1)]
            base = ".".join(parts + ([node.module] if node.module else []))
        if not base:
            return
        for alias in node.names:
            candidate = f"{base}.{alias.name}"
            if candidate in self.graph.modules:
                self._add(candidate, node.lineno)
            else:
                self._add(base, node.lineno)


def build_graph(package_dir: str | Path, root: str | None = None) -> ModuleGraph:
    """Parse every ``*.py`` under ``package_dir`` into a :class:`ModuleGraph`.

    ``package_dir`` must be the top-level package directory (contain an
    ``__init__.py``); ``root`` defaults to the directory name.  Files
    that fail to parse are skipped here — the AST lint pass reports
    them separately.
    """
    package_dir = Path(package_dir)
    root = root or package_dir.name
    graph = ModuleGraph(root=root)
    paths: dict[str, Path] = {}
    for path in sorted(package_dir.rglob("*.py")):
        relative = path.relative_to(package_dir).with_suffix("")
        parts = [root, *relative.parts]
        if parts[-1] == "__init__":
            parts = parts[:-1]
        paths[".".join(parts)] = path
    graph.modules = paths
    for module, path in paths.items():
        try:
            tree = ast.parse(path.read_text())
        except SyntaxError:
            continue
        is_package = path.name == "__init__.py"
        _ImportVisitor(module, is_package, graph).visit(tree)
    return graph


def _ancestors(module: str) -> list[str]:
    parts = module.split(".")
    return [".".join(parts[:i]) for i in range(1, len(parts))]


def _eager_adjacency(graph: ModuleGraph) -> dict[str, dict[str, int]]:
    """Module -> {imported module -> first import line}, init semantics.

    Importing a module also initializes its enclosing packages, so each
    eager edge fans out to the target's ancestors — except ancestors
    the importer shares (its own package chain is mid-init by
    definition, never a fresh import).
    """
    adjacency: dict[str, dict[str, int]] = {module: {} for module in graph.modules}
    for edge in graph.edges:
        if edge.type_checking or edge.lazy:
            continue
        src_ancestors = set(_ancestors(edge.src))
        targets = [edge.target, *_ancestors(edge.target)]
        for target in targets:
            if target not in graph.modules:
                continue
            if target == edge.src or target in src_ancestors:
                continue
            adjacency[edge.src].setdefault(target, edge.line)
    return adjacency


def find_cycles(graph: ModuleGraph) -> list[list[str]]:
    """Strongly connected components of size > 1 in the eager graph.

    Each cycle is returned as a sorted module list; the result is
    sorted by first module so output is deterministic.
    """
    adjacency = _eager_adjacency(graph)
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    components: list[list[str]] = []

    def strongconnect(start: str) -> None:
        work: list[tuple[str, iter]] = [(start, iter(sorted(adjacency[start])))]
        index[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, neighbours = work[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in index:
                    index[neighbour] = lowlink[neighbour] = counter[0]
                    counter[0] += 1
                    stack.append(neighbour)
                    on_stack.add(neighbour)
                    work.append((neighbour, iter(sorted(adjacency[neighbour]))))
                    advanced = True
                    break
                if neighbour in on_stack:
                    lowlink[node] = min(lowlink[node], index[neighbour])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))

    for module in sorted(adjacency):
        if module not in index:
            strongconnect(module)
    components.sort()
    return components


def cycle_findings(graph: ModuleGraph) -> list[Finding]:
    """One IMPORT-CYCLE finding per eager-import cycle."""
    findings = []
    adjacency = _eager_adjacency(graph)
    for component in find_cycles(graph):
        members = set(component)
        anchor = component[0]
        line = min(
            (line for target, line in adjacency[anchor].items() if target in members),
            default=1,
        )
        findings.append(
            Finding(
                rule=CYCLE_RULE_ID,
                path=str(graph.modules[anchor]),
                line=line,
                col=1,
                message=(
                    "eager import cycle: "
                    + " -> ".join(component + [component[0]])
                    + " (break it with a lazy function-local import or a "
                    "TYPE_CHECKING guard)"
                ),
            )
        )
    return findings


def package_dependencies(
    graph: ModuleGraph, leaf_modules: frozenset[str] = contract.LEAF_MODULES
) -> dict[str, set[str]]:
    """Observed package -> package runtime dependencies, leaf-exempt.

    This is the aggregation the contract test pins against
    :data:`repro.devtools.contract.ALLOWED_PACKAGE_DEPS`.
    """
    dependencies: dict[str, set[str]] = {}
    for module in graph.modules:
        dependencies.setdefault(contract.package_of(module, graph.root), set())
    for edge in graph.edges:
        if edge.type_checking or edge.target in leaf_modules:
            continue
        src_pkg = contract.package_of(edge.src, graph.root)
        tgt_pkg = contract.package_of(edge.target, graph.root)
        if src_pkg != tgt_pkg:
            dependencies.setdefault(src_pkg, set()).add(tgt_pkg)
    return dependencies


def layering_findings(
    graph: ModuleGraph,
    allowed: dict[str, frozenset[str]] | None = None,
    leaf_modules: frozenset[str] | None = None,
) -> list[Finding]:
    """One LAYER-CONTRACT finding per import that breaks the layering.

    ``allowed``/``leaf_modules`` default to the repository contract;
    tests pass synthetic contracts for synthetic packages.
    """
    findings = []
    allowed = contract.ALLOWED_PACKAGE_DEPS if allowed is None else allowed
    leaves = contract.LEAF_MODULES if leaf_modules is None else leaf_modules
    for edge in graph.edges:
        if edge.type_checking or edge.target in leaves:
            continue
        src_pkg = contract.package_of(edge.src, graph.root)
        tgt_pkg = contract.package_of(edge.target, graph.root)
        if src_pkg == tgt_pkg:
            continue
        if src_pkg not in allowed:
            message = (
                f"package {src_pkg!r} is not declared in the layering contract; "
                "add it to repro.devtools.contract.ALLOWED_PACKAGE_DEPS"
            )
        elif tgt_pkg not in allowed.get(src_pkg, frozenset()):
            message = (
                f"{edge.src} imports {edge.target}: layer {src_pkg!r} may not "
                f"depend on {tgt_pkg!r} (allowed: "
                f"{', '.join(sorted(allowed[src_pkg])) or 'nothing'})"
            )
        else:
            continue
        findings.append(
            Finding(
                rule=LAYER_RULE_ID,
                path=str(graph.modules[edge.src]),
                line=edge.line,
                col=1,
                message=message,
            )
        )
    findings.sort(key=Finding.sort_key)
    return findings


def graph_findings(package_dir: str | Path) -> list[Finding]:
    """Both structural checks over one package directory."""
    graph = build_graph(package_dir)
    return cycle_findings(graph) + layering_findings(graph)
