"""``python -m repro.devtools`` — the lint driver without the full CLI."""

import sys

from repro.devtools.lint import main

sys.exit(main(prog="python -m repro.devtools"))
