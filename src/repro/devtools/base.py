"""Shared vocabulary of the static-analysis pass: findings, rules, context.

Every rule module imports from here and nowhere else inside devtools,
so the rule registry (:mod:`repro.devtools.rules`) and the driver
(:mod:`repro.devtools.lint`) can both import the rules without cycles.

A rule is a class with a ``rule_id``, a one-line ``description``, and a
``check(ctx)`` generator yielding :class:`Finding` records.  Rules see
one file at a time through a :class:`LintContext` — parsed AST, source
lines, module name, and the ``# repro: noqa[RULE-ID]`` suppressions
already extracted from the token stream (so a ``noqa`` inside a string
literal does not suppress anything).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "dotted",
    "parse_suppressions",
]

#: Sentinel stored in the suppression map for a bare ``# repro: noqa``
#: (no bracketed rule list): every rule is suppressed on that line.
_ALL_RULES = "*"

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s\-]+)\])?(?P<reason>.*)?"
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"


def _noqa_ids(comment: str) -> set[str]:
    """Rule ids a single comment suppresses (empty set if not a noqa)."""
    match = _NOQA.search(comment)
    if match is None:
        return set()
    rules = match.group("rules")
    if rules is None:
        return {_ALL_RULES}
    return {part.strip().upper() for part in rules.split(",") if part.strip()}


def parse_suppressions(source: str, tree: Any | None = None) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed by ``# repro: noqa`` comments.

    Recognized forms, always inside a real comment token::

        x = risky()            # repro: noqa[RNG-SEED] seeded upstream
        y = risky2()           # repro: noqa[RNG-SEED,CLOCK-INJECT]
        z = anything()         # repro: noqa  (suppresses every rule)

    The trailing free text is the human-readable reason; it is required
    by convention (review style), not by the parser.

    A noqa applies to its whole *logical* line, not just the physical
    line carrying the comment: a parenthesized call continued over five
    lines is suppressed wherever a rule anchors inside it.  Logical
    lines are recovered from the token stream (NEWLINE ends one, NL is
    a continuation), so a noqa inside a string literal still suppresses
    nothing.  When the parsed ``tree`` is supplied, a noqa anywhere in a
    decorated ``def``/``class`` header — decorator lines included —
    also covers the ``def`` line and each decorator line, because rules
    anchor findings on either.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    pending: set[str] = set()
    span: set[int] = set()
    for token in tokens:
        if token.type == tokenize.COMMENT:
            ids = _noqa_ids(token.string)
            if ids:
                suppressions.setdefault(token.start[0], set()).update(ids)
                pending.update(ids)
            continue
        if token.type == tokenize.NEWLINE:
            # end of a logical line: the noqa covers every physical
            # line the statement touched.
            for line in span:
                if pending:
                    suppressions.setdefault(line, set()).update(pending)
            pending.clear()
            span.clear()
            continue
        if token.type == tokenize.NL:
            if not span:
                # standalone comment line: applies to itself only.
                pending.clear()
            continue
        if token.type in (tokenize.INDENT, tokenize.DEDENT, tokenize.ENDMARKER):
            continue
        span.update(range(token.start[0], token.end[0] + 1))
    if tree is not None:
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) or not node.decorator_list:
                continue
            start = min(dec.lineno for dec in node.decorator_list)
            header_end = node.body[0].lineno - 1 if node.body else node.lineno
            header_end = max(header_end, node.lineno)
            ids = set()
            for line in range(start, header_end + 1):
                ids |= suppressions.get(line, set())
            if ids:
                anchors = {node.lineno} | {dec.lineno for dec in node.decorator_list}
                for line in anchors:
                    suppressions.setdefault(line, set()).update(ids)
    return suppressions


@dataclass(slots=True)
class LintContext:
    """Everything a rule may look at while checking one file."""

    path: str
    module: str
    source: str
    tree: Any  # ast.Module
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        ids = self.suppressions.get(line)
        if not ids:
            return False
        return _ALL_RULES in ids or rule_id.upper() in ids


class Rule:
    """Base class: subclasses set ``rule_id``/``description`` and ``check``.

    ``severity`` is informational ("error" or "warning"); the lint
    driver exits nonzero on *any* finding either way, so a warning is a
    finding the team has decided to keep visible rather than fix.
    """

    rule_id: ClassVar[str] = ""
    description: ClassVar[str] = ""
    severity: ClassVar[str] = "error"

    def check(self, ctx: LintContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: Any, message: str) -> Finding:
        """A :class:`Finding` for ``node`` (any object with lineno/col_offset)."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=self.rule_id,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            severity=self.severity,
        )


def run_rules(
    rules: Iterable[Rule], ctx: LintContext
) -> list[Finding]:
    """All unsuppressed findings from ``rules`` over one file, sorted."""
    findings: list[Finding] = []
    for rule in rules:
        for found in rule.check(ctx):
            if not ctx.is_suppressed(found.rule, found.line):
                findings.append(found)
    findings.sort(key=Finding.sort_key)
    return findings


def dotted(node: Any) -> str:
    """The dotted name of an expression, or ``""`` if it is not one.

    ``ast.Attribute``/``ast.Name`` chains only — ``np.random.seed``
    comes back verbatim; anything with a call or subscript in the chain
    yields ``""`` (rules treat that as "not a name I recognize").
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, derived from ``__init__.py`` parents.

    Walks upward while the containing directory is a package; a file
    outside any package is just its own stem.  This is how the linter
    knows a file is ``repro.core.serialization`` without importing it.
    """
    path = path.resolve()
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:]
    return ".".join(reversed(parts))
