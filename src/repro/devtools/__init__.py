"""Project-specific static analysis: the repo's invariants, machine-checked.

Every invariant this package enforces was once a postmortem: the
``export`` circular-import crash (PR 3), non-strict JSON before
``jsonsafe`` (PR 3), determinism bugs in the parallel paths (PR 1).
Docstrings don't fail CI; these rules do.

* :mod:`repro.devtools.base` — :class:`Finding`, :class:`Rule`,
  ``# repro: noqa[RULE-ID]`` suppression parsing;
* :mod:`repro.devtools.rules` — the AST rules (RNG-SEED, CLOCK-INJECT,
  JSON-STRICT, EXC-SILENT, PICKLE-SAFE, TYPECHECK-IMPORT, MUT-DEFAULT,
  OBS-SPAN);
* :mod:`repro.devtools.imports` — parse-only import-graph analysis:
  eager-cycle detection (IMPORT-CYCLE) and the package layering
  contract (LAYER-CONTRACT);
* :mod:`repro.devtools.contract` — the layering and every per-rule
  allowlist, as reviewable data;
* :mod:`repro.devtools.lint` — the driver behind ``repro lint`` and
  ``python -m repro.devtools``.

Deliberately dependency-light: parsing only (never imports the code it
checks), stdlib only, and nothing from ``repro`` beyond ``errors`` and
the ``jsonsafe`` leaf — so the lint CI job is fast and can run even
when the code under analysis would not import.
"""

from __future__ import annotations

from repro.devtools.base import Finding, LintContext, Rule
from repro.devtools.lint import all_rule_ids, lint_file, lint_paths, main

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "all_rule_ids",
    "lint_file",
    "lint_paths",
    "main",
]
