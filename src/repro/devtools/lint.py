"""The lint driver: files in, :class:`Finding` records out, exit code 1.

Orchestrates the AST rules (:mod:`repro.devtools.rules`) and the
import-graph checks (:mod:`repro.devtools.imports`) over a set of paths,
applies ``# repro: noqa[RULE-ID]`` suppressions, and renders the result
as human text or strict JSON (via ``repro.export.jsonsafe``, naturally —
the linter is not above its own law).

Entry points: ``repro lint`` (the CLI subcommand) and ``python -m
repro.devtools`` both call :func:`main`.  Exit codes: 0 clean, 1 any
finding, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import ast
import sys
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.devtools import imports as import_analysis
from repro.devtools.base import (
    Finding,
    LintContext,
    Rule,
    module_name_for,
    parse_suppressions,
    run_rules,
)
from repro.devtools.rules import ALL_RULES, rule_index
from repro.errors import ReproError

__all__ = [
    "GRAPH_RULE_IDS",
    "PARSE_RULE_ID",
    "all_rule_ids",
    "lint_file",
    "lint_paths",
    "main",
    "render_json",
    "render_text",
    "run",
    "run_deep",
]

PARSE_RULE_ID = "PARSE-ERROR"

#: Whole-package rules the import analyzer owns (not AST rules).
GRAPH_RULE_IDS = (import_analysis.CYCLE_RULE_ID, import_analysis.LAYER_RULE_ID)


def all_rule_ids() -> list[str]:
    """Every selectable rule id, AST rules first, graph rules last."""
    return [rule.rule_id for rule in ALL_RULES] + list(GRAPH_RULE_IDS)


def lint_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """All findings of the AST ``rules`` (default: all) over one file."""
    path = Path(path)
    rules = ALL_RULES if rules is None else rules
    source = path.read_text()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_RULE_ID,
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = LintContext(
        path=str(path),
        module=module_name_for(path),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source, tree=tree),
    )
    return run_rules(rules, ctx)


def _python_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise ReproError(f"not a Python file or directory: {path}")
    seen: set[Path] = set()
    unique = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _package_roots(paths: Iterable[str | Path]) -> list[Path]:
    """Topmost package directories covered by directory arguments.

    The import-graph rules need a whole package to make sense, so they
    run once per package root found under/above each directory path:
    ``src/repro`` is its own root; passing ``src`` finds ``src/repro``;
    single-file arguments contribute nothing.
    """
    roots: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_dir():
            continue
        if (path / "__init__.py").exists():
            current = path.resolve()
            while (current.parent / "__init__.py").exists():
                current = current.parent
            roots.append(current)
        else:
            for child in sorted(path.iterdir()):
                if child.is_dir() and (child / "__init__.py").exists():
                    roots.append(child.resolve())
    unique: list[Path] = []
    for root in roots:
        if root not in unique:
            unique.append(root)
    return unique


def _graph_findings(paths: Iterable[str | Path], wanted: set[str] | None) -> list[Finding]:
    findings: list[Finding] = []
    suppression_cache: dict[str, dict[int, set[str]]] = {}
    for root in _package_roots(paths):
        graph = import_analysis.build_graph(root)
        produced: list[Finding] = []
        if wanted is None or import_analysis.CYCLE_RULE_ID in wanted:
            produced.extend(import_analysis.cycle_findings(graph))
        if wanted is None or import_analysis.LAYER_RULE_ID in wanted:
            produced.extend(import_analysis.layering_findings(graph))
        for finding in produced:
            if finding.path not in suppression_cache:
                try:
                    source = Path(finding.path).read_text()
                except OSError:
                    source = ""
                suppression_cache[finding.path] = parse_suppressions(source)
            ids = suppression_cache[finding.path].get(finding.line, set())
            if "*" in ids or finding.rule in ids:
                continue
            findings.append(finding)
    return findings


def lint_paths(
    paths: Sequence[str | Path], rule_ids: Sequence[str] | None = None
) -> list[Finding]:
    """Run the selected rules (default: everything) over ``paths``.

    ``rule_ids`` filters both AST and graph rules; unknown ids raise
    :class:`~repro.errors.ReproError` so typos fail loudly instead of
    silently linting nothing.
    """
    index = rule_index()
    wanted: set[str] | None = None
    if rule_ids is not None:
        wanted = {rule_id.upper() for rule_id in rule_ids}
        known = set(index) | set(GRAPH_RULE_IDS)
        unknown = wanted - known
        if unknown:
            raise ReproError(
                f"unknown rule id(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
    ast_rules: Sequence[Rule] = (
        ALL_RULES
        if wanted is None
        else [rule for rule in ALL_RULES if rule.rule_id in wanted]
    )
    findings: list[Finding] = []
    for path in _python_files(paths):
        findings.extend(lint_file(path, ast_rules))
    findings.extend(_graph_findings(paths, wanted))
    findings.sort(key=Finding.sort_key)
    return findings


def render_text(findings: Sequence[Finding], files_linted: int | None = None) -> str:
    """Human-readable report, one ``path:line:col: RULE message`` per line."""
    lines = [finding.render() for finding in findings]
    suffix = f" across {files_linted} file(s)" if files_linted is not None else ""
    if findings:
        lines.append(f"{len(findings)} finding(s){suffix}")
    else:
        lines.append(f"clean: no findings{suffix}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_linted: int | None = None) -> str:
    """The report as strict JSON (non-finite-safe, ``allow_nan=False``)."""
    # Lazy import: jsonsafe is a leaf, but *eagerly* importing it would
    # execute repro.export's package __init__ and drag the optimize
    # stack into every lint run (see the IMPORT-CYCLE rationale).
    from repro.export.jsonsafe import dumps as strict_dumps

    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
        "files_linted": files_linted,
        "rules": all_rule_ids(),
    }
    return strict_dumps(payload, indent=2)


def main(argv: Sequence[str] | None = None, prog: str = "repro lint") -> int:
    """Command-line entry point shared by ``repro lint`` and ``-m``."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Project-specific static analysis: invariant rules, "
        "import cycles, and the package layering contract.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE-ID",
        help="run only this rule (repeatable); default: all rules",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="OUT.json",
        help="additionally write the JSON report here (CI artifact)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="run the whole-program dataflow analysis (taint, set-order "
        "leaks, shared-memory races, fork capture) instead of the "
        "per-file rules",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="BASELINE.json",
        help="deep mode: baseline of accepted findings (default: "
        "auto-discover deep-baseline.json near the package root; "
        "pass 'none' to disable)",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="BASELINE.json",
        help="deep mode: write the current findings as the new baseline "
        "instead of failing on them",
    )
    args = parser.parse_args(argv)
    if (args.baseline or args.write_baseline) and not args.deep:
        print("error: --baseline/--write-baseline require --deep", file=sys.stderr)
        return 2
    try:
        if args.deep:
            return run_deep(
                args.paths,
                format=args.format,
                output=args.output,
                baseline=args.baseline,
                write_baseline=args.write_baseline,
            )
        return run(args.paths, args.rule, args.format, args.output)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def run(
    paths: Sequence[str | Path],
    rule_ids: Sequence[str] | None = None,
    format: str = "text",
    output: Path | None = None,
) -> int:
    """Lint ``paths``, print the report, and return the exit code.

    Shared by :func:`main` and the ``repro lint`` subcommand so both
    entry points agree on validation, rendering, and exit codes.
    Raises :class:`~repro.errors.ReproError` on bad invocations
    (missing paths, unknown rule ids) — callers map that to exit 2.
    """
    for path in paths:
        if not Path(path).exists():
            raise ReproError(f"no such path: {path}")
    files = len(_python_files(paths))
    findings = lint_paths(paths, rule_ids)
    if format == "json":
        print(render_json(findings, files))
    else:
        print(render_text(findings, files))
    if output is not None:
        output.write_text(render_json(findings, files) + "\n")
    return 1 if findings else 0


def run_deep(
    paths: Sequence[str | Path],
    format: str = "text",
    output: Path | None = None,
    baseline: str | None = None,
    write_baseline: Path | None = None,
) -> int:
    """Whole-program deep analysis behind ``repro lint --deep``.

    Exit codes match the shallow driver: 0 when every finding is
    baselined (stale baseline entries are reported but non-fatal), 1 on
    any new finding, 2 (via :class:`~repro.errors.ReproError` in the
    caller) on bad invocations.
    """
    # Lazy import: the flow engine is a heavyweight leaf of devtools and
    # shallow lint runs shouldn't pay for building it.
    from repro.devtools.flow.deep import (
        analyze_deep,
        render_deep_json,
        render_deep_text,
    )

    for path in paths:
        if not Path(path).exists():
            raise ReproError(f"no such path: {path}")
    report = analyze_deep(paths, baseline=baseline, write_baseline=write_baseline)
    if format == "json":
        print(render_deep_json(report))
    else:
        print(render_deep_text(report))
    if output is not None:
        output.write_text(render_deep_json(report) + "\n")
    return 1 if report.failed else 0
