"""Symbol table and call graph over a parsed tree — no imports executed.

:func:`build_program` parses every module under a package directory and
resolves, per function, where each call can land:

* **direct** — the callee is a function or method of the analyzed
  program (module-level name resolution through import aliases,
  ``self.method`` through the class and its in-program bases,
  ``obj.method`` when ``obj`` was locally constructed from a known
  class, closure calls to nested defs);
* **partial** — ``functools.partial(f, ...)`` contributes an edge to
  ``f`` at the partial site (the eventual call site is dynamic, but the
  flow into ``f`` is not);
* **external** — the callee provably lives outside the program (an
  imported third-party/stdlib module, a builtin, or a method name in
  the known-safe stdlib set);
* **UNRESOLVED** — everything else: higher-order parameters, dynamic
  attributes, ambiguous method names.  These are the analysis's honest
  soundness gaps; :mod:`repro.devtools.flow.deep` counts them against
  :data:`repro.devtools.flow.contract.UNRESOLVED_CALL_BUDGET`.

Resolution returns *sets* of candidate callees (method dispatch by
receiver-type heuristics can be one-to-many); the taint engine joins
over candidates, which is sound for may-analysis.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.base import module_name_for
from repro.devtools.flow import contract as flow_contract

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "build_program",
    "condensation_order",
]

#: Candidate-set ceiling for the method-name dispatch heuristic: a
#: method name defined by more classes than this is too ambiguous to
#: guess and the call is reported UNRESOLVED instead.
_MAX_METHOD_CANDIDATES = 3

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass(slots=True)
class FunctionInfo:
    """One function or method of the analyzed program."""

    qualname: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    lineno: int
    params: tuple[str, ...]
    class_qualname: str | None = None
    #: Names of nested defs, for closure-call resolution.
    local_defs: dict[str, str] = field(default_factory=dict)

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None


@dataclass(slots=True)
class ClassInfo:
    """One class: methods, base names, and annotated fields in order."""

    qualname: str
    module: str
    name: str
    lineno: int
    base_names: tuple[str, ...]
    methods: dict[str, str] = field(default_factory=dict)
    fields: tuple[str, ...] = ()
    #: The subset of ``fields`` annotated ``set[...]``/``frozenset[...]``.
    set_fields: frozenset[str] = frozenset()


@dataclass(slots=True)
class ModuleInfo:
    """One parsed module: bindings visible at module scope."""

    module: str
    path: str
    tree: ast.Module
    #: local name -> canonical dotted target ("numpy", "repro.x.f", ...).
    bindings: dict[str, str] = field(default_factory=dict)
    #: module-level ``NAME = Ctor(...)`` sites: name -> (ctor, line).
    global_ctors: dict[str, tuple[str, int]] = field(default_factory=dict)


@dataclass(slots=True)
class CallSite:
    """One call expression, with every candidate callee."""

    caller: str
    node: ast.Call
    name: str  # the dotted spelling at the call site ("" if not a name)
    canonical: str  # after import-alias rewriting ("" if unknown)
    targets: tuple[str, ...]  # resolved program-function qualnames
    kind: str  # "direct" | "method" | "partial" | "external" | "unresolved"
    line: int

    @property
    def resolved(self) -> bool:
        return bool(self.targets)


@dataclass(slots=True)
class Program:
    """Everything the dataflow passes need, built in one parse."""

    root: str
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: caller qualname -> call sites, in source order.
    calls: dict[str, list[CallSite]] = field(default_factory=dict)
    #: method name -> class qualnames defining it (sorted).
    method_index: dict[str, tuple[str, ...]] = field(default_factory=dict)
    parse_errors: list[tuple[str, int, str]] = field(default_factory=list)

    def unresolved_sites(self) -> list[CallSite]:
        """Every UNRESOLVED call site, in (module, line) order."""
        sites = [
            site
            for caller in sorted(self.calls)
            for site in self.calls[caller]
            if site.kind == "unresolved"
        ]
        return sites

    def function_for_class_method(self, cls: str, method: str) -> str | None:
        """Resolve ``method`` on class ``cls`` through in-program bases."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            module = self.modules.get(info.module)
            for base in info.base_names:
                target = _resolve_dotted(base, module, self) if module else None
                if target is not None and target in self.classes:
                    queue.append(target)
        return None


def annotation_is_set(node: ast.AST | None) -> bool:
    """True when an annotation expression names a set type."""
    if node is None:
        return False
    spelled = ast.unparse(node)
    head = spelled.split("[", 1)[0].strip()
    return head in {
        "set", "frozenset", "Set", "FrozenSet", "AbstractSet",
        "typing.Set", "typing.FrozenSet", "typing.AbstractSet",
        "collections.abc.Set",
    }


def class_of_annotation(
    annotation: ast.expr | None, module: ModuleInfo, program: Program
) -> str | None:
    """The program class an annotation names, resolved in ``module``.

    Understands ``X``, ``pkg.X``, ``X | None``, and string annotations;
    generics and anything else resolve to ``None``.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return class_of_annotation(annotation.left, module, program) or (
            class_of_annotation(annotation.right, module, program)
        )
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
        return class_of_annotation(annotation, module, program)
    spelled = _dotted(annotation)
    if not spelled:
        return None
    target = _resolve_dotted(spelled, module, program)
    if target is not None and target in program.classes:
        return target
    return None


def _resolve_dotted(name: str, module: ModuleInfo, program: Program) -> str | None:
    """Canonicalize a dotted spelling through module-level bindings."""
    if not name:
        return None
    head, _, rest = name.partition(".")
    target = module.bindings.get(head)
    if target is None:
        if head == module.module.rsplit(".", 1)[-1]:
            target = module.module
        else:
            return None
    return f"{target}.{rest}" if rest else target


class _ModuleCollector(ast.NodeVisitor):
    """First pass: bindings, defs, classes, module-global constructors."""

    def __init__(self, info: ModuleInfo, program: Program) -> None:
        self.info = info
        self.program = program
        self._class_stack: list[ClassInfo] = []
        self._func_stack: list[FunctionInfo] = []

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.info.bindings[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            parts = self.info.module.split(".")
            if self.info.path.endswith("__init__.py"):
                parts = parts + [""]  # package imports resolve from itself
            parts = parts[: len(parts) - node.level]
            base = ".".join([p for p in parts if p] + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.info.bindings[local] = f"{base}.{alias.name}" if base else alias.name

    # -- defs ----------------------------------------------------------
    def _qualname(self, name: str) -> str:
        if self._func_stack:
            return f"{self._func_stack[-1].qualname}.{name}"
        if self._class_stack:
            return f"{self._class_stack[-1].qualname}.{name}"
        return f"{self.info.module}.{name}"

    def _visit_functiondef(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        qualname = self._qualname(node.name)
        args = node.args
        params = tuple(
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        )
        enclosing_class = (
            self._class_stack[-1].qualname
            if self._class_stack and not self._func_stack
            else None
        )
        info = FunctionInfo(
            qualname=qualname,
            module=self.info.module,
            path=self.info.path,
            node=node,
            lineno=node.lineno,
            params=params,
            class_qualname=enclosing_class,
        )
        self.program.functions[qualname] = info
        if enclosing_class is not None:
            self._class_stack[-1].methods[node.name] = qualname
        elif self._func_stack:
            self._func_stack[-1].local_defs[node.name] = qualname
        else:
            self.info.bindings.setdefault(node.name, qualname)
        self._func_stack.append(info)
        for child in node.body:
            self.visit(child)
        self._func_stack.pop()

    visit_FunctionDef = _visit_functiondef
    visit_AsyncFunctionDef = _visit_functiondef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualname(node.name)
        bases = []
        for base in node.bases:
            spelled = _dotted(base)
            if spelled:
                bases.append(spelled)
        info = ClassInfo(
            qualname=qualname,
            module=self.info.module,
            name=node.name,
            lineno=node.lineno,
            base_names=tuple(bases),
        )
        fields: list[str] = []
        set_fields: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                fields.append(stmt.target.id)
                if annotation_is_set(stmt.annotation):
                    set_fields.add(stmt.target.id)
        info.fields = tuple(fields)
        info.set_fields = frozenset(set_fields)
        self.program.classes[qualname] = info
        if not self._class_stack and not self._func_stack:
            self.info.bindings.setdefault(node.name, qualname)
        self._class_stack.append(info)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    # -- module globals ------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        at_module_scope = not self._class_stack and not self._func_stack
        if at_module_scope:
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if isinstance(node.value, ast.Call):
                    spelled = _dotted(node.value.func)
                    if spelled:
                        self.info.global_ctors[target.id] = (spelled, node.lineno)
                elif isinstance(node.value, ast.Name):
                    # module-level alias: NAME = other (function aliases)
                    bound = self.info.bindings.get(node.value.id)
                    if bound is not None:
                        self.info.bindings.setdefault(target.id, bound)
        self.generic_visit(node)


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` spelling of an expression, or ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


class _CallCollector(ast.NodeVisitor):
    """Second pass, per function: resolve every call expression."""

    def __init__(self, func: FunctionInfo, module: ModuleInfo, program: Program) -> None:
        self.func = func
        self.module = module
        self.program = program
        self.sites: list[CallSite] = []
        #: local var -> class qualname, from ``obj = ClassName(...)`` or
        #: a parameter annotated with a program class.
        self.local_types: dict[str, str] = {}
        #: locals provably bound to non-program objects (``parser =
        #: argparse.ArgumentParser()``): method calls on them are
        #: external, not unresolved.
        self.local_external: set[str] = set()
        args = func.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            cls = self._class_of_annotation(arg.annotation)
            if cls is not None:
                self.local_types[arg.arg] = cls

    def _class_of_annotation(self, annotation: ast.expr | None) -> str | None:
        """Program class named by a (possibly ``X | None``) annotation."""
        return class_of_annotation(annotation, self.module, self.program)

    def run(self) -> list[CallSite]:
        for stmt in self.func.node.body:
            self.visit(stmt)
        return self.sites

    # Nested defs get their own _CallCollector; don't descend into them.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Record receiver types for ``obj = ClassName(...)``.
        if isinstance(node.value, ast.Call):
            cls = self._class_of_call(node.value)
            if cls is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.local_types[target.id] = cls
            elif self._is_external_ctor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.local_external.add(target.id)
        self.generic_visit(node)

    def _is_external_ctor(self, call: ast.Call) -> bool:
        """True when the call provably constructs a non-program object.

        Covers both direct external constructors (``argparse.
        ArgumentParser()``) and chained factories on an already-external
        receiver (``commands.add_parser(...)``), so argparse-style
        builder chains stay typed all the way down.
        """
        spelled = _dotted(call.func)
        if not spelled:
            return False
        head = spelled.partition(".")[0]
        if head in self.local_external:
            return True
        canonical = self._canonical(spelled)
        if canonical is None:
            return False
        root = self.program.root
        if canonical == root or canonical.startswith(root + "."):
            return False
        return (
            canonical not in self.program.functions
            and canonical not in self.program.classes
        )

    def _class_of_call(self, call: ast.Call) -> str | None:
        spelled = _dotted(call.func)
        canonical = self._canonical(spelled)
        if canonical is None:
            return None
        if canonical in self.program.classes:
            return canonical
        # factory functions: ``engine = engine_for(model)`` types the
        # local through the callee's return annotation.
        callee = self.program.functions.get(canonical)
        if callee is not None and callee.node.returns is not None:
            callee_module = self.program.modules.get(callee.module)
            if callee_module is not None:
                return class_of_annotation(
                    callee.node.returns, callee_module, self.program
                )
        return None

    def _canonical(self, spelled: str) -> str | None:
        if not spelled:
            return None
        head, _, rest = spelled.partition(".")
        # innermost scope first: nested defs, params, module bindings
        if head in self.func.local_defs:
            base = self.func.local_defs[head]
        elif head in self.func.params:
            return None  # higher-order: resolved at, not before, the call
        elif head in self.module.bindings:
            base = self.module.bindings[head]
        elif head in _BUILTIN_NAMES:
            base = head
        else:
            return None
        return f"{base}.{rest}" if rest else base

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        spelled = _dotted(node.func)
        site = self._resolve(node, spelled)
        self.sites.append(site)
        # functools.partial(f, ...) binds f here even though the actual
        # call happens elsewhere — record the flow edge at this site.
        canonical = site.canonical
        if canonical in {"functools.partial", "partial"} and node.args:
            inner = _dotted(node.args[0])
            bound = self._resolve_callable(inner)
            if bound:
                self.sites.append(
                    CallSite(
                        caller=self.func.qualname,
                        node=node,
                        name=inner,
                        canonical=self._canonical(inner) or inner,
                        targets=bound,
                        kind="partial",
                        line=node.lineno,
                    )
                )

    def _resolve_callable(self, spelled: str) -> tuple[str, ...]:
        """Program functions a bare callable reference can denote."""
        canonical = self._canonical(spelled)
        if canonical is None:
            return ()
        if canonical in self.program.functions:
            return (canonical,)
        if canonical in self.program.classes:
            init = self.program.function_for_class_method(canonical, "__init__")
            return (init,) if init else ()
        return ()

    def _resolve(self, node: ast.Call, spelled: str) -> CallSite:
        def site(targets: tuple[str, ...], kind: str, canonical: str = "") -> CallSite:
            return CallSite(
                caller=self.func.qualname,
                node=node,
                name=spelled,
                canonical=canonical,
                targets=targets,
                kind=kind,
                line=node.lineno,
            )

        if not spelled:
            # call-of-call / subscript call / lambda call: dynamic.
            return site((), "unresolved")

        head, _, rest = spelled.partition(".")

        # self.method(...) / cls.method(...) — the receiver type is the
        # enclosing class.
        if head in {"self", "cls"} and rest and self.func.class_qualname is not None:
            method = rest.split(".")[0]
            target = self.program.function_for_class_method(
                self.func.class_qualname, method
            )
            if target is not None:
                return site((target,), "direct", canonical=target)
            fallback = self._method_heuristic(node, spelled, method)
            if fallback.kind == "unresolved" and self._has_external_base(
                self.func.class_qualname
            ):
                # the method lives on a base class outside the program
                # (ast.NodeVisitor.visit, unittest helpers, ...)
                return site((), "external")
            return fallback

        # cls(...) inside a classmethod constructs the enclosing class.
        if head == "cls" and not rest and self.func.class_qualname is not None:
            init = self.program.function_for_class_method(
                self.func.class_qualname, "__init__"
            )
            return site(
                (init,) if init else (), "direct", canonical=self.func.class_qualname
            )

        # obj.method(...) where obj's type is known (local construction
        # or a program-class annotation).
        if rest and head in self.local_types:
            method = rest.split(".")[0]
            target = self.program.function_for_class_method(
                self.local_types[head], method
            )
            if target is not None:
                return site((target,), "direct", canonical=target)
            return self._method_heuristic(node, spelled, method)

        # obj.method(...) on a provably non-program object.
        if rest and head in self.local_external:
            return site((), "external")

        canonical = self._canonical(spelled)
        if canonical is None:
            if rest:
                # method on a parameter or untyped local: dispatch by
                # name, falling back to the known-safe stdlib set.
                return self._method_heuristic(node, spelled, rest.rsplit(".", 1)[-1])
            # bare higher-order parameter or unknown name: honest gap.
            return site((), "unresolved")

        if canonical in self.program.functions:
            return site((canonical,), "direct", canonical=canonical)
        if canonical in self.program.classes:
            init = self.program.function_for_class_method(canonical, "__init__")
            return site(
                (init,) if init else (), "direct", canonical=canonical
            )
        # Class.method(...) spelled through the class.
        base, _, attr = canonical.rpartition(".")
        if base in self.program.classes:
            target = self.program.function_for_class_method(base, attr)
            if target is not None:
                return site((target,), "direct", canonical=target)
        if canonical.startswith(self.program.root + ".") or canonical == self.program.root:
            # names inside the analyzed root that we cannot find: a
            # module attribute we did not model — unresolved, honestly.
            return site((), "unresolved", canonical=canonical)
        # externally-imported module, builtin, or stdlib: external.
        return site((), "external", canonical=canonical)

    def _has_external_base(self, cls: str) -> bool:
        """True when ``cls`` inherits from anything outside the program."""
        info = self.program.classes.get(cls)
        if info is None:
            return False
        module = self.program.modules.get(info.module)
        for base in info.base_names:
            target = _resolve_dotted(base, module, self.program) if module else None
            if target is None or target not in self.program.classes:
                return True
        return False

    def _method_heuristic(self, node: ast.Call, spelled: str, method: str) -> CallSite:
        """Dispatch by method name when the receiver type is unknown."""
        candidates = self.program.method_index.get(method, ())
        targets = tuple(
            self.program.classes[cls].methods[method] for cls in candidates
        )
        if 0 < len(targets) <= _MAX_METHOD_CANDIDATES:
            return CallSite(
                caller=self.func.qualname,
                node=node,
                name=spelled,
                canonical="",
                targets=targets,
                kind="method",
                line=node.lineno,
            )
        kind = (
            "external"
            if not targets and method in flow_contract.KNOWN_SAFE_METHODS
            else "unresolved"
        )
        return CallSite(
            caller=self.func.qualname,
            node=node,
            name=spelled,
            canonical="",
            targets=(),
            kind=kind,
            line=node.lineno,
        )


def build_program(package_dir: str | Path, root: str | None = None) -> Program:
    """Parse every ``*.py`` under ``package_dir`` into a :class:`Program`."""
    package_dir = Path(package_dir)
    root = root or package_dir.name
    program = Program(root=root)
    sources: list[tuple[str, Path, ast.Module]] = []
    for path in sorted(package_dir.rglob("*.py")):
        module = module_name_for(path)
        try:
            tree = ast.parse(path.read_text())
        except SyntaxError as exc:
            program.parse_errors.append((str(path), exc.lineno or 1, exc.msg or ""))
            continue
        sources.append((module, path, tree))
    # Pass 1: bindings, functions, classes.
    for module, path, tree in sources:
        info = ModuleInfo(module=module, path=str(path), tree=tree)
        program.modules[module] = info
        _ModuleCollector(info, program).visit(tree)
    # Canonicalize class-name bindings recorded as bare class qualnames.
    index: dict[str, list[str]] = {}
    for qualname in sorted(program.classes):
        for method in program.classes[qualname].methods:
            index.setdefault(method, []).append(qualname)
    program.method_index = {
        method: tuple(sorted(classes)) for method, classes in index.items()
    }
    # Pass 2: per-function call resolution.
    for qualname in sorted(program.functions):
        func = program.functions[qualname]
        module = program.modules[func.module]
        program.calls[qualname] = _CallCollector(func, module, program).run()
    return program


def condensation_order(program: Program) -> list[tuple[str, ...]]:
    """SCCs of the call graph in reverse topological (callee-first) order.

    Processing functions in this order lets the taint fixpoint compute
    each summary exactly once per SCC sweep: by the time a caller is
    analyzed, every callee outside its own SCC already has a final
    summary, and cycles iterate only within their component.
    """
    adjacency: dict[str, list[str]] = {
        qualname: sorted(
            {
                target
                for call_site in sites
                for target in call_site.targets
                if target in program.functions
            }
        )
        for qualname, sites in program.calls.items()
    }
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    components: list[tuple[str, ...]] = []

    def strongconnect(start: str) -> None:
        work: list[tuple[str, int]] = [(start, 0)]
        index[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, pointer = work[-1]
            neighbours = adjacency.get(node, [])
            advanced = False
            while pointer < len(neighbours):
                neighbour = neighbours[pointer]
                pointer += 1
                if neighbour not in index:
                    work[-1] = (node, pointer)
                    index[neighbour] = lowlink[neighbour] = counter[0]
                    counter[0] += 1
                    stack.append(neighbour)
                    on_stack.add(neighbour)
                    work.append((neighbour, 0))
                    advanced = True
                    break
                if neighbour in on_stack:
                    lowlink[node] = min(lowlink[node], index[neighbour])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(tuple(sorted(component)))

    for qualname in sorted(adjacency):
        if qualname not in index:
            strongconnect(qualname)
    # Tarjan emits components in reverse topological order already.
    return components
