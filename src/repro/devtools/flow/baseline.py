"""The committed-baseline workflow: accepted findings, as reviewed data.

A whole-program analysis switched on over a grown codebase reports
flows the team has already looked at and accepted (a wall-clock solve
time in a stats dict, an environment-driven worker count).  Failing CI
on those forever would teach everyone to ignore the tool; silently
dropping them would hide real regressions.  The baseline threads that
needle: every accepted finding is an entry in a committed JSON file
*with a one-line justification*, matching is by ``(rule, module,
message)`` — never by line number, so unrelated edits don't churn the
file — and anything not in the baseline fails the run.

Stale entries (baselined findings the analysis no longer reports) are
listed in the report but do not fail the CLI; the self-analysis test
pins the committed baseline to exactly the current finding set, so
staleness is cleaned up in review rather than blocking a fix.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.devtools.base import Finding, module_name_for
from repro.errors import ReproError

__all__ = [
    "BaselineMatch",
    "baseline_key",
    "load_baseline",
    "match_baseline",
    "write_baseline",
]


def baseline_key(finding: Finding) -> tuple[str, str, str]:
    """Location-independent identity: (rule, dotted module, message).

    Messages name the function qualname, not the line, so the key
    survives reformatting and unrelated edits in the same file.
    """
    return (finding.rule, module_name_for(Path(finding.path)), finding.message)


@dataclass(slots=True)
class BaselineMatch:
    """How a finding set fared against a baseline."""

    new: list[Finding]
    accepted: list[Finding]
    stale: list[dict[str, str]]


def load_baseline(path: str | Path) -> dict[tuple[str, str, str], str]:
    """Baseline entries as key -> justification."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ReproError(f"unreadable baseline {path}: {exc}") from exc
    entries = payload.get("entries", [])
    baseline: dict[tuple[str, str, str], str] = {}
    for entry in entries:
        key = (entry["rule"], entry["module"], entry["message"])
        baseline[key] = entry.get("justification", "")
    return baseline


def match_baseline(
    findings: list[Finding], baseline: dict[tuple[str, str, str], str]
) -> BaselineMatch:
    """Partition ``findings`` into new vs. baseline-accepted, plus stale."""
    new: list[Finding] = []
    accepted: list[Finding] = []
    seen: set[tuple[str, str, str]] = set()
    for finding in findings:
        key = baseline_key(finding)
        if key in baseline:
            accepted.append(finding)
            seen.add(key)
        else:
            new.append(finding)
    stale = [
        {"rule": key[0], "module": key[1], "message": key[2], "justification": baseline[key]}
        for key in sorted(baseline)
        if key not in seen
    ]
    return BaselineMatch(new=new, accepted=accepted, stale=stale)


def write_baseline(
    findings: list[Finding],
    path: str | Path,
    previous: dict[tuple[str, str, str], str] | None = None,
) -> None:
    """Write every current finding as a baseline entry.

    Justifications from ``previous`` (the existing baseline, if any)
    are preserved for entries that persist; new entries get a TODO
    placeholder the review is expected to replace.
    """
    previous = previous or {}
    entries = []
    for finding in sorted(set(findings), key=Finding.sort_key):
        rule, module, message = baseline_key(finding)
        entries.append(
            {
                "rule": rule,
                "module": module,
                "message": message,
                "line": finding.line,
                "justification": previous.get(
                    (rule, module, message), "TODO: justify or fix"
                ),
            }
        )
    # dedupe identical keys (one flow reported from two lines)
    unique: dict[tuple[str, str, str], dict] = {}
    for entry in entries:
        unique.setdefault((entry["rule"], entry["module"], entry["message"]), entry)
    payload = {
        "version": 1,
        "comment": (
            "Accepted deep-analysis findings. Matching ignores line numbers; "
            "every entry needs a one-line justification. Regenerate with "
            "`repro lint --deep --write-baseline`."
        ),
        "entries": sorted(
            unique.values(), key=lambda e: (e["rule"], e["module"], e["message"])
        ),
    }
    # Lazy leaf import, same rationale as the lint driver.
    from repro.export.jsonsafe import dumps as strict_dumps

    Path(path).write_text(strict_dumps(payload, indent=2) + "\n")
