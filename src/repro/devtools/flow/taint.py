"""Fixpoint taint analysis over the call graph: sources -> sinks.

The engine is an abstract interpreter over function bodies.  Each local
variable carries a set of **taint tokens**: kind tags from
:mod:`repro.devtools.flow.contract` (``CLOCK``, ``RNG``, ``ORDER``,
``ENV``, ``ADDR``, ``POOL``) plus parameter tokens ``P0..Pn`` that make
summaries polymorphic — a callee that returns its argument untouched
returns ``{P0}``, and the caller substitutes whatever taint the actual
argument carried.

Per function the engine produces a :class:`Summary`:

* ``returns`` — tokens the return value may carry;
* ``returns_set`` / ``returns_shm`` — type facts (set-typed values feed
  the ORDER rule; shared-memory views feed SHM-WRITE);
* ``param_sinks`` — parameters that flow into a sink *inside* the
  function, so a caller passing taint three frames above the sink is
  still caught.

Summaries converge in one pass over the SCC condensation of the call
graph (:func:`~repro.devtools.flow.symbols.condensation_order`):
callee-first order means every summary outside the current component is
final before it is read, and cyclic components iterate locally until
stable.  Findings are emitted in a second pass against the converged
summaries, so the fixpoint never duplicates a report.

Set-typedness is tracked from literals, comprehensions, ``set()`` /
``frozenset()`` constructors, set-operator algebra, and — the load-
bearing heuristic — *annotations*: a parameter, local, or dataclass
field annotated ``set[...]``/``frozenset[...]`` is set-typed, which is
how ``deployment.monitor_ids`` iteration is recognized three calls away
from its construction.  Plain ``dict`` iteration follows insertion
order and is treated as deterministic; ``set`` iteration is the hazard
(string hashes are salted per process, so iteration order varies run to
run).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.devtools.base import Finding
from repro.devtools.flow import contract as fc
from repro.devtools.flow import races
from repro.devtools.flow.symbols import (
    CallSite,
    FunctionInfo,
    Program,
    annotation_is_set,
    class_of_annotation,
    condensation_order,
)

__all__ = ["Summary", "TAINT_RULE_ID", "ORDER_RULE_ID", "analyze_taint"]

TAINT_RULE_ID = "TAINT-RESULT"
ORDER_RULE_ID = "ORDER-LEAK"

#: Iteration cap for a single (possibly self-recursive) function body
#: and for a cyclic SCC; abstract states are small, so convergence is
#: fast and the cap is a backstop, not a tuning knob.
_MAX_ITER = 8

_KINDS = frozenset(
    {fc.KIND_CLOCK, fc.KIND_RNG, fc.KIND_ORDER, fc.KIND_ENV, fc.KIND_ADDR, fc.KIND_POOL}
)

#: Receiver methods that fold argument taint back into the receiver —
#: ``acc.append(x)`` taints ``acc`` with whatever ``x`` carried.
_RECEIVER_MUTATORS = frozenset(
    {"append", "add", "extend", "insert", "update", "setdefault", "appendleft"}
)

#: Set methods whose result is itself a set (no order exposed).
_SET_PRESERVING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Human-readable names for the kind tags, used in messages.
_KIND_LABEL = {
    fc.KIND_CLOCK: "wall-clock",
    fc.KIND_RNG: "OS-entropy RNG",
    fc.KIND_ORDER: "set-iteration-order",
    fc.KIND_ENV: "process-environment",
    fc.KIND_ADDR: "object-identity",
    fc.KIND_POOL: "pool-completion-order",
}


@dataclass(frozen=True)
class Summary:
    """The converged interprocedural effect of one function."""

    returns: frozenset[str] = frozenset()
    returns_set: bool = False
    returns_shm: bool = False
    #: (param index, sink label, sink line, exempt-kinds) — a caller
    #: passing taint into this parameter reaches the sink.
    param_sinks: tuple[tuple[int, str, int, frozenset[str]], ...] = ()


_EMPTY = Summary()


def _published_names(arg: ast.expr) -> list[str]:
    """Variable names whose arrays a publish call snapshots.

    ``pool.share({"alpha": alpha, "beta": views})`` publishes the dict's
    *values*; a bare name argument publishes that name.
    """
    if isinstance(arg, ast.Name):
        return [arg.id]
    if isinstance(arg, ast.Dict):
        return [value.id for value in arg.values if isinstance(value, ast.Name)]
    return []


#: Annotation predicate shared with the symbol layer.
_annotation_is_set = annotation_is_set


def _set_typed_attributes(program: Program) -> frozenset[str]:
    """Attribute names annotated set-typed anywhere in the program.

    ``deployment.monitor_ids`` is set-typed because *some* class
    annotates a ``monitor_ids`` field ``frozenset[str]`` — name-based,
    deliberately: the analysis never knows the receiver's class for
    sure.  The claim must be *unanimous*, though: a name annotated
    ``frozenset`` in one record and ``tuple`` in another (the program
    has both a ``fields: frozenset[str]`` and a ``fields: tuple[...]``)
    says nothing about an arbitrary receiver, so conflicted names are
    dropped rather than guessed.
    """
    set_names: set[str] = set()
    other_names: set[str] = set()
    for module_name in sorted(program.modules):
        for stmt in ast.walk(program.modules[module_name].tree):
            if not isinstance(stmt, ast.ClassDef):
                continue
            for item in stmt.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    if _annotation_is_set(item.annotation):
                        set_names.add(item.target.id)
                    else:
                        other_names.add(item.target.id)
    return frozenset(set_names - other_names)


class _Analyzer:
    """One pass of the abstract interpreter over one function body."""

    def __init__(
        self,
        func: FunctionInfo,
        program: Program,
        summaries: dict[str, Summary],
        set_attrs: frozenset[str],
        emit: list[Finding] | None,
    ) -> None:
        self.func = func
        self.program = program
        self.summaries = summaries
        self.set_attrs = set_attrs
        self.emit = emit  # None during summary computation
        self.sites = {
            id(site.node): site
            for site in program.calls.get(func.qualname, [])
            if site.kind != "partial"
        }
        self.partial_sites = [
            site for site in program.calls.get(func.qualname, []) if site.kind == "partial"
        ]
        self.env: dict[str, frozenset[str]] = {}
        self.set_vars: set[str] = set()
        self.shm_vars: set[str] = set()
        self.published_vars: dict[str, int] = {}
        self.blake_vars: set[str] = set()
        self.ret: frozenset[str] = frozenset()
        self.ret_set = False
        self.ret_shm = False
        self.param_sinks: list[tuple[int, str, int, frozenset[str]]] = []
        #: var name -> program-class qualname, for receiver-aware
        #: attribute typing (``deployment.monitor_ids`` is a set because
        #: *Deployment* says so, not because the name usually is one).
        self.var_class: dict[str, str] = {}
        module = program.modules.get(func.module)
        args = func.node.args
        for index, param in enumerate(func.params):
            self.env[param] = frozenset({f"P{index}"})
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if _annotation_is_set(arg.annotation):
                self.set_vars.add(arg.arg)
            if module is not None:
                cls = class_of_annotation(arg.annotation, module, program)
                if cls is not None:
                    self.var_class[arg.arg] = cls
        if func.is_method and func.class_qualname is not None and func.params:
            self.var_class.setdefault(func.params[0], func.class_qualname)

    # -- driving -------------------------------------------------------
    def run(self) -> Summary:
        previous: tuple | None = None
        for _ in range(_MAX_ITER):
            # publish/digest tracking is statement-order-sensitive:
            # reset per sweep so sweep N never sees sweep N-1's "later"
            # state as if it happened "earlier".
            self.published_vars.clear()
            self.blake_vars.clear()
            self._exec_block(self.func.node.body)
            state = (self.ret, self.ret_set, self.ret_shm, tuple(self.param_sinks))
            if state == previous:
                break
            previous = state
        if _annotation_is_set(self.func.node.returns):
            self.ret_set = True
        return Summary(
            returns=frozenset(self.ret),
            returns_set=self.ret_set,
            returns_shm=self.ret_shm,
            param_sinks=tuple(sorted(set(self.param_sinks))),
        )

    # -- statements ----------------------------------------------------
    def _exec_block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self._taint(stmt.value)
            is_set = self._is_set(stmt.value)
            is_shm = self._is_shm(stmt.value)
            cls = self._class_of_value(stmt.value)
            for target in stmt.targets:
                self._assign(target, taint, is_set, is_shm)
                if isinstance(target, ast.Name):
                    if cls is not None:
                        self.var_class[target.id] = cls
                    else:
                        self.var_class.pop(target.id, None)
            if isinstance(stmt.value, ast.Call):
                site = self.sites.get(id(stmt.value))
                called = (site.canonical if site else "") or (site.name if site else "")
                if (
                    called in fc.BLAKE2B_CONSTRUCTORS
                    or called.rsplit(".", 1)[-1] in fc.BLAKE2B_CONSTRUCTORS
                ):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.blake_vars.add(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            taint = self._taint(stmt.value) if stmt.value else frozenset()
            is_set = _annotation_is_set(stmt.annotation) or (
                stmt.value is not None and self._is_set(stmt.value)
            )
            is_shm = stmt.value is not None and self._is_shm(stmt.value)
            self._assign(stmt.target, taint, is_set, is_shm)
            if isinstance(stmt.target, ast.Name):
                module = self.program.modules.get(self.func.module)
                cls = (
                    class_of_annotation(stmt.annotation, module, self.program)
                    if module is not None
                    else None
                )
                if cls is not None:
                    self.var_class[stmt.target.id] = cls
        elif isinstance(stmt, ast.AugAssign):
            taint = self._taint(stmt.value) | self._taint(stmt.target)
            self._assign(stmt.target, taint, False, False)
            self._check_shm_store(stmt.target, stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self._taint(stmt.iter)
            if self._is_set(stmt.iter):
                taint = taint | {fc.KIND_ORDER}
            self._assign(stmt.target, taint, False, False)
            self._loop([*stmt.body, *stmt.orelse])
        elif isinstance(stmt, ast.While):
            self._taint(stmt.test)
            self._loop([*stmt.body, *stmt.orelse])
        elif isinstance(stmt, ast.If):
            self._taint(stmt.test)
            self._branch(stmt.body, stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._taint(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(
                        item.optional_vars,
                        taint,
                        self._is_set(item.context_expr),
                        self._is_shm(item.context_expr),
                    )
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.ret = self.ret | self._taint(stmt.value)
                self.ret_set = self.ret_set or self._is_set(stmt.value)
                self.ret_shm = self.ret_shm or self._is_shm(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._taint(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested defs are separate program functions
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._taint(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)

    def _loop(self, body: list[ast.stmt]) -> None:
        # Two body sweeps approximate the loop fixpoint: the second pass
        # sees bindings the first created, which covers accumulators.
        self._exec_block(body)
        self._exec_block(body)

    def _branch(self, body: list[ast.stmt], orelse: list[ast.stmt]) -> None:
        snapshot = dict(self.env)
        snap_sets = set(self.set_vars)
        snap_shm = set(self.shm_vars)
        snap_classes = dict(self.var_class)
        self._exec_block(body)
        after_body = dict(self.env)
        after_classes = dict(self.var_class)
        self.env = snapshot
        self.set_vars = snap_sets
        self.shm_vars = snap_shm
        self.var_class = snap_classes
        self._exec_block(orelse)
        for name, tokens in after_body.items():
            self.env[name] = self.env.get(name, frozenset()) | tokens
        # classes must agree across branches to survive the join
        for name, cls in list(self.var_class.items()):
            if after_classes.get(name, cls) != cls:
                self.var_class.pop(name)
        for name, cls in after_classes.items():
            self.var_class.setdefault(name, cls)

    def _assign(self, target: ast.expr, taint: frozenset[str], is_set: bool, is_shm: bool) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
            if is_set:
                self.set_vars.add(target.id)
            else:
                self.set_vars.discard(target.id)
            if is_shm:
                self.shm_vars.add(target.id)
            else:
                self.shm_vars.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taint, False, is_shm)
        elif isinstance(target, ast.Subscript):
            self._check_shm_store(target, target)
            base = target.value
            if isinstance(base, ast.Name):
                self.env[base.id] = self.env.get(base.id, frozenset()) | taint | self._taint(target.slice)
        elif isinstance(target, ast.Attribute):
            self._check_shm_store(target, target)
            base = target.value
            if isinstance(base, ast.Name):
                self.env[base.id] = self.env.get(base.id, frozenset()) | taint
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taint, False, False)

    # -- shared-memory write checks (rule logic in flow.races) ---------
    def _check_shm_store(self, target: ast.expr, anchor: ast.AST) -> None:
        if self.emit is None:
            return
        finding = races.shm_store_finding(
            target,
            anchor,
            self.func,
            is_shm=self._is_shm,
            published=self.published_vars,
        )
        if finding is not None:
            self.emit.append(finding)

    # -- expressions ---------------------------------------------------
    def _taint(self, node: ast.expr | None) -> frozenset[str]:
        if node is None or isinstance(node, (ast.Constant, ast.Lambda)):
            return frozenset()
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset())
        if isinstance(node, ast.Attribute):
            return self._taint(node.value)
        if isinstance(node, ast.Subscript):
            return self._taint(node.value) | self._taint(node.slice)
        if isinstance(node, ast.Call):
            return self._taint_call(node)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            result: frozenset[str] = frozenset()
            for element in node.elts:
                result = result | self._taint(element)
            return result
        if isinstance(node, ast.Dict):
            result = frozenset()
            for key in node.keys:
                if key is not None:
                    result = result | self._taint(key)
            for value in node.values:
                result = result | self._taint(value)
            return result
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            return self._taint_comprehension(node)
        if isinstance(node, ast.BoolOp):
            result = frozenset()
            for value in node.values:
                result = result | self._taint(value)
            return result
        if isinstance(node, ast.BinOp):
            return self._taint(node.left) | self._taint(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._taint(node.operand)
        if isinstance(node, ast.Compare):
            result = self._taint(node.left)
            for comparator in node.comparators:
                result = result | self._taint(comparator)
            return result
        if isinstance(node, ast.IfExp):
            return self._taint(node.test) | self._taint(node.body) | self._taint(node.orelse)
        if isinstance(node, ast.JoinedStr):
            result = frozenset()
            for value in node.values:
                result = result | self._taint(value)
            return result
        if isinstance(node, ast.FormattedValue):
            return self._taint(node.value)
        if isinstance(node, ast.Starred):
            return self._taint(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._taint(node.value)
        if isinstance(node, ast.Yield):
            return self._taint(node.value) if node.value else frozenset()
        if isinstance(node, ast.NamedExpr):
            taint = self._taint(node.value)
            self._assign(node.target, taint, self._is_set(node.value), self._is_shm(node.value))
            return taint
        if isinstance(node, ast.Slice):
            result = frozenset()
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    result = result | self._taint(part)
            return result
        return frozenset()

    def _taint_comprehension(self, node: ast.expr) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        ordered_result = isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp))
        for generator in node.generators:
            iter_taint = self._taint(generator.iter)
            if self._is_set(generator.iter) and ordered_result:
                iter_taint = iter_taint | {fc.KIND_ORDER}
            self._assign(generator.target, iter_taint, False, False)
            result = result | iter_taint
            for condition in generator.ifs:
                self._taint(condition)
        if isinstance(node, ast.DictComp):
            result = result | self._taint(node.key) | self._taint(node.value)
        else:
            result = result | self._taint(node.elt)
        return result

    # -- calls ---------------------------------------------------------
    def _call_args(self, node: ast.Call) -> list[frozenset[str]]:
        return [self._taint(arg) for arg in node.args] + [
            self._taint(keyword.value) for keyword in node.keywords
        ]

    def _taint_call(self, node: ast.Call) -> frozenset[str]:
        site = self.sites.get(id(node))
        canonical = site.canonical if site is not None else ""
        spelled = site.name if site is not None else ""
        arg_taints = self._call_args(node)
        joined: frozenset[str] = frozenset()
        for taint in arg_taints:
            joined = joined | taint

        # sanitizers cut their kinds and add nothing
        sanitizer = fc.SANITIZERS.get(canonical) or fc.SANITIZERS.get(spelled)
        if sanitizer is not None:
            return joined - sanitizer

        result = joined
        exempt = self.func.module in fc.SOURCE_EXEMPT_MODULES

        # intrinsic sources
        source = fc.CALL_SOURCES.get(canonical) or fc.CALL_SOURCES.get(spelled)
        if source is not None and not exempt:
            result = result | source
        if (
            canonical in fc.UNSEEDED_RNG_CONSTRUCTORS
            or spelled in fc.UNSEEDED_RNG_CONSTRUCTORS
        ) and not node.args and not node.keywords and not exempt:
            result = result | {fc.KIND_RNG}
        if (canonical == "hash" or spelled == "hash") and not exempt:
            if not all(
                isinstance(arg, ast.Constant) and isinstance(arg.value, (int, float, bool))
                for arg in node.args
            ):
                result = result | {fc.KIND_ADDR}

        # set-order exposure through external/unknown consumers
        set_args = any(self._is_set(arg) for arg in node.args)
        if set_args and (site is None or not site.resolved):
            neutral = (
                canonical in fc.ORDER_NEUTRAL_CALLS
                or spelled in fc.ORDER_NEUTRAL_CALLS
            )
            method = spelled.rsplit(".", 1)[-1] if "." in spelled else ""
            if method in _SET_PRESERVING_METHODS or method in {"add", "discard", "remove"}:
                neutral = True
            if not neutral:
                result = result | {fc.KIND_ORDER}
        # .pop() on a set yields an arbitrary element
        if "." in spelled:
            receiver, _, method = spelled.rpartition(".")
            if method == "pop" and receiver in self.set_vars:
                result = result | {fc.KIND_ORDER}
            if method in _RECEIVER_MUTATORS and receiver in self.env:
                self.env[receiver] = self.env[receiver] | joined
            if method == "update" and receiver in self.blake_vars:
                self._sink_hit(node, "digest input", arg_taints, frozenset())
            if self.emit is not None:
                racy = races.mutating_method_finding(
                    node,
                    spelled,
                    self.func,
                    is_shm=self._is_shm,
                    published=self.published_vars,
                )
                if racy is not None:
                    self.emit.append(racy)

        # publications freeze their source arrays for the rest of the
        # function: record which locals just crossed into shared memory.
        published_call = (
            canonical in fc.SHM_PUBLISH_CALLS
            or spelled in fc.SHM_PUBLISH_CALLS
            or (spelled.rsplit(".", 1)[-1] in fc.SHM_PUBLISH_CALLS if "." in spelled else False)
        )
        if published_call:
            for arg in node.args:
                for name in _published_names(arg):
                    self.published_vars.setdefault(name, node.lineno)

        # resolved callees: substitute summaries
        if site is not None and site.resolved:
            result = result | self._apply_summaries(site, node)

        # sink checks happen against the fully-propagated argument taint
        if self.emit is not None and site is not None:
            self._check_sinks(site, node)

        return result

    def _callee_offset(self, callee: FunctionInfo, site: CallSite) -> int:
        if (
            callee.params
            and callee.params[0] in {"self", "cls"}
            and (site.kind == "method" or "." in site.name or callee.is_method)
        ):
            # attribute-style call: the receiver fills the first param
            return 1
        return 0

    def _map_args(
        self, callee: FunctionInfo, site: CallSite, node: ast.Call
    ) -> dict[int, frozenset[str]]:
        """Call-site argument taints keyed by callee parameter index."""
        mapping: dict[int, frozenset[str]] = {}
        offset = self._callee_offset(callee, site)
        positional = node.args[1:] if site.kind == "partial" else node.args
        for position, arg in enumerate(positional):
            mapping[position + offset] = self._taint(arg)
        names = {param: index for index, param in enumerate(callee.params)}
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in names:
                mapping[names[keyword.arg]] = self._taint(keyword.value)
        if offset == 1 and "." in site.name:
            receiver = site.name.rsplit(".", 1)[0]
            mapping[0] = self.env.get(receiver, frozenset())
        return mapping

    def _apply_summaries(self, site: CallSite, node: ast.Call) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for target in site.targets:
            callee = self.program.functions.get(target)
            summary = self.summaries.get(target, _EMPTY)
            if callee is None:
                continue
            mapping = self._map_args(callee, site, node)
            for token in summary.returns:
                if token.startswith("P") and token[1:].isdigit():
                    result = result | mapping.get(int(token[1:]), frozenset())
                else:
                    result = result | {token}
            # taint passed into a parameter that reaches a sink inside
            # the callee (or deeper): report here, where the taint is.
            for index, label, line, exempt_kinds in summary.param_sinks:
                passed = mapping.get(index, frozenset())
                kinds = {t for t in passed if t in _KINDS} - exempt_kinds
                params = {t for t in passed if t.startswith("P")}
                if kinds and self.emit is not None:
                    self._emit_sink(node, label, kinds, via=target, line=line)
                for param_token in params:
                    self.param_sinks.append(
                        (int(param_token[1:]), label, line, frozenset(exempt_kinds))
                    )
        return result

    # -- sinks ---------------------------------------------------------
    def _check_sinks(self, site: CallSite, node: ast.Call) -> None:
        canonical, spelled = site.canonical, site.name
        label = fc.SINK_CALL_NAMES.get(canonical) or fc.SINK_CALL_NAMES.get(spelled)
        if label is not None:
            self._sink_hit(node, label, self._call_args(node), frozenset())
            return
        # record-class constructors, matched by resolved class or name
        class_name = ""
        if canonical.rsplit(".", 1)[-1] in fc.SINK_RECORD_CLASSES:
            class_name = canonical.rsplit(".", 1)[-1]
        elif spelled.rsplit(".", 1)[-1] in fc.SINK_RECORD_CLASSES:
            class_name = spelled.rsplit(".", 1)[-1]
        if class_name:
            self._check_record_sink(node, class_name)
            return
        # cache-key method sinks, by resolved method target
        for target in site.targets:
            cls_qual, _, method = target.rpartition(".")
            entry = fc.METHOD_SINKS.get(method)
            if entry is not None and cls_qual.rsplit(".", 1)[-1] in entry[0]:
                self._sink_hit(node, entry[1], self._call_args(node), frozenset())
                return

    def _record_fields(self, class_name: str, node: ast.Call) -> list[tuple[str, ast.expr]]:
        module = fc.SINK_RECORD_CLASSES[class_name]
        info = self.program.classes.get(f"{module}.{class_name}")
        fields = info.fields if info is not None else ()
        labelled: list[tuple[str, ast.expr]] = []
        for position, arg in enumerate(node.args):
            name = fields[position] if position < len(fields) else f"arg{position}"
            labelled.append((name, arg))
        for keyword in node.keywords:
            if keyword.arg is not None:
                labelled.append((keyword.arg, keyword.value))
        return labelled

    def _check_record_sink(self, node: ast.Call, class_name: str) -> None:
        exempt_fields = fc.TAINT_EXEMPT_FIELDS.get(class_name, frozenset())
        for field_name, arg in self._record_fields(class_name, node):
            exempt = (
                frozenset({fc.KIND_CLOCK}) if field_name in exempt_fields else frozenset()
            )
            label = f"field {field_name!r} of {class_name}"
            self._sink_hit(node, label, [self._taint(arg)], exempt)

    def _sink_hit(
        self,
        node: ast.Call,
        label: str,
        arg_taints: list[frozenset[str]],
        exempt: frozenset[str],
    ) -> None:
        joined: frozenset[str] = frozenset()
        for taint in arg_taints:
            joined = joined | taint
        kinds = {t for t in joined if t in _KINDS} - exempt
        if kinds:
            self._emit_sink(node, label, kinds)
        for token in sorted(t for t in joined if t.startswith("P") and t[1:].isdigit()):
            self.param_sinks.append((int(token[1:]), label, node.lineno, exempt))

    def _emit_sink(
        self,
        node: ast.AST,
        label: str,
        kinds: set[str],
        via: str | None = None,
        line: int | None = None,
    ) -> None:
        if self.emit is None:
            return
        order = {fc.KIND_ORDER} & kinds
        rest = kinds - order
        suffix = f" via {via}" if via else ""
        if order:
            self.emit.append(
                Finding(
                    rule=ORDER_RULE_ID,
                    path=self.func.path,
                    line=getattr(node, "lineno", self.func.lineno),
                    col=getattr(node, "col_offset", 0) + 1,
                    message=(
                        f"set-iteration order reaches {label}{suffix} in "
                        f"{self.func.qualname}; sort (or otherwise canonicalize) "
                        "before it escapes into an ordered artifact"
                    ),
                )
            )
        if rest:
            labels = ", ".join(sorted(_KIND_LABEL[k] for k in rest))
            self.emit.append(
                Finding(
                    rule=TAINT_RULE_ID,
                    path=self.func.path,
                    line=getattr(node, "lineno", self.func.lineno),
                    col=getattr(node, "col_offset", 0) + 1,
                    message=(
                        f"{labels} taint reaches {label}{suffix} in "
                        f"{self.func.qualname}; derive the value from seeded/"
                        "injected inputs or record the acceptance in the baseline"
                    ),
                )
            )

    # -- type predicates -----------------------------------------------
    def _class_of_value(self, node: ast.expr | None) -> str | None:
        """Program class a value expression constructs or returns."""
        if not isinstance(node, ast.Call):
            return None
        site = self.sites.get(id(node))
        if site is None:
            return None
        if site.canonical in self.program.classes:
            return site.canonical
        for target in site.targets:
            callee = self.program.functions.get(target)
            if callee is None or callee.node.returns is None:
                continue
            module = self.program.modules.get(callee.module)
            if module is None:
                continue
            cls = class_of_annotation(callee.node.returns, module, self.program)
            if cls is not None:
                return cls
        return None

    def _is_set(self, node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.set_vars
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Attribute):
            # receiver-aware first: when the receiver's class is known
            # and annotates this field, that annotation is the answer.
            if isinstance(node.value, ast.Name):
                info = self.program.classes.get(
                    self.var_class.get(node.value.id, "")
                )
                if info is not None and node.attr in info.fields:
                    return node.attr in info.set_fields
            return node.attr in self.set_attrs
        if isinstance(node, ast.Call):
            site = self.sites.get(id(node))
            canonical = site.canonical if site else ""
            spelled = site.name if site else ""
            if canonical in {"set", "frozenset"} or spelled in {"set", "frozenset"}:
                return True
            if "." in spelled:
                receiver, _, method = spelled.rpartition(".")
                if method in _SET_PRESERVING_METHODS and receiver in self.set_vars:
                    return True
            if site is not None and site.resolved:
                return any(
                    self.summaries.get(t, _EMPTY).returns_set for t in site.targets
                )
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set(node.left) or self._is_set(node.right)
        if isinstance(node, ast.IfExp):
            return self._is_set(node.body) or self._is_set(node.orelse)
        if isinstance(node, ast.NamedExpr):
            return self._is_set(node.value)
        return False

    def _is_shm(self, node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.shm_vars
        if isinstance(node, (ast.Subscript, ast.Attribute)):
            return self._is_shm(node.value)
        if isinstance(node, ast.Call):
            site = self.sites.get(id(node))
            canonical = site.canonical if site else ""
            spelled = site.name if site else ""
            if canonical in fc.SHM_ATTACH_CALLS or spelled in fc.SHM_ATTACH_CALLS:
                return True
            method = spelled.rsplit(".", 1)[-1] if "." in spelled else spelled
            if method in fc.SHM_ATTACH_CALLS:
                return True
            if site is not None and site.resolved:
                return any(
                    self.summaries.get(t, _EMPTY).returns_shm for t in site.targets
                )
        return False


def _analyze_function(
    func: FunctionInfo,
    program: Program,
    summaries: dict[str, Summary],
    set_attrs: frozenset[str],
    emit: list[Finding] | None,
) -> Summary:
    analyzer = _Analyzer(func, program, summaries, set_attrs, emit)
    summary = analyzer.run()
    if emit is not None:
        races.check_publish_mutations(func, program, analyzer, emit)
    return summary


def compute_summaries(program: Program) -> dict[str, Summary]:
    """Converge every function's :class:`Summary`, callee-first."""
    set_attrs = _set_typed_attributes(program)
    summaries: dict[str, Summary] = {}
    for component in condensation_order(program):
        for _ in range(_MAX_ITER):
            changed = False
            for qualname in component:
                func = program.functions.get(qualname)
                if func is None:
                    continue
                updated = _analyze_function(func, program, summaries, set_attrs, None)
                if summaries.get(qualname) != updated:
                    summaries[qualname] = updated
                    changed = True
            if not changed:
                break
    return summaries


def analyze_taint(
    program: Program, summaries: dict[str, Summary] | None = None
) -> tuple[list[Finding], dict[str, Summary]]:
    """Findings plus converged summaries for ``program``.

    Summaries converge first (no findings emitted), then one reporting
    pass runs per function against the final summaries — so a cyclic
    SCC that takes three sweeps to stabilize still reports each flow
    exactly once.
    """
    if summaries is None:
        summaries = compute_summaries(program)
    set_attrs = _set_typed_attributes(program)
    findings: list[Finding] = []
    for qualname in sorted(program.functions):
        func = program.functions[qualname]
        _analyze_function(func, program, summaries, set_attrs, findings)
    unique = sorted(set(findings), key=Finding.sort_key)
    return unique, summaries
