"""Shared-state race rules for the zero-copy pool layer.

Two rules, both encoded as dataflow over the :class:`~repro.devtools.
flow.symbols.Program`:

* **SHM-WRITE** — a write through a shared-memory view.  Workers map
  published segments read-only by contract (``attach_arrays`` marks its
  views non-writeable, but ``setflags``, ``np.copyto`` onto a view
  slice, or mutation of the *publisher's* array after ``publish_*`` all
  bypass that guard and race every process attached to the segment).
  The taint interpreter tracks which locals hold attached views
  (including through helper functions whose summaries say
  ``returns_shm``) and which arrays have been published this function;
  the store checks here turn those facts into findings.

* **FORK-CAPTURE** — fork-unsafe state crossing into worker tasks.
  Task callables handed to a dispatcher (``parallel_map``,
  ``executor.submit``) run in forked/spawned children; a function
  reachable from one that constructs a nested :class:`PersistentPool`,
  re-routes the ambient pool, or reads a module global bound to a lock
  or executor is wiring a deadlock or a silently-dead object into the
  worker.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable

from repro.devtools.base import Finding
from repro.devtools.flow import contract as fc
from repro.devtools.flow.symbols import CallSite, FunctionInfo, Program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.flow.taint import Summary

__all__ = [
    "FORK_RULE_ID",
    "SHM_RULE_ID",
    "check_publish_mutations",
    "fork_capture_findings",
    "shm_store_finding",
]

SHM_RULE_ID = "SHM-WRITE"
FORK_RULE_ID = "FORK-CAPTURE"


def _base_name(node: ast.expr) -> str | None:
    """The root ``Name`` of a ``views["a"][0]`` / ``engine._alpha`` chain."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def shm_store_finding(
    target: ast.expr,
    anchor: ast.AST,
    func: FunctionInfo,
    *,
    is_shm: Callable[[ast.expr], bool],
    published: dict[str, int],
) -> Finding | None:
    """A SHM-WRITE finding for a subscript/attribute store, if racy.

    ``is_shm`` is the interpreter's view-tracking predicate;
    ``published`` maps array variable names to the line where they were
    published this function (mutations after that line race workers).
    """
    if not isinstance(target, (ast.Subscript, ast.Attribute)):
        return None
    if is_shm(target.value):
        return Finding(
            rule=SHM_RULE_ID,
            path=func.path,
            line=getattr(anchor, "lineno", func.lineno),
            col=getattr(anchor, "col_offset", 0) + 1,
            message=(
                f"write through an attached shared-memory view in "
                f"{func.qualname}; attached segments are read-only — every "
                "worker process maps the same pages"
            ),
        )
    base = _base_name(target)
    if base is not None and base in published:
        return Finding(
            rule=SHM_RULE_ID,
            path=func.path,
            line=getattr(anchor, "lineno", func.lineno),
            col=getattr(anchor, "col_offset", 0) + 1,
            message=(
                f"{base!r} is mutated after being published to shared memory "
                f"(published at line {published[base]}) in {func.qualname}; "
                "workers may already be mapping the stale or the new bytes"
            ),
        )
    return None


#: ndarray in-place methods: calling one on a view is a store.
_MUTATING_METHODS = fc.SHM_MUTATING_METHODS | {"setflags"}


def mutating_method_finding(
    node: ast.Call,
    spelled: str,
    func: FunctionInfo,
    *,
    is_shm: Callable[[ast.expr], bool],
    published: dict[str, int],
) -> Finding | None:
    """SHM-WRITE for ``view.fill(...)`` / ``arr.sort()``-style mutation."""
    if "." not in spelled:
        return None
    method = spelled.rsplit(".", 1)[-1]
    if method not in _MUTATING_METHODS:
        return None
    receiver = node.func.value if isinstance(node.func, ast.Attribute) else None
    if receiver is None:
        return None
    if is_shm(receiver):
        return Finding(
            rule=SHM_RULE_ID,
            path=func.path,
            line=node.lineno,
            col=node.col_offset + 1,
            message=(
                f".{method}() mutates an attached shared-memory view in "
                f"{func.qualname}; attached segments are read-only"
            ),
        )
    base = _base_name(receiver)
    if base is not None and base in published:
        return Finding(
            rule=SHM_RULE_ID,
            path=func.path,
            line=node.lineno,
            col=node.col_offset + 1,
            message=(
                f".{method}() mutates {base!r} after it was published to "
                f"shared memory (line {published[base]}) in {func.qualname}"
            ),
        )
    return None


def check_publish_mutations(
    func: FunctionInfo,
    program: Program,
    analyzer: object,
    emit: list[Finding],
) -> None:
    """Hook for future cross-function publish tracking (no-op today).

    Same-function publish-then-mutate is caught inline by the
    interpreter's store checks; a published handle escaping to another
    function that mutates the source array would need escape analysis
    on the handle object — recorded as a known soundness gap in
    docs/static-analysis.md rather than guessed at.
    """


# ----------------------------------------------------------------------
# FORK-CAPTURE
# ----------------------------------------------------------------------

def _canonical_ctor(module_bindings: dict[str, str], spelled: str) -> str:
    head, _, rest = spelled.partition(".")
    base = module_bindings.get(head, head)
    return f"{base}.{rest}" if rest else base


def _task_entries(program: Program) -> dict[str, tuple[str, int]]:
    """Worker-task functions: qualname -> (dispatch site caller, line)."""
    entries: dict[str, tuple[str, int]] = {}
    for caller in sorted(program.calls):
        func = program.functions[caller]
        module = program.modules[func.module]
        for site in program.calls[caller]:
            name = site.canonical or site.name
            index = fc.DISPATCHERS.get(name)
            if index is None:
                short = site.name.rsplit(".", 1)[-1] if site.name else ""
                index = fc.DISPATCHERS.get(short)
            if index is None or len(site.node.args) <= index:
                continue
            callable_arg = site.node.args[index]
            for target in _resolve_callable(callable_arg, func, module, program):
                entries.setdefault(target, (caller, site.line))
    return entries


def _resolve_callable(
    node: ast.expr, func: FunctionInfo, module, program: Program
) -> list[str]:
    """Program functions a task-callable argument can denote."""
    # functools.partial(f, ...) — unwrap to f
    if isinstance(node, ast.Call):
        spelled = _spell(node.func)
        canonical = _canonical_ctor(module.bindings, spelled) if spelled else ""
        if canonical in {"functools.partial", "partial"} and node.args:
            return _resolve_callable(node.args[0], func, module, program)
        return []
    spelled = _spell(node)
    if not spelled:
        return []
    head, _, rest = spelled.partition(".")
    if head in func.local_defs and not rest:
        return [func.local_defs[head]]
    canonical = _canonical_ctor(module.bindings, spelled)
    if canonical in program.functions:
        return [canonical]
    if canonical in program.classes:
        target = program.function_for_class_method(canonical, "__call__")
        return [target] if target else []
    return []


def _spell(node: ast.expr) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


def _reachable(program: Program, roots: list[str]) -> dict[str, str]:
    """Worker-reachable functions, each attributed to one task entry.

    BFS from the sorted entry list so attribution is deterministic:
    the first (lexicographically earliest) entry that reaches a
    function names it in the finding message.
    """
    seen: dict[str, str] = {}
    queue = [(root, root) for root in roots if root in program.functions]
    while queue:
        current, origin = queue.pop(0)
        if current in seen:
            continue
        seen[current] = origin
        for site in program.calls.get(current, []):
            for target in site.targets:
                if target not in seen and target in program.functions:
                    queue.append((target, origin))
    return seen


def _assigned_names(node: ast.AST) -> set[str]:
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
            names.add(child.id)
    return names


def fork_capture_findings(program: Program) -> list[Finding]:
    """Every FORK-CAPTURE finding over the program's worker-reachable set."""
    entries = _task_entries(program)
    reachable = _reachable(program, sorted(entries))
    findings: list[Finding] = []
    for qualname in sorted(reachable):
        func = program.functions[qualname]
        module = program.modules[func.module]
        origin = reachable[qualname]
        # nested pools / ambient-pool rerouting inside worker code
        for site in program.calls.get(qualname, []):
            name = site.canonical or site.name
            reason = fc.WORKER_FORBIDDEN_CALLS.get(name)
            if reason is None:
                reason = fc.WORKER_FORBIDDEN_CALLS.get(name.rsplit(".", 1)[-1])
            if reason is not None:
                findings.append(
                    Finding(
                        rule=FORK_RULE_ID,
                        path=func.path,
                        line=site.line,
                        col=site.node.col_offset + 1,
                        message=(
                            f"{func.qualname} {reason} but is reachable from "
                            f"worker task {origin}; pools must be constructed "
                            "by the parent only"
                        ),
                    )
                )
        # fork-unsafe module globals read from worker code
        local_names = set(func.params) | _assigned_names(func.node)
        flagged: set[str] = set()
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Name) or not isinstance(node.ctx, ast.Load):
                continue
            if node.id in local_names or node.id in flagged:
                continue
            ctor_entry = module.global_ctors.get(node.id)
            if ctor_entry is None:
                continue
            ctor = _canonical_ctor(module.bindings, ctor_entry[0])
            if (
                ctor in fc.FORK_UNSAFE_CONSTRUCTORS
                or ctor.rsplit(".", 1)[-1] in fc.FORK_UNSAFE_CONSTRUCTORS
            ):
                flagged.add(node.id)
                findings.append(
                    Finding(
                        rule=FORK_RULE_ID,
                        path=func.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        message=(
                            f"{func.qualname} captures fork-unsafe module "
                            f"global {node.id!r} ({ctor}) and is reachable "
                            f"from worker task {origin}; locks and pools do "
                            "not survive the fork"
                        ),
                    )
                )
    findings.sort(key=Finding.sort_key)
    return findings
