"""Whole-program dataflow analysis: the determinism contract, enforced.

The shallow rules in :mod:`repro.devtools.rules` see one statement at a
time; they catch an unseeded ``Random()`` but not a set iteration three
frames below an :class:`~repro.optimize.deployment.OptimizationResult`
field, and nothing about shared state in the zero-copy pool layer.
This subpackage closes that gap with a parse-only, interprocedural
engine:

* :mod:`repro.devtools.flow.symbols` — symbol table and call graph over
  an analyzed tree (module-level name resolution, receiver-type method
  dispatch heuristics, ``functools.partial``/closure edges), with an
  explicit **UNRESOLVED** edge class so soundness gaps stay visible;
* :mod:`repro.devtools.flow.taint` — fixpoint taint analysis from
  nondeterminism *sources* (wall-clock reads outside ``obs.clock``,
  unseeded RNG, set-iteration order, ``os.environ``/``os.urandom``,
  ``id()``/object ``hash()``, pool completion order) into *sinks*
  (result-record fields, ``jsonsafe`` exports, blake2b digest inputs,
  service cache keys), with per-function effect summaries cached so the
  fixpoint converges in one pass over the SCC condensation;
* :mod:`repro.devtools.flow.races` — the shared-state race detector
  specialized to the pool layer: writes through ``attach_arrays`` /
  ``attach_engine`` views, mutation of published payloads, fork-unsafe
  globals captured by task callables, nested pools inside workers;
* :mod:`repro.devtools.flow.contract` — every source, sink, sanitizer,
  and the UNRESOLVED-call budget, as reviewable data;
* :mod:`repro.devtools.flow.baseline` — the committed-baseline
  machinery: pre-existing accepted findings don't fail CI, new ones do;
* :mod:`repro.devtools.flow.deep` — the driver behind
  ``repro lint --deep``.

Like the rest of ``devtools``, everything here parses and never
imports the code it analyzes, uses only the stdlib, and renders JSON
through the ``jsonsafe`` leaf.
"""

from __future__ import annotations

from repro.devtools.flow.deep import DeepReport, analyze_deep
from repro.devtools.flow.symbols import Program, build_program
from repro.devtools.flow.taint import analyze_taint

__all__ = [
    "DeepReport",
    "Program",
    "analyze_deep",
    "analyze_taint",
    "build_program",
]
