"""The ``repro lint --deep`` driver: program in, :class:`DeepReport` out.

Pipeline per package root: :func:`~repro.devtools.flow.symbols.
build_program` (parse + call graph) → :func:`~repro.devtools.flow.
taint.analyze_taint` (fixpoint summaries, then one reporting pass) →
:func:`~repro.devtools.flow.races.fork_capture_findings` (worker
reachability) → the UNRESOLVED-call budget gate.  ``# repro:
noqa[RULE-ID]`` comments suppress deep findings exactly as they do
shallow ones, and whatever survives is matched against the committed
baseline (:mod:`repro.devtools.flow.baseline`): accepted findings are
reported but don't fail; new ones do.

Everything rendered here is deterministic — findings sorted by
``Finding.sort_key``, stats assembled in fixed key order, JSON through
the strict ``jsonsafe`` leaf — so two runs over the same tree produce
byte-identical reports (a property the test suite pins, because a
determinism linter that is itself nondeterministic would be a parody).
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.base import Finding, parse_suppressions
from repro.devtools.flow import baseline as baseline_mod
from repro.devtools.flow import contract as fc
from repro.devtools.flow.races import fork_capture_findings
from repro.devtools.flow.symbols import Program, build_program, condensation_order
from repro.devtools.flow.taint import ORDER_RULE_ID, TAINT_RULE_ID, analyze_taint
from repro.devtools.flow.races import FORK_RULE_ID, SHM_RULE_ID
from repro.errors import ReproError

__all__ = [
    "DEEP_RULE_IDS",
    "DeepReport",
    "UNRESOLVED_RULE_ID",
    "analyze_deep",
    "default_baseline_path",
    "render_deep_json",
    "render_deep_text",
]

UNRESOLVED_RULE_ID = "UNRESOLVED-CALL"

DEEP_RULE_IDS = (
    TAINT_RULE_ID,
    ORDER_RULE_ID,
    SHM_RULE_ID,
    FORK_RULE_ID,
    UNRESOLVED_RULE_ID,
)

#: Canonical baseline file name, committed at the repository root.
BASELINE_FILENAME = "deep-baseline.json"


@dataclass(slots=True)
class DeepReport:
    """One deep-analysis run over a set of package roots."""

    #: Findings that fail the run: not suppressed, not baselined.
    findings: list[Finding]
    #: Findings matched by the committed baseline (reported, non-fatal).
    accepted: list[Finding] = field(default_factory=list)
    #: Baseline entries the analysis no longer produces.
    stale: list[dict] = field(default_factory=list)
    #: Call-graph and fixpoint statistics, fixed key order.
    stats: dict = field(default_factory=dict)
    baseline_path: str | None = None

    @property
    def failed(self) -> bool:
        return bool(self.findings)


def _deep_roots(paths: Iterable[str | Path]) -> list[Path]:
    """Package roots to analyze: whole programs, never loose files.

    Directory arguments resolve exactly as in the shallow driver; a
    single-file argument is widened to its enclosing package root,
    because interprocedural analysis of one file out of context would
    silently miss every cross-module flow.
    """
    # Local import: lint imports the deep driver lazily, so this edge
    # must stay function-scoped to keep the module graph acyclic.
    from repro.devtools.lint import _package_roots

    roots = list(_package_roots(paths))
    for raw in paths:
        path = Path(raw)
        if path.is_dir() or path.suffix != ".py":
            continue
        current = path.resolve().parent
        if not (current / "__init__.py").exists():
            raise ReproError(
                f"{path} is not inside a package; --deep needs a package root"
            )
        while (current.parent / "__init__.py").exists():
            current = current.parent
        if current not in roots:
            roots.append(current)
    if not roots:
        raise ReproError("no package roots found under the given paths")
    # Report working-directory-relative paths so two runs (or two
    # machines) over the same tree render byte-identical reports.
    cwd = Path.cwd().resolve()
    normalized: list[Path] = []
    for root in roots:
        resolved = Path(root).resolve()
        try:
            normalized.append(resolved.relative_to(cwd))
        except ValueError:
            normalized.append(resolved)
    return normalized


def default_baseline_path(roots: Sequence[Path]) -> Path | None:
    """Auto-discover the committed baseline near the first root.

    Walks up from the first package root (src/repro → src → repo root)
    and falls back to the working directory, mirroring where a
    repository keeps its committed configuration.
    """
    candidates = []
    if roots:
        current = roots[0].resolve()
        for _ in range(3):
            candidates.append(current / BASELINE_FILENAME)
            current = current.parent
    candidates.append(Path(BASELINE_FILENAME))
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


def _parse_error_findings(program: Program) -> list[Finding]:
    return [
        Finding(
            rule="PARSE-ERROR",
            path=path,
            line=line,
            col=1,
            message=f"file does not parse: {message}",
        )
        for path, line, message in program.parse_errors
    ]


def _budget_finding(program: Program) -> Finding | None:
    """The UNRESOLVED-CALL gate: honesty about soundness gaps, bounded.

    Every unresolved edge is a flow the taint pass cannot see.  A few
    hundred are inevitable in idiomatic Python (higher-order helpers,
    duck-typed receivers); an unbounded count means the analysis is
    quietly blind.  The finding anchors at the first site past the
    budget — a deterministic location that moves only when the count
    does.
    """
    sites = program.unresolved_sites()
    budget = fc.UNRESOLVED_CALL_BUDGET
    if len(sites) <= budget:
        return None
    ordered = sorted(
        sites,
        key=lambda s: (program.functions[s.caller].path, s.line, s.node.col_offset),
    )
    over = ordered[budget]
    worst = Counter(
        program.functions[s.caller].module for s in sites
    ).most_common(3)
    hotspots = ", ".join(f"{module} ({count})" for module, count in worst)
    return Finding(
        rule=UNRESOLVED_RULE_ID,
        path=program.functions[over.caller].path,
        line=over.line,
        col=over.node.col_offset + 1,
        message=(
            f"{len(sites)} unresolved call edges exceed the budget of "
            f"{budget} (flow.contract.UNRESOLVED_CALL_BUDGET); densest: "
            f"{hotspots} — resolve receivers or raise the budget with review"
        ),
    )


def _suppressed(
    findings: list[Finding], trees: dict[str, ast.Module]
) -> list[Finding]:
    """Drop findings silenced by ``# repro: noqa[RULE-ID]`` comments."""
    cache: dict[str, dict[int, set[str]]] = {}
    kept: list[Finding] = []
    for finding in findings:
        if finding.path not in cache:
            try:
                source = Path(finding.path).read_text()
            except OSError:
                source = ""
            cache[finding.path] = parse_suppressions(
                source, tree=trees.get(finding.path)
            )
        ids = cache[finding.path].get(finding.line, set())
        if "*" in ids or finding.rule in ids:
            continue
        kept.append(finding)
    return kept


def _program_stats(programs: list[Program]) -> dict:
    counts: Counter[str] = Counter()
    modules = functions = classes = parse_errors = 0
    sccs = largest_scc = 0
    for program in programs:
        modules += len(program.modules)
        functions += len(program.functions)
        classes += len(program.classes)
        parse_errors += len(program.parse_errors)
        for sites in program.calls.values():
            for site in sites:
                counts[site.kind] += 1
        components = condensation_order(program)
        sccs += len(components)
        largest_scc = max(
            [largest_scc] + [len(component) for component in components]
        )
    resolved = counts["direct"] + counts["method"] + counts["partial"]
    return {
        "modules": modules,
        "functions": functions,
        "classes": classes,
        "call_sites": sum(counts.values()),
        "resolved": resolved,
        "direct": counts["direct"],
        "method": counts["method"],
        "partial": counts["partial"],
        "external": counts["external"],
        "unresolved": counts["unresolved"],
        "unresolved_budget": fc.UNRESOLVED_CALL_BUDGET,
        "sccs": sccs,
        "largest_scc": largest_scc,
        "parse_errors": parse_errors,
    }


def analyze_deep(
    paths: Sequence[str | Path],
    baseline: str | Path | None = None,
    write_baseline: str | Path | None = None,
) -> DeepReport:
    """Run the whole-program analysis over every package root in ``paths``.

    ``baseline`` overrides auto-discovery (pass the path, or the string
    ``"none"`` to disable matching entirely); ``write_baseline``
    regenerates the baseline file from the current run instead of
    failing on new findings.
    """
    roots = _deep_roots(paths)
    programs: list[Program] = []
    findings: list[Finding] = []
    trees: dict[str, ast.Module] = {}
    for root in roots:
        program = build_program(root)
        programs.append(program)
        for module in program.modules.values():
            trees[module.path] = module.tree
        findings.extend(_parse_error_findings(program))
        taint_findings, _ = analyze_taint(program)
        findings.extend(taint_findings)
        findings.extend(fork_capture_findings(program))
        budget = _budget_finding(program)
        if budget is not None:
            findings.append(budget)
    findings = sorted(set(_suppressed(findings, trees)), key=Finding.sort_key)

    baseline_path: Path | None
    if baseline is None:
        baseline_path = default_baseline_path(roots)
    elif str(baseline).lower() == "none":
        baseline_path = None
    else:
        baseline_path = Path(baseline)
        if not baseline_path.is_file():
            raise ReproError(f"no such baseline: {baseline_path}")

    entries = (
        baseline_mod.load_baseline(baseline_path) if baseline_path is not None else {}
    )
    if write_baseline is not None:
        baseline_mod.write_baseline(findings, write_baseline, previous=entries)
        entries = baseline_mod.load_baseline(write_baseline)
        baseline_path = Path(write_baseline)
    match = baseline_mod.match_baseline(findings, entries)
    return DeepReport(
        findings=match.new,
        accepted=match.accepted,
        stale=match.stale,
        stats=_program_stats(programs),
        baseline_path=str(baseline_path) if baseline_path is not None else None,
    )


def render_deep_text(report: DeepReport) -> str:
    """Human-readable deep report; one finding per line, stats footer."""
    lines = [finding.render() for finding in report.findings]
    if report.findings:
        lines.append(f"{len(report.findings)} new finding(s)")
    else:
        lines.append("deep: no new findings")
    if report.accepted:
        lines.append(f"{len(report.accepted)} baselined finding(s) accepted")
    for entry in report.stale:
        lines.append(
            f"stale baseline entry: {entry['rule']} in {entry['module']}: "
            f"{entry['message']}"
        )
    stats = report.stats
    lines.append(
        "call graph: {functions} function(s), {call_sites} call site(s), "
        "{resolved} resolved, {external} external, {unresolved} unresolved "
        "(budget {unresolved_budget}), {sccs} SCC(s)".format(**stats)
    )
    return "\n".join(lines)


def render_deep_json(report: DeepReport) -> str:
    """The deep report as strict JSON — byte-identical across runs."""
    # Lazy leaf import, same rationale as the shallow driver.
    from repro.export.jsonsafe import dumps as strict_dumps

    payload = {
        "mode": "deep",
        "findings": [finding.to_dict() for finding in report.findings],
        "count": len(report.findings),
        "accepted": [finding.to_dict() for finding in report.accepted],
        "accepted_count": len(report.accepted),
        "stale_baseline": report.stale,
        "baseline": report.baseline_path,
        "stats": report.stats,
        "rules": list(DEEP_RULE_IDS),
    }
    return strict_dumps(payload, indent=2)
