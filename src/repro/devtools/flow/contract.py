"""The dataflow contract: sources, sinks, sanitizers, and budgets, as data.

Everything the deep analysis treats as meaningful lives here so a
review of "what counts as nondeterminism" or "what is a result field"
is a review of this file, not of the engine.  The shape mirrors
:mod:`repro.devtools.contract` (the shallow linter's allowlists): the
engine consumes these tables and adds no judgement of its own.

Taint **kinds** are short uppercase tags carried through the dataflow::

    CLOCK  wall-clock reads outside repro.obs.clock
    RNG    OS-entropy random streams (seeded streams are clean)
    ORDER  set-iteration order escaping into an ordered collection
    ENV    process environment and OS entropy (os.environ, os.urandom)
    ADDR   object identity (id(), hash() of non-literals, object.__repr__)
    POOL   pool completion order (as_completed / wait arrival order)
"""

from __future__ import annotations

__all__ = [
    "BLAKE2B_CONSTRUCTORS",
    "CALL_SOURCES",
    "DISPATCHERS",
    "FORK_UNSAFE_CONSTRUCTORS",
    "KIND_ADDR",
    "KIND_CLOCK",
    "KIND_ENV",
    "KIND_ORDER",
    "KIND_POOL",
    "KIND_RNG",
    "METHOD_SINKS",
    "ORDER_NEUTRAL_CALLS",
    "SANITIZERS",
    "SHM_ATTACH_CALLS",
    "SHM_PUBLISH_CALLS",
    "SINK_CALL_NAMES",
    "SINK_RECORD_CLASSES",
    "SOURCE_EXEMPT_MODULES",
    "TAINT_EXEMPT_FIELDS",
    "UNRESOLVED_CALL_BUDGET",
    "WORKER_FORBIDDEN_CALLS",
]

KIND_CLOCK = "CLOCK"
KIND_RNG = "RNG"
KIND_ORDER = "ORDER"
KIND_ENV = "ENV"
KIND_ADDR = "ADDR"
KIND_POOL = "POOL"

#: Dotted call name -> taint kinds its return value carries.  Names are
#: matched against the spelling at the call site after import aliasing
#: (``from time import time`` still reads ``time.time`` here because the
#: symbol layer rewrites imported names to their defining module).
CALL_SOURCES: dict[str, frozenset[str]] = {
    # wall clocks
    "time.time": frozenset({KIND_CLOCK}),
    "time.time_ns": frozenset({KIND_CLOCK}),
    "time.monotonic": frozenset({KIND_CLOCK}),
    "time.monotonic_ns": frozenset({KIND_CLOCK}),
    "time.perf_counter": frozenset({KIND_CLOCK}),
    "time.perf_counter_ns": frozenset({KIND_CLOCK}),
    "time.process_time": frozenset({KIND_CLOCK}),
    "datetime.datetime.now": frozenset({KIND_CLOCK}),
    "datetime.datetime.utcnow": frozenset({KIND_CLOCK}),
    "datetime.datetime.today": frozenset({KIND_CLOCK}),
    "datetime.date.today": frozenset({KIND_CLOCK}),
    "datetime.now": frozenset({KIND_CLOCK}),
    "datetime.utcnow": frozenset({KIND_CLOCK}),
    # OS entropy / process environment
    "os.urandom": frozenset({KIND_ENV, KIND_RNG}),
    "os.getenv": frozenset({KIND_ENV}),
    "os.environ.get": frozenset({KIND_ENV}),
    "os.getpid": frozenset({KIND_ENV}),
    "uuid.uuid1": frozenset({KIND_RNG}),
    "uuid.uuid4": frozenset({KIND_RNG}),
    "secrets.token_bytes": frozenset({KIND_RNG}),
    "secrets.token_hex": frozenset({KIND_RNG}),
    # object identity
    "id": frozenset({KIND_ADDR}),
    # pool completion order — iterating these yields arrival order
    "concurrent.futures.as_completed": frozenset({KIND_POOL}),
    "futures.as_completed": frozenset({KIND_POOL}),
    "as_completed": frozenset({KIND_POOL}),
}

#: Unseeded RNG constructors: tainted only when called with no
#: arguments (an explicit seed makes the stream deterministic).
UNSEEDED_RNG_CONSTRUCTORS: frozenset[str] = frozenset(
    {
        "np.random.default_rng",
        "numpy.random.default_rng",
        "random.Random",
    }
)

#: Modules whose *internal* source reads are sanctioned and therefore
#: produce no taint: the clock implementations themselves (wall-clock
#: reads are their whole job; callers get determinism by injecting a
#: ManualClock), and the deadline sites already allowlisted for the
#: shallow CLOCK-INJECT rule (wall-clock *policies*, not measurements).
SOURCE_EXEMPT_MODULES: frozenset[str] = frozenset(
    {
        "repro.obs.clock",
        "repro.runtime.parallel",
        "repro.runtime.pool",
        "repro.solver.branch_and_bound",
        "repro.solver.parallel_bb",
    }
)

#: Calls that *cut* taint kinds from their result.  ``sorted`` is the
#: canonical ORDER sanitizer (a sorted list of set elements no longer
#: depends on iteration order); the aggregations are order-insensitive
#: reductions; the seed-discipline helpers return streams that are a
#: pure function of the explicit seed, cutting RNG.
SANITIZERS: dict[str, frozenset[str]] = {
    "sorted": frozenset({KIND_ORDER}),
    "min": frozenset({KIND_ORDER}),
    "max": frozenset({KIND_ORDER}),
    "sum": frozenset({KIND_ORDER}),
    "len": frozenset({KIND_ORDER, KIND_CLOCK, KIND_RNG, KIND_ENV, KIND_ADDR, KIND_POOL}),
    "any": frozenset({KIND_ORDER}),
    "all": frozenset({KIND_ORDER}),
    "frozenset": frozenset({KIND_ORDER}),
    "set": frozenset({KIND_ORDER}),
    "repro.runtime.parallel.spawn_seeds": frozenset({KIND_RNG}),
    "repro.runtime.parallel.spawn_generators": frozenset({KIND_RNG}),
}

#: Result-record classes whose constructor arguments are sinks: these
#: are the records the differential suites compare bit-for-bit (modulo
#: the exempt fields below), so nondeterminism reaching a field breaks
#: the reproducibility contract.  Values are the *defining modules* so
#: the symbol layer can resolve call sites through import aliases.
SINK_RECORD_CLASSES: dict[str, str] = {
    "OptimizationResult": "repro.optimize.deployment",
    "LoadReport": "repro.service.loadgen",
    "MapReport": "repro.runtime.resilience",
}

#: Fields of sink records that are *expected* to carry wall-clock time:
#: solve/wall timings are reported for humans and excluded from every
#: bit-identity comparison.  A CLOCK flow into these is not a finding;
#: any other kind (ORDER, RNG, ...) still is.
TAINT_EXEMPT_FIELDS: dict[str, frozenset[str]] = {
    "OptimizationResult": frozenset({"solve_seconds"}),
    "LoadReport": frozenset(
        {"wall_seconds", "jobs_per_minute", "solves_per_minute",
         "p50_seconds", "p99_seconds"}
    ),
    "MapReport": frozenset(),
}

#: Resolved callee qualnames whose arguments are sinks (any argument:
#: a tainted value anywhere in an exported payload or digest preimage
#: makes the artifact nondeterministic).
SINK_CALL_NAMES: dict[str, str] = {
    "repro.export.jsonsafe.dumps": "jsonsafe export",
    "repro.export.jsonsafe.dump": "jsonsafe export",
    "repro.export.jsonsafe.sanitize": "jsonsafe export",
    "hashlib.blake2b": "digest input",
}

#: Constructors whose instances' ``.update(x)`` method is a digest sink.
BLAKE2B_CONSTRUCTORS: frozenset[str] = frozenset({"hashlib.blake2b", "blake2b"})

#: method name -> (owning classes, human label): method-call sinks on
#: the service caches.  The *keys* passed in become lookup identity; a
#: nondeterministic key silently splits cache entries across runs.
METHOD_SINKS: dict[str, tuple[frozenset[str], str]] = {
    "checkout": (frozenset({"SessionCache"}), "session-cache key"),
    "lookup": (frozenset({"ResultCache", "SessionCache"}), "result-cache key"),
    "store": (frozenset({"ResultCache"}), "result-cache key"),
}

#: Order-insensitive contexts for set-typed values: calls in this set
#: consume a set without exposing iteration order.
ORDER_NEUTRAL_CALLS: frozenset[str] = frozenset(
    {"len", "sum", "min", "max", "any", "all", "sorted", "frozenset", "set", "bool"}
)

#: Calls whose result is a live view over a shared-memory segment.
SHM_ATTACH_CALLS: frozenset[str] = frozenset(
    {
        "attach_arrays",
        "attach_engine",
        "repro.runtime.pool.attach_arrays",
        "repro.runtime.pool.attach_engine",
    }
)

#: Calls that publish arrays into a segment: after this statement, the
#: published arrays are frozen — a later write in the same function is
#: a race against workers already mapping the segment.
SHM_PUBLISH_CALLS: frozenset[str] = frozenset(
    {
        "publish_arrays",
        "publish_engine",
        "repro.runtime.pool.publish_arrays",
        "repro.runtime.pool.publish_engine",
        "share",  # PersistentPool.share(...)
    }
)

#: ndarray methods that mutate in place — writing through an attached
#: view with any of these is as racy as a subscript assignment.
SHM_MUTATING_METHODS: frozenset[str] = frozenset(
    {"fill", "sort", "partition", "put", "itemset", "resize", "setfield"}
)

#: dispatcher dotted name -> index of the task-callable argument.  The
#: race detector resolves that argument to program functions and treats
#: them (and everything they reach) as worker-side code.
DISPATCHERS: dict[str, int] = {
    "parallel_map": 0,
    "repro.runtime.parallel.parallel_map": 0,
    "submit": 0,  # executor().submit(fn, ...)
}

#: Module-global constructors that do not survive a fork/spawn into a
#: worker: locks and pools become dead weight or deadlocks, executors
#: must never be re-entered from a child.
FORK_UNSAFE_CONSTRUCTORS: frozenset[str] = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "PersistentPool",
        "repro.runtime.pool.PersistentPool",
        "ProcessPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "ThreadPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
    }
)

#: Calls forbidden inside worker-task code: constructing a nested pool
#: (each task would fork its own process tree) or re-routing the
#: ambient pool from within a worker.
WORKER_FORBIDDEN_CALLS: dict[str, str] = {
    "PersistentPool": "constructs a nested PersistentPool",
    "repro.runtime.pool.PersistentPool": "constructs a nested PersistentPool",
    "ProcessPoolExecutor": "constructs a nested process pool",
    "use_pool": "re-routes the ambient pool",
    "repro.runtime.pool.use_pool": "re-routes the ambient pool",
}

#: Hard ceiling on UNRESOLVED call edges over ``src/repro``.  The
#: analysis is honest about its soundness gaps — every call it cannot
#: resolve to a program function, prove external, or recognize as a
#: stdlib container method is counted here and reported.  The budget
#: turns creeping dynamism into a CI failure: raising it is a reviewed
#: contract change, like widening an allowlist.  The tree sits at ~650
#: today (dominated by dynamic call-of-call sites and duck-typed
#: callable attributes); the headroom to 700 absorbs normal growth
#: without letting a new dynamic layer land unnoticed.
UNRESOLVED_CALL_BUDGET = 700

#: Attribute-method names assumed to be stdlib/ndarray plumbing when the
#: receiver's type is unknown: calling one of these does not count
#: against the UNRESOLVED budget.  Everything here is a method of str /
#: list / dict / set / bytes / ndarray / Path or similarly ubiquitous.
KNOWN_SAFE_METHODS: frozenset[str] = frozenset(
    {
        # str
        "join", "split", "rsplit", "strip", "lstrip", "rstrip", "upper",
        "lower", "replace", "startswith", "endswith", "format", "encode",
        "decode", "title", "ljust", "rjust", "zfill", "casefold", "splitlines",
        "format_map", "removeprefix", "removesuffix", "hexdigest", "hex",
        # list / tuple
        "append", "extend", "insert", "pop", "remove", "clear", "index",
        "count", "reverse", "copy",
        # dict
        "get", "items", "keys", "values", "setdefault", "update",
        # set
        "add", "discard", "union", "intersection", "difference",
        "issubset", "issuperset", "symmetric_difference",
        # numpy-ish
        "astype", "reshape", "ravel", "flatten", "tolist", "item", "nonzero",
        "argsort", "argmin", "argmax", "cumsum", "dot", "transpose", "squeeze",
        "view", "tobytes", "byteswap", "newbyteorder",
        "sum", "min", "max", "mean", "std", "all", "any", "round", "clip",
        "fill", "sort", "partition", "put", "itemset", "resize", "setfield",
        "setflags", "searchsorted", "repeat", "take", "choose", "compress",
        # io / path
        "read", "write", "readline", "readlines", "close", "flush", "seek",
        "open", "exists", "is_dir", "is_file", "mkdir", "rglob", "glob",
        "resolve", "relative_to", "with_suffix", "with_name", "read_text",
        "write_text", "read_bytes", "write_bytes", "iterdir", "unlink",
        "touch", "as_posix", "absolute", "expanduser", "samefile",
        # numpy.random.Generator draws — determinism is a property of
        # the stream's *seed*, which the RNG rules police; the draw
        # methods themselves are plumbing.
        "choice", "integers", "random", "normal", "standard_normal",
        "uniform", "shuffle", "permutation", "exponential", "poisson",
        "spawn",
        # scipy.sparse / OrderedDict / ast plumbing
        "tocsr", "tocsc", "toarray", "todense", "move_to_end",
        "visit", "generic_visit",
        # argparse builder surface
        "add_argument", "add_parser", "add_subparsers", "set_defaults",
        "parse_args", "parse_known_args", "add_mutually_exclusive_group",
        "print_help", "print_usage",
        # misc ubiquitous
        "isoformat", "total_seconds", "timestamp", "most_common",
        "popleft", "appendleft", "rotate", "heappush", "heappop",
        "groups", "group", "match", "search", "findall", "finditer", "sub",
        "fullmatch", "compile", "digest", "getvalue", "getbuffer",
        "qsize", "empty", "full", "put_nowait", "get_nowait", "task_done",
    }
)
