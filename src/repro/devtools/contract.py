"""The repository's structural contract, as data.

This module is the single place where the layering of ``repro`` and the
per-rule allowlists live.  The import analyzer
(:mod:`repro.devtools.imports`) and several AST rules read it; the
contract test (``tests/devtools/test_contract.py``) regenerates the
import graph from ``src/`` and diffs it against
:data:`ALLOWED_PACKAGE_DEPS`, so a new cross-layer import fails tests
with a readable diff before it fails CI lint with an opaque error.

Layering (each package may import the ones it points at, plus the
shared leaves ``errors`` and ``repro.export.jsonsafe``)::

    core -> metrics -> solver/optimize -> simulation/analysis -> cli
                 \\        runtime  _/            service    _/
    obs      — importable from anywhere; imports nothing back
    export   — formatting leaves; analysis types only under TYPE_CHECKING
    runtime  — substrate under solver/optimize/simulation/analysis
    service  — async job-queue front over solver/optimize/runtime
    casestudy, devtools — side packages feeding the CLI

``obs``/``runtime``/``export`` are the "leaves with rules": anyone may
depend on them, and what *they* may depend on is deliberately tiny.
"""

from __future__ import annotations

__all__ = [
    "ALLOWED_PACKAGE_DEPS",
    "CLOCK_ALLOWLIST",
    "EXPORT_TYPE_ONLY_PREFIXES",
    "HOT_PATHS",
    "JSON_ALLOWLIST",
    "LEAF_MODULES",
    "PARALLEL_MAP_NAMES",
    "RNG_ALLOWLIST",
    "SHM_ALLOWLIST",
    "package_of",
]

#: Modules importable from *any* package without creating a layering
#: edge: dependency-free utility leaves.  ``repro.export.jsonsafe``
#: imports only the stdlib, so depending on it does not drag in the
#: rest of the export package's (heavier) dependency cone — but note
#: that *eagerly* importing it still executes ``repro/export/__init__``;
#: modules below ``export`` in the layering (``core``, ``obs``) must
#: import it lazily, which the cycle detector enforces.
LEAF_MODULES: frozenset[str] = frozenset({"repro.errors", "repro.export.jsonsafe"})

#: package -> packages it may import at runtime (eager or lazy),
#: after edges to LEAF_MODULES are exempted.  Because ``errors`` and
#: ``export.jsonsafe`` are leaves, edges to them never appear here —
#: listing them would be dead weight the contract test flags as stale.
#: ``repro`` is the root package's own ``__init__``; ``__main__`` and
#: ``cli`` are the two root-level entry modules.  This is an *exact*
#: record of the current graph, not an upper bound — the contract test
#: pins equality so both added and dropped edges show up in review.
ALLOWED_PACKAGE_DEPS: dict[str, frozenset[str]] = {
    "repro": frozenset({"core", "metrics"}),
    "__main__": frozenset({"cli"}),
    "cli": frozenset(
        {
            "analysis",
            "casestudy",
            "core",
            "devtools",
            "export",
            "metrics",
            "obs",
            "optimize",
            "runtime",
            "service",
            "simulation",
        }
    ),
    "errors": frozenset(),
    "core": frozenset(),
    "metrics": frozenset({"core"}),
    "obs": frozenset(),
    "runtime": frozenset({"core", "metrics", "obs"}),
    "solver": frozenset({"obs", "runtime"}),
    "optimize": frozenset({"core", "metrics", "obs", "runtime", "solver"}),
    "simulation": frozenset({"core", "obs", "optimize", "runtime"}),
    "analysis": frozenset({"core", "metrics", "optimize", "runtime", "simulation"}),
    "export": frozenset({"core", "optimize"}),
    "service": frozenset({"core", "metrics", "obs", "optimize", "runtime", "solver"}),
    "casestudy": frozenset({"core"}),
    "devtools": frozenset(),
}

#: Prefixes that modules under ``repro.export`` may reference only
#: under ``if TYPE_CHECKING:`` — the packages that (transitively)
#: import ``repro.export`` back, so a runtime import would close the
#: cycle that used to crash ``import repro.cli`` (fixed in PR 3, pinned
#: by the TYPECHECK-IMPORT rule).
EXPORT_TYPE_ONLY_PREFIXES: tuple[str, ...] = (
    "repro.analysis",
    "repro.simulation",
    "repro.cli",
)

#: module -> calls it may make that read an ambient clock.  ``"*"``
#: allows everything (the clock implementations themselves); otherwise
#: the set lists dotted call names.  The deadline allowlist exists
#: because per-task timeouts and node-limit deadlines are *wall-clock
#: policies*, not measurements — injecting a fake clock there would
#: make a hung worker unkillable in exchange for nothing.
CLOCK_ALLOWLIST: dict[str, frozenset[str]] = {
    "repro.obs.clock": frozenset({"*"}),
    "repro.runtime.parallel": frozenset({"time.monotonic"}),
    "repro.runtime.pool": frozenset({"time.monotonic"}),
    "repro.solver.branch_and_bound": frozenset({"time.monotonic"}),
    "repro.solver.parallel_bb": frozenset({"time.monotonic"}),
}

#: Modules allowed to call ``json.dumps``/``json.dump`` directly: the
#: strict-JSON choke point itself, and nothing else.
JSON_ALLOWLIST: frozenset[str] = frozenset({"repro.export.jsonsafe"})

#: Modules exempt from RNG-SEED (none today; the rule only flags
#: *unseeded* constructions, and every current call site seeds).
RNG_ALLOWLIST: frozenset[str] = frozenset()

#: Call names PICKLE-SAFE treats as process-pool entry points: their
#: callable argument crosses a pickle boundary.
PARALLEL_MAP_NAMES: frozenset[str] = frozenset({"parallel_map"})

#: Modules allowed to construct ``multiprocessing.shared_memory``
#: segments directly (SHM-SAFE).  Keeping construction inside
#: :mod:`repro.runtime.pool` is what pins every segment's lifetime to a
#: :class:`~repro.runtime.pool.PersistentPool` — a handle that crosses a
#: ``parallel_map`` boundary unpinned can outlive its segment (stale
#: attach) or survive the run (a leak in ``/dev/shm``).
SHM_ALLOWLIST: frozenset[str] = frozenset({"repro.runtime.pool"})

#: The instrumented-hot-path registry: module -> qualnames that must
#: open a tracer span (OBS-SPAN).  These are the paths whose timings
#: back the performance claims in docs/performance.md; deleting the
#: span silently unplots them, so the linter keeps the set closed.  A
#: registered qualname that no longer exists is itself a finding —
#: renames must update this table.
HOT_PATHS: dict[str, tuple[str, ...]] = {
    "repro.runtime.engine": ("EvaluationEngine.__init__", "EvaluationEngine.components"),
    "repro.runtime.cache": ("cached_breakdown",),
    "repro.runtime.parallel": ("parallel_map",),
    "repro.solver.model": ("MilpModel.compile",),
    "repro.solver.scipy_backend": ("solve_scipy_milp",),
    "repro.solver.branch_and_bound": ("solve_branch_and_bound",),
    "repro.solver.parallel_bb": ("solve_parallel_branch_and_bound",),
    "repro.solver.presolve": ("presolve",),
    "repro.solver.fallback": ("solve_with_fallback",),
    "repro.solver.session": ("SolveSession.solve",),
    "repro.optimize.greedy": ("solve_greedy",),
    "repro.optimize.greedy_cover": ("solve_greedy_cover",),
    "repro.optimize.annealing": ("solve_annealing",),
    "repro.optimize.random_search": ("solve_random",),
    "repro.optimize.pareto": ("budget_sweep", "heuristic_sweep", "pareto_frontier"),
    "repro.optimize.frontier": ("exact_frontier",),
    "repro.optimize.problem": ("MaxUtilityProblem.solve", "MinCostProblem.solve"),
    "repro.optimize.robust": ("RobustMaxUtilityProblem.solve",),
    "repro.optimize.rebalance": ("RebalanceProblem.solve",),
    "repro.simulation.campaign": ("run_campaign",),
    "repro.service.service": ("SolveService._run_job",),
}


def package_of(module: str, root: str = "repro") -> str:
    """The layering-contract package a module belongs to.

    ``repro.core.model`` -> ``core``; root-level modules are their own
    packages (``repro.cli`` -> ``cli``, ``repro.errors`` -> ``errors``,
    ``repro.__main__`` -> ``__main__``); the root ``__init__`` is
    ``repro`` itself.
    """
    if module == root:
        return root
    prefix = root + "."
    if module.startswith(prefix):
        return module[len(prefix) :].split(".", 1)[0]
    return module.split(".", 1)[0]
