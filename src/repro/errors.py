"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class at API
boundaries while still being able to discriminate failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """A system model is structurally invalid or refers to unknown entities."""


class DuplicateIdError(ModelError):
    """An entity was registered twice under the same identifier."""

    def __init__(self, kind: str, identifier: str):
        super().__init__(f"duplicate {kind} id: {identifier!r}")
        self.kind = kind
        self.identifier = identifier


class UnknownIdError(ModelError):
    """A reference points at an identifier that does not exist in the model."""

    def __init__(self, kind: str, identifier: str, context: str = ""):
        suffix = f" ({context})" if context else ""
        super().__init__(f"unknown {kind} id: {identifier!r}{suffix}")
        self.kind = kind
        self.identifier = identifier
        self.context = context


class ValidationError(ModelError):
    """A model failed semantic validation; ``problems`` lists every issue."""

    def __init__(self, problems: list[str]):
        joined = "; ".join(problems)
        super().__init__(f"model validation failed with {len(problems)} problem(s): {joined}")
        self.problems = list(problems)


class SerializationError(ReproError):
    """A model document could not be parsed or re-serialized."""


class MetricError(ReproError):
    """A metric was evaluated with inconsistent or out-of-range inputs."""


class SolverError(ReproError):
    """The MILP substrate failed: malformed model or backend failure."""


class InfeasibleError(SolverError):
    """The optimization problem admits no feasible solution."""


class UnboundedError(SolverError):
    """The optimization problem is unbounded in the objective direction."""


class OptimizationError(ReproError):
    """A deployment-optimization request was malformed or failed."""


class SimulationError(ReproError):
    """A monitoring simulation was configured inconsistently."""
