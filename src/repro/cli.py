"""Command-line interface: the methodology without writing Python.

``python -m repro <command>`` drives the full pipeline on model JSON
files (or the built-in case study):

* ``info`` — model statistics and audit summary;
* ``audit`` — every semantic finding;
* ``optimize`` — max-utility deployment under a budget;
* ``mincost`` — cheapest deployment meeting requirements;
* ``sweep`` — utility vs. budget curve (optionally CSV);
* ``simulate`` — attack campaign against a deployment;
* ``stats`` — render the metrics carried by a ``--trace`` file;
* ``export-casestudy`` — write the built-in case study to JSON.

Every command accepts either ``--model path/to/model.json`` or
``--casestudy`` (the enterprise Web service).  Deployments are
exchanged as JSON lists of monitor ids.

The work-running commands also accept ``--trace out.json``: the whole
command executes under :func:`repro.obs.capture` and writes one
combined file — a Chrome trace (open it at https://ui.perfetto.dev)
that also carries the run's metrics registry, which ``repro stats
out.json`` renders as tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.analysis.evaluation import evaluate_deployment
from repro.analysis.tables import render_table
from repro.casestudy import enterprise_web_service
from repro.core.model import SystemModel
from repro.core.serialization import load_model, save_model
from repro.core.validation import audit_model
from repro.errors import ReproError
from repro.export.csv_export import sweep_to_csv
from repro.export.dot import deployment_to_dot
from repro.export.jsonsafe import dumps as strict_dumps
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.obs import load_trace, write_trace
from repro.runtime.cache import cached_utility
from repro.optimize.deployment import Deployment
from repro.optimize.pareto import budget_sweep, pareto_frontier
from repro.optimize.problem import MaxUtilityProblem, MinCostProblem
from repro.runtime.resilience import FAILURE_MODES, MapReport, RetryPolicy
from repro.simulation.campaign import run_campaign

__all__ = ["main", "build_parser"]

#: Backends exposed on the command line.  ``enumeration`` is deliberately
#: absent: it is a test oracle, not a practical solver.
_CLI_BACKENDS = ["scipy", "branch-and-bound", "parallel-bb", "fallback"]


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--model", type=Path, help="model JSON file")
    source.add_argument(
        "--casestudy",
        action="store_true",
        help="use the built-in enterprise Web service case study",
    )


def _add_weight_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--weights",
        default=None,
        metavar="COV,RED,RICH",
        help="utility weights, three comma-separated numbers summing to 1 "
        "(default 0.6,0.25,0.15)",
    )


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="OUT.json",
        help="capture the run's spans and metrics into a Chrome-trace JSON "
        "file (view at ui.perfetto.dev; inspect with `repro stats`)",
    )


def _add_solver_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every command that runs exact MILP solves."""
    parser.add_argument(
        "--presolve",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="run the exact reduction pipeline before solving (and, on "
        "serial sweeps/frontiers, warm-start consecutive solves from "
        "each other); answers stay provably optimal — when ties exist "
        "among equally-optimal deployments, a reduced model may break "
        "them differently",
    )
    parser.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        metavar="N",
        help="branch-and-bound node cap; when hit, the best incumbent is "
        "reported with optimal=no instead of erroring",
    )
    parser.add_argument(
        "--gap",
        type=float,
        default=None,
        metavar="REL",
        help="relative optimality gap at which an incumbent is accepted "
        "as optimal (default: prove optimality exactly)",
    )
    parser.add_argument(
        "--bb-workers",
        type=_positive_worker_count,
        default=None,
        metavar="N",
        help="fan branch-and-bound subtree search out across N workers "
        "(parallel-bb); objectives, deployments and node counts are "
        "bit-identical at any worker count",
    )


def _positive_worker_count(text: str) -> int:
    """argparse type for worker counts: a strictly positive integer.

    Fails fast at parse time — a zero or negative count would otherwise
    surface as an opaque ProcessPoolExecutor error mid-run.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"worker count must be an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 1 (use 1 for serial), got {value}"
        )
    return value


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=_positive_worker_count,
        default=None,
        metavar="N",
        help="process-pool workers for independent sub-tasks, >= 1 "
        "(default: the REPRO_WORKERS environment variable, else serial); "
        "results are identical at any worker count",
    )
    parser.add_argument(
        "--pool",
        choices=("persistent", "spawn"),
        default="spawn",
        help="worker-pool strategy: 'persistent' keeps one warm process "
        "pool (zero-copy shared-memory transport) alive for the whole "
        "command; 'spawn' (default) starts a fresh pool per parallel map",
    )


def _pool_context(args: argparse.Namespace):
    """Context manager installing a persistent pool when requested.

    Returns a no-op context unless ``--pool persistent`` was given; the
    persistent pool is both closed *and* uninstalled on exit, so shared
    segments never outlive the command.
    """
    import contextlib

    if getattr(args, "pool", "spawn") != "persistent":
        return contextlib.nullcontext()
    from repro.runtime.pool import PersistentPool, use_pool

    stack = contextlib.ExitStack()
    pool = stack.enter_context(PersistentPool(getattr(args, "workers", None)))
    stack.enter_context(use_pool(pool))
    return stack


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock budget for parallel sub-tasks "
        "(enforced on the process-pool path only)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=0,
        metavar="N",
        help="extra attempts per failed sub-task, with deterministic "
        "exponential backoff (default 0)",
    )
    parser.add_argument(
        "--on-failure",
        default="raise",
        choices=list(FAILURE_MODES),
        help="what to do when a sub-task exhausts its attempts: re-raise "
        "(default), degrade to a serial attempt, or skip the task",
    )


def _parse_policy(args: argparse.Namespace) -> RetryPolicy | None:
    """The RetryPolicy implied by the resilience flags (None if defaults)."""
    if args.timeout is None and args.max_retries == 0 and args.on_failure == "raise":
        return None
    return RetryPolicy(
        timeout=args.timeout,
        max_retries=args.max_retries,
        on_failure=args.on_failure,
    )


def _print_report(report: MapReport) -> None:
    """Surface a non-clean MapReport on stderr (never silently)."""
    if report.clean:
        return
    parts = []
    if report.retries:
        parts.append(f"{report.retries} retried attempt(s)")
    if report.timeouts:
        parts.append(f"{report.timeouts} timeout(s)")
    if report.skipped:
        parts.append(f"{len(report.skipped)} task(s) skipped")
    if report.degraded:
        parts.append(f"degraded to serial ({report.degraded_reason})")
    print("warning: " + "; ".join(parts), file=sys.stderr)
    for failure in report.failures:
        print(
            f"warning: task {failure.index} [{failure.stage}] failed after "
            f"{failure.attempts} attempt(s): {failure.error_type}: {failure.message}",
            file=sys.stderr,
        )


def _load_model(args: argparse.Namespace) -> SystemModel:
    if args.casestudy:
        return enterprise_web_service()
    return load_model(args.model)


def _parse_weights(args: argparse.Namespace) -> UtilityWeights:
    if getattr(args, "weights", None) is None:
        return UtilityWeights()
    parts = [float(x) for x in args.weights.split(",")]
    if len(parts) != 3:
        raise ReproError(f"--weights needs exactly three numbers, got {args.weights!r}")
    return UtilityWeights(coverage=parts[0], redundancy=parts[1], richness=parts[2])


def _parse_budget(model: SystemModel, args: argparse.Namespace) -> Budget:
    if args.budget_fraction is not None:
        return Budget.fraction_of_total(model, args.budget_fraction)
    if args.budget:
        limits = {}
        for item in args.budget.split(","):
            dimension, _, value = item.partition("=")
            if not value:
                raise ReproError(f"budget entries look like dim=limit, got {item!r}")
            limits[dimension.strip()] = float(value)
        return Budget(limits)
    raise ReproError("specify --budget-fraction or --budget")


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--budget-fraction",
        type=float,
        default=None,
        help="budget as a fraction of the all-monitors cost",
    )
    parser.add_argument(
        "--budget",
        default=None,
        metavar="DIM=LIMIT,...",
        help='explicit per-dimension limits, e.g. "cpu=40,storage=20"',
    )


def _write_deployment(deployment: Deployment, path: Path) -> None:
    path.write_text(strict_dumps(sorted(deployment.monitor_ids), indent=2) + "\n")


def _read_deployment(model: SystemModel, path: Path) -> Deployment:
    monitor_ids = json.loads(path.read_text())
    if not isinstance(monitor_ids, list):
        raise ReproError(f"{path} must contain a JSON list of monitor ids")
    return Deployment.of(model, monitor_ids)


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------


def _cmd_info(args: argparse.Namespace) -> int:
    model = _load_model(args)
    print(model)
    print(render_table(["entity", "count"], sorted(model.stats().items()), title="Entities"))
    print()
    total = model.total_cost()
    print(render_table(["dimension", "total cost"], sorted(total.as_dict().items()),
                       title="Cost of deploying everything"))
    findings = audit_model(model)
    warnings = sum(1 for f in findings if f.severity.value == "warning")
    print(f"\nAudit: {len(findings)} findings ({warnings} warnings); run `audit` for details")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    model = _load_model(args)
    findings = audit_model(model)
    if not findings:
        print("no findings — model is semantically clean")
        return 0
    for finding in findings:
        print(finding)
    warnings = sum(1 for f in findings if f.severity.value == "warning")
    return 1 if warnings and args.strict else 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    model = _load_model(args)
    weights = _parse_weights(args)
    budget = _parse_budget(model, args)
    result = MaxUtilityProblem(model, budget, weights).solve(
        args.backend,
        time_limit=args.timeout,
        presolve=args.presolve,
        max_nodes=args.max_nodes,
        gap=args.gap,
        bb_workers=args.bb_workers,
    )
    print(result.summary())
    report = evaluate_deployment(model, result.deployment, weights)
    print()
    print(report.to_text())
    if args.out:
        _write_deployment(result.deployment, args.out)
        print(f"\ndeployment written to {args.out}")
    if args.dot:
        args.dot.write_text(deployment_to_dot(result.deployment))
        print(f"DOT graph written to {args.dot}")
    if args.html:
        from repro.export.html import report_to_html

        args.html.write_text(report_to_html(report))
        print(f"HTML report written to {args.html}")
    return 0


def _cmd_mincost(args: argparse.Namespace) -> int:
    model = _load_model(args)
    weights = _parse_weights(args)
    problem = MinCostProblem(
        model,
        min_utility=args.min_utility,
        fully_cover=args.fully_cover.split(",") if args.fully_cover else (),
        weights=weights,
    )
    result = problem.solve(
        args.backend,
        time_limit=args.timeout,
        presolve=args.presolve,
        max_nodes=args.max_nodes,
        gap=args.gap,
        bb_workers=args.bb_workers,
    )
    print(result.summary())
    print(f"scalar cost: {result.objective:.2f}")
    print(f"spend: {result.deployment.cost().as_dict()}")
    for monitor_id in sorted(result.monitor_ids):
        print(f"  {monitor_id}")
    if args.out:
        _write_deployment(result.deployment, args.out)
        print(f"deployment written to {args.out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    model = _load_model(args)
    weights = _parse_weights(args)
    fractions = [float(x) for x in args.fractions.split(",")]
    report = MapReport()
    with _pool_context(args):
        points = budget_sweep(
            model,
            fractions,
            weights,
            backend=args.backend,
            workers=args.workers,
            policy=_parse_policy(args),
            report=report,
            presolve=args.presolve,
            max_nodes=args.max_nodes,
            gap=args.gap,
            bb_workers=args.bb_workers,
        )
    _print_report(report)
    rows = [
        [p.fraction, len(p.result.deployment), p.result.utility, p.scalar_cost]
        for p in points
    ]
    print(render_table(
        ["budget fraction", "#monitors", "utility", "scalar cost"],
        rows,
        title="Utility vs. budget",
    ))
    # Non-dominated summary; evaluations route through the shared
    # per-model cache, so the knee re-lookup below is a guaranteed hit.
    frontier = pareto_frontier([p.result.deployment for p in points], weights)
    if frontier:
        knee_cost, knee_utility, knee = frontier[-1]
        knee_utility = cached_utility(model, knee.monitor_ids, weights)
        print(
            f"\n{len(frontier)}/{len(points)} points are non-dominated; "
            f"best utility {knee_utility:.4f} at scalar cost {knee_cost:.2f}"
        )
    if args.csv:
        args.csv.write_text(sweep_to_csv(points))
        print(f"\nCSV written to {args.csv}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    model = _load_model(args)
    deployment = _read_deployment(model, args.deployment)
    campaign = run_campaign(
        model,
        deployment,
        repetitions=args.repetitions,
        seed=args.seed,
        monitor_failure_rate=args.failure_rate,
    )
    print(render_table(
        ["campaign metric", "value"],
        [
            ["runs", len(campaign.runs)],
            ["detection rate", campaign.detection_rate],
            ["mean detection latency (s)", campaign.mean_detection_latency],
            ["step completeness", campaign.mean_step_completeness],
            ["field completeness", campaign.mean_field_completeness],
            ["observations", campaign.observations],
        ],
        title=f"Campaign ({args.repetitions} runs/attack, seed {args.seed}, "
        f"failure rate {args.failure_rate})",
    ))
    missed = sorted(
        attack_id for attack_id, rate in campaign.per_attack_detection.items() if rate < 0.5
    )
    if missed:
        print("\nattacks detected in <50% of runs:")
        for attack_id in missed:
            print(f"  {attack_id} ({campaign.per_attack_detection[attack_id]:.0%})")
    return 0


def _cmd_contrib(args: argparse.Namespace) -> int:
    from repro.analysis.contribution import contribution_report

    model = _load_model(args)
    deployment = _read_deployment(model, args.deployment)
    weights = _parse_weights(args)
    report = MapReport()
    with _pool_context(args):
        print(
            contribution_report(
                model,
                deployment,
                weights,
                shapley_samples=args.samples,
                seed=args.seed,
                workers=args.workers,
                policy=_parse_policy(args),
                report=report,
            )
        )
    _print_report(report)
    return 0


def _cmd_frontier(args: argparse.Namespace) -> int:
    from repro.optimize.frontier import exact_frontier

    model = _load_model(args)
    weights = _parse_weights(args)
    points = exact_frontier(
        model,
        weights,
        backend=args.backend,
        max_points=args.max_points,
        presolve=args.presolve,
        max_nodes=args.max_nodes,
        gap=args.gap,
        bb_workers=args.bb_workers,
    )
    print(render_table(
        ["scalar cost", "utility", "#monitors"],
        [[p.scalar_cost, p.utility, len(p.deployment)] for p in points],
        title=f"Exact cost-utility Pareto frontier ({len(points)} points)",
    ))
    if args.csv:
        import csv as _csv
        import io as _io

        buffer = _io.StringIO()
        writer = _csv.writer(buffer, lineterminator="\n")
        writer.writerow(["scalar_cost", "utility", "monitors"])
        for p in points:
            writer.writerow([p.scalar_cost, p.utility, len(p.deployment)])
        args.csv.write_text(buffer.getvalue())
        print(f"\nCSV written to {args.csv}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.comparison import compare_deployments

    model = _load_model(args)
    a = _read_deployment(model, args.a)
    b = _read_deployment(model, args.b)
    print(compare_deployments(a, b, _parse_weights(args)).to_text())
    return 0


def _cmd_gaps(args: argparse.Namespace) -> int:
    from repro.analysis.gaps import gap_report

    model = _load_model(args)
    deployment = _read_deployment(model, args.deployment)
    print(gap_report(model, deployment, threshold=args.threshold))
    return 0


def _histogram_rows(state: dict) -> list[list[object]]:
    """Human-readable bucket rows of one histogram snapshot."""
    rows: list[list[object]] = []
    previous = None
    for bound, count in zip(state["bounds"], state["bucket_counts"]):
        label = f"<= {bound:g}" if previous is None else f"({previous:g}, {bound:g}]"
        rows.append([label, count])
        previous = bound
    rows.append([f"> {state['bounds'][-1]:g}", state["overflow"]])
    return rows


def _cmd_stats(args: argparse.Namespace) -> int:
    payload = load_trace(args.trace_file)
    # A combined trace file carries the registry under "metrics"; a bare
    # registry snapshot (benchmark artifact) is accepted as-is.
    metrics = payload.get("metrics", payload)
    counters = dict(metrics.get("counters", {}))
    gauges = dict(metrics.get("gauges", {}))
    histograms = dict(metrics.get("histograms", {}))

    events = payload.get("traceEvents")
    if events is not None:
        print(f"{len(events)} trace events in {args.trace_file}\n")

    if counters:
        print(render_table(
            ["counter", "total"],
            [[name, f"{value:g}"] for name, value in sorted(counters.items())],
            title="Counters",
        ))
    else:
        print("no counters recorded")

    hits = counters.get("cache.hits", 0.0)
    misses = counters.get("cache.misses", 0.0)
    lookups = hits + misses
    if lookups:
        print(
            f"\ncache hit rate: {hits / lookups:.1%} "
            f"({hits:g} hits / {lookups:g} lookups, "
            f"{counters.get('cache.evictions', 0.0):g} evictions)"
        )

    runs = counters.get("presolve.runs", 0.0)
    if runs:
        cols_before = counters.get("presolve.columns_before", 0.0)
        cols_after = counters.get("presolve.columns_after", 0.0)
        rows_before = counters.get("presolve.rows_before", 0.0)
        rows_after = counters.get("presolve.rows_after", 0.0)
        col_ratio = 1.0 - cols_after / cols_before if cols_before else 0.0
        row_ratio = 1.0 - rows_after / rows_before if rows_before else 0.0
        print(
            f"\npresolve: {runs:g} run(s); "
            f"columns {cols_before:g} -> {cols_after:g} ({col_ratio:.1%} removed), "
            f"rows {rows_before:g} -> {rows_after:g} ({row_ratio:.1%} removed)"
        )
        print(
            f"  {counters.get('presolve.forced_fixings', 0.0):g} forced fixing(s), "
            f"{counters.get('presolve.dominated_columns', 0.0):g} dominated column(s), "
            f"{counters.get('presolve.duplicate_rows', 0.0):g} duplicate row(s), "
            f"{counters.get('presolve.redundant_rows', 0.0):g} redundant row(s)"
        )
        seeds = counters.get("solver.session.incumbent_seeds", 0.0)
        accepted = counters.get("solver.warm_start.accepted", 0.0)
        bounds = counters.get("solver.session.bound_reuses", 0.0)
        if seeds or bounds:
            print(
                f"  warm starts: {seeds:g} seeded, {accepted:g} accepted; "
                f"{bounds:g} dual-bound reuse(s)"
            )

    sparse_bytes = gauges.get("solver.matrix.nbytes", 0.0)
    dense_bytes = gauges.get("solver.matrix.dense_nbytes", 0.0)
    if sparse_bytes and dense_bytes:
        saving = 1.0 - sparse_bytes / dense_bytes if dense_bytes else 0.0
        print(
            f"\nconstraint matrix: {sparse_bytes:,.0f} bytes sparse vs "
            f"{dense_bytes:,.0f} dense equivalent ({saving:.1%} saved)"
        )

    if gauges:
        print()
        print(render_table(
            ["gauge", "value"],
            [[name, f"{value:g}"] for name, value in sorted(gauges.items())],
            title="Gauges",
        ))

    for name, state in sorted(histograms.items()):
        if not state["count"]:
            continue
        mean = state["sum"] / state["count"]
        print()
        print(render_table(
            ["bucket", "count"],
            _histogram_rows(state),
            title=(
                f"{name}: n={state['count']}, mean={mean:g}, "
                f"min={state['min']:g}, max={state['max']:g}"
            ),
        ))
    return 0


def _cmd_export_casestudy(args: argparse.Namespace) -> int:
    save_model(enterprise_web_service(), args.path)
    print(f"case study written to {args.path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Lazy: the lint driver is only needed by this subcommand, and the
    # linter must stay usable even when the analyzed code would not
    # import — parsing is its only contact with the target.
    if (args.baseline or args.write_baseline) and not args.deep:
        raise ReproError("--baseline/--write-baseline require --deep")
    if args.deep:
        from repro.devtools.lint import run_deep

        return run_deep(
            args.paths,
            format=args.format,
            output=args.output,
            baseline=args.baseline,
            write_baseline=args.write_baseline,
        )
    from repro.devtools.lint import run as run_lint

    return run_lint(args.paths, args.rule, args.format, args.output)


def _service_config(args: argparse.Namespace) -> "object":
    # Lazy: the asyncio service stack is only needed by serve/loadgen.
    from repro.service import ServiceConfig

    return ServiceConfig(
        workers=args.workers,
        queue_limit=args.queue_limit,
        max_retries=args.max_retries,
        presolve=args.presolve,
        cache_max_bytes=args.cache_bytes,
        cache_idle_ttl=args.cache_ttl,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import SolveService
    from repro.service.protocol import serve_stdio, serve_unix_socket

    config = _service_config(args)

    async def _run() -> None:
        async with SolveService(config) as service:
            if args.socket is not None:
                server = await serve_unix_socket(service, str(args.socket))
                print(f"serving on {args.socket}", file=sys.stderr)
                async with server:
                    await server.serve_forever()
            else:
                await serve_stdio(service, sys.stdin, sys.stdout)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service import generate_load

    model = _load_model(args)
    report = generate_load(
        model,
        jobs=args.jobs,
        tenants=args.tenants,
        seed=args.seed,
        config=_service_config(args),
        warmup=args.warmup,
    )
    rows = [
        ("jobs", f"{report.jobs}"),
        ("completed / failed", f"{report.completed} / {report.failed}"),
        ("rejections (typed)", f"{report.rejections}"),
        ("cache / dedup answered", f"{report.cached} / {report.deduped}"),
        ("executed jobs", f"{report.executed_jobs}"),
        ("solve units delivered", f"{report.solve_units}"),
        ("wall seconds", f"{report.wall_seconds:.2f}"),
        ("jobs per minute", f"{report.jobs_per_minute:.0f}"),
        ("solves per minute", f"{report.solves_per_minute:.0f}"),
        ("latency p50 / p99 (s)", f"{report.p50_seconds:.4f} / {report.p99_seconds:.4f}"),
        ("warm hit rate", f"{report.hit_rate:.1%}"),
    ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"{label:<{width}}  {value}")
    if args.json is not None:
        args.json.write_text(strict_dumps(report.to_dict(), indent=2) + "\n")
        print(f"report written to {args.json}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantitative security monitor deployment (DSN 2016 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="model statistics and audit summary")
    _add_model_arguments(info)
    info.set_defaults(handler=_cmd_info)

    audit = commands.add_parser("audit", help="semantic model audit")
    _add_model_arguments(audit)
    audit.add_argument("--strict", action="store_true",
                       help="exit nonzero when warnings are present")
    audit.set_defaults(handler=_cmd_audit)

    optimize = commands.add_parser("optimize", help="max-utility deployment under budget")
    _add_model_arguments(optimize)
    _add_weight_arguments(optimize)
    _add_budget_arguments(optimize)
    optimize.add_argument("--backend", default="scipy",
                          choices=_CLI_BACKENDS)
    optimize.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                          help="solver wall-clock limit in seconds")
    _add_solver_arguments(optimize)
    optimize.add_argument("--out", type=Path, help="write deployment JSON here")
    optimize.add_argument("--dot", type=Path, help="write Graphviz DOT here")
    optimize.add_argument("--html", type=Path, help="write a self-contained HTML report here")
    _add_trace_argument(optimize)
    optimize.set_defaults(handler=_cmd_optimize)

    mincost = commands.add_parser("mincost", help="cheapest deployment meeting requirements")
    _add_model_arguments(mincost)
    _add_weight_arguments(mincost)
    mincost.add_argument("--min-utility", type=float, default=None)
    mincost.add_argument("--fully-cover", default=None,
                         metavar="ATTACK,...", help="attacks whose required steps must be covered")
    mincost.add_argument("--backend", default="scipy",
                         choices=_CLI_BACKENDS)
    mincost.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                         help="solver wall-clock limit in seconds")
    _add_solver_arguments(mincost)
    mincost.add_argument("--out", type=Path, help="write deployment JSON here")
    _add_trace_argument(mincost)
    mincost.set_defaults(handler=_cmd_mincost)

    sweep = commands.add_parser("sweep", help="utility vs. budget curve")
    _add_model_arguments(sweep)
    _add_weight_arguments(sweep)
    sweep.add_argument("--fractions", default="0.05,0.1,0.2,0.4,0.8")
    sweep.add_argument("--backend", default="scipy",
                       choices=_CLI_BACKENDS)
    _add_solver_arguments(sweep)
    sweep.add_argument("--csv", type=Path, help="write sweep CSV here")
    _add_workers_argument(sweep)
    _add_resilience_arguments(sweep)
    _add_trace_argument(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    simulate = commands.add_parser("simulate", help="attack campaign against a deployment")
    _add_model_arguments(simulate)
    simulate.add_argument("--deployment", type=Path, required=True,
                          help="deployment JSON (list of monitor ids)")
    simulate.add_argument("--repetitions", type=int, default=10)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--failure-rate", type=float, default=0.0)
    _add_trace_argument(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    contrib = commands.add_parser(
        "contrib", help="per-monitor contribution report (Shapley + leave-one-out)"
    )
    _add_model_arguments(contrib)
    _add_weight_arguments(contrib)
    contrib.add_argument("--deployment", type=Path, required=True,
                         help="deployment JSON (list of monitor ids)")
    contrib.add_argument("--samples", type=int, default=200)
    contrib.add_argument("--seed", type=int, default=0)
    _add_workers_argument(contrib)
    _add_resilience_arguments(contrib)
    _add_trace_argument(contrib)
    contrib.set_defaults(handler=_cmd_contrib)

    frontier = commands.add_parser(
        "frontier", help="exact cost-utility Pareto frontier (epsilon-constraint)"
    )
    _add_model_arguments(frontier)
    _add_weight_arguments(frontier)
    frontier.add_argument("--backend", default="scipy",
                          choices=_CLI_BACKENDS)
    frontier.add_argument("--max-points", type=int, default=1000)
    _add_solver_arguments(frontier)
    frontier.add_argument("--csv", type=Path, help="write the frontier CSV here")
    _add_trace_argument(frontier)
    frontier.set_defaults(handler=_cmd_frontier)

    stats = commands.add_parser(
        "stats", help="render the metrics carried by a --trace file"
    )
    # dest must not collide with the --trace capture flag: main() treats
    # a non-None ``args.trace`` as "record this run", which would
    # overwrite the very file stats is reading.
    stats.add_argument(
        "trace_file", metavar="trace",
        type=Path, help="trace/metrics JSON written by --trace",
    )
    stats.set_defaults(handler=_cmd_stats)

    compare = commands.add_parser(
        "compare", help="diff two deployments: monitors, cost, per-attack coverage"
    )
    _add_model_arguments(compare)
    _add_weight_arguments(compare)
    compare.add_argument("--a", type=Path, required=True, help="baseline deployment JSON")
    compare.add_argument("--b", type=Path, required=True, help="candidate deployment JSON")
    compare.set_defaults(handler=_cmd_compare)

    gaps = commands.add_parser(
        "gaps", help="coverage gaps of a deployment and the cheapest fixes"
    )
    _add_model_arguments(gaps)
    gaps.add_argument("--deployment", type=Path, required=True,
                      help="deployment JSON (list of monitor ids)")
    gaps.add_argument("--threshold", type=float, default=0.5,
                      help="report events covered below this level")
    gaps.set_defaults(handler=_cmd_gaps)

    export = commands.add_parser("export-casestudy",
                                 help="write the built-in case study to JSON")
    export.add_argument("path", type=Path)
    export.set_defaults(handler=_cmd_export_casestudy)

    lint = commands.add_parser(
        "lint", help="static analysis: invariant rules, import cycles, layering"
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"], metavar="PATH",
                      help="files or directories to lint (default: src/repro)")
    lint.add_argument("--format", choices=["text", "json"], default="text",
                      help="report format on stdout (default: text)")
    lint.add_argument("--rule", action="append", default=None, metavar="RULE-ID",
                      help="run only this rule (repeatable); default: all rules")
    lint.add_argument("--output", type=Path, default=None, metavar="OUT.json",
                      help="additionally write the JSON report here (CI artifact)")
    lint.add_argument("--deep", action="store_true",
                      help="whole-program dataflow analysis: nondeterminism "
                      "taint, set-order leaks, shared-memory races, fork capture")
    lint.add_argument("--baseline", default=None, metavar="BASELINE.json",
                      help="deep mode: accepted-findings baseline (default: "
                      "auto-discover deep-baseline.json; 'none' disables)")
    lint.add_argument("--write-baseline", type=Path, default=None,
                      metavar="BASELINE.json",
                      help="deep mode: regenerate the baseline from this run")
    lint.set_defaults(handler=_cmd_lint)

    def _add_service_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--workers", type=int, default=2,
                         help="concurrent worker slots (default: 2)")
        sub.add_argument("--queue-limit", type=int, default=64,
                         help="service-wide pending-job bound (default: 64)")
        sub.add_argument("--max-retries", type=int, default=1,
                         help="retries for transient job faults (default: 1)")
        sub.add_argument("--presolve", action=argparse.BooleanOptionalAction,
                         default=False,
                         help="route solves through the exact presolve pipeline "
                         "(opt-in: may break ties among equally-optimal "
                         "deployments differently than a cold solve)")
        sub.add_argument("--cache-bytes", type=int, default=64 << 20,
                         metavar="N",
                         help="session/family cache budget in estimated bytes "
                         "(default: 64 MiB)")
        sub.add_argument("--cache-ttl", type=float, default=None, metavar="SECONDS",
                         help="evict cache entries idle longer than this "
                         "(default: no TTL)")

    serve = commands.add_parser(
        "serve",
        help="run the multi-tenant solve service over line-delimited JSON "
        "(stdin/stdout, or a Unix socket)",
    )
    _add_service_arguments(serve)
    serve.add_argument("--socket", type=Path, default=None, metavar="PATH",
                       help="listen on a Unix socket instead of stdin/stdout")
    serve.set_defaults(handler=_cmd_serve)

    loadgen = commands.add_parser(
        "loadgen",
        help="drive a fresh solve service with seeded mixed-tenant traffic "
        "and report throughput/latency/hit-rate",
    )
    _add_model_arguments(loadgen)
    _add_service_arguments(loadgen)
    loadgen.add_argument("--jobs", type=int, default=200,
                         help="measured jobs to submit (default: 200)")
    loadgen.add_argument("--tenants", type=int, default=4,
                         help="distinct tenants in the mix (default: 4)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="traffic seed (default: 0)")
    loadgen.add_argument("--warmup", type=int, default=0,
                         help="unmeasured warm-up jobs first (default: 0)")
    loadgen.add_argument("--json", type=Path, default=None, metavar="OUT.json",
                         help="write the full report JSON here")
    _add_trace_argument(loadgen)
    loadgen.set_defaults(handler=_cmd_loadgen)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        trace_path = getattr(args, "trace", None)
        if trace_path is None:
            return args.handler(args)
        with obs.capture() as cap:
            code = args.handler(args)
        write_trace(trace_path, cap.tracer, cap.registry)
        print(f"trace written to {trace_path}", file=sys.stderr)
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output was piped into a consumer that stopped reading (head,
        # less); that is not an error worth a traceback.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
