"""Chrome-trace export and the combined trace/metrics file format.

``repro ... --trace out.json`` writes a single JSON object that is both

* a **loadable Chrome trace** — open it at ``chrome://tracing`` or
  https://ui.perfetto.dev; the spans appear as nested "complete" (ph
  ``X``) events, worker tasks on their own rows — and
* a **metrics snapshot** — the same object carries the run's registry
  under a ``"metrics"`` key (the Chrome trace format explicitly allows
  extra top-level keys), which ``repro stats`` renders as tables.

One file, one run, two views.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path
from typing import Any

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = ["chrome_trace_events", "load_trace", "trace_payload", "write_trace"]


def _walk(span: Span, tid: str | int, origin: float, events: list[dict[str, Any]]) -> None:
    end = span.end if span.end is not None else span.begin
    events.append(
        {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": (span.begin - origin) * 1e6,  # Chrome wants microseconds
            "dur": (end - span.begin) * 1e6,
            "pid": 0,
            "tid": span.tid if span.tid is not None else tid,
            "args": {k: _jsonable(v) for k, v in span.args.items()},
        }
    )
    for child in span.children:
        _walk(child, span.tid if span.tid is not None else tid, origin, events)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _earliest(spans: Iterable[Span]) -> float:
    begins = [span.begin for span in spans]
    return min(begins) if begins else 0.0


def chrome_trace_events(roots: Iterable[Span]) -> list[dict[str, Any]]:
    """Flatten a span forest into Chrome "complete" events.

    Timestamps are rebased so the earliest span starts at 0; spans
    tagged with a ``tid`` (attached worker tasks) keep it, everything
    else renders on thread 0 of process 0.
    """
    roots = list(roots)
    origin = _earliest(roots)
    events: list[dict[str, Any]] = []
    for span in roots:
        _walk(span, 0, origin, events)
    return events


def trace_payload(tracer: Tracer, registry: MetricsRegistry) -> dict[str, Any]:
    """The combined trace-file object for one run."""
    return {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(tracer.roots),
        "metrics": registry.snapshot(),
        "otherData": {"tool": "repro", "format": "chrome-trace+metrics"},
    }


def write_trace(path: str | Path, tracer: Tracer, registry: MetricsRegistry) -> Path:
    """Write the combined trace/metrics JSON to ``path``.

    Strict JSON: non-finite metric values (NaN latency means, inf
    utilization gauges) are serialized as ``null``, never as the
    ``NaN``/``Infinity`` tokens the JSON grammar lacks.
    """
    # Imported here, not at module top: repro.export's package __init__
    # pulls in the analysis/optimize stack, which imports repro.obs —
    # a module-level import would close that cycle.
    from repro.export.jsonsafe import dumps as _strict_dumps

    path = Path(path)
    path.write_text(_strict_dumps(trace_payload(tracer, registry), indent=2) + "\n")
    return path


def load_trace(path: str | Path) -> dict[str, Any]:
    """Read a trace file back (also accepts a bare metrics snapshot)."""
    return json.loads(Path(path).read_text())
